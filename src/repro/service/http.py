"""Stdlib HTTP read surface for the digital-twin service.

A :class:`~http.server.ThreadingHTTPServer` on a daemon thread serves
four GET endpoints off the live service object:

``/healthz``
    Liveness + identity: deployed scenario, window/watermark position,
    chain head, configured shadows.
``/windows``
    The verified closed-window ledger (``?limit=N`` for the tail).
``/whatif``
    Without a query: the configured shadows' latest cumulative answers.
    With ``?spec=cap=90``: an on-demand what-if computed (and cached) at
    the current window position.
``/metrics``
    Prometheus text exposition of the ingestion, window, cache, and
    twin-power counters.

The server only *reads* service state (the service's read surface is
thread-safe), so it cannot perturb the deterministic window/journal path
— a service with and without HTTP attached produces identical WALs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigurationError
from .core import DigitalTwinService

__all__ = ["ServiceHTTPServer", "render_metrics"]

_PROM_PREFIX = "repro_service"

#: (counter key, metric suffix, prometheus type, help text)
_SCALAR_METRICS = (
    ("windows_closed", "windows_closed_total", "counter", "Windows closed since genesis"),
    ("watermark_s", "watermark_seconds", "gauge", "Event-time watermark"),
    ("events_total", "events_total", "counter", "Data events ingested"),
    ("heartbeats_total", "heartbeats_total", "counter", "Heartbeats ingested"),
    ("late_events", "late_events_total", "counter", "Events dropped as late"),
    ("duplicate_events", "duplicate_events_total", "counter", "Duplicate events collapsed"),
    ("cache_hits", "cache_hits_total", "counter", "What-if cache hits"),
    ("cache_misses", "cache_misses_total", "counter", "What-if cache misses"),
    ("cache_entries", "cache_entries", "gauge", "What-if cache size"),
    ("deployed_power_w", "deployed_power_watts", "gauge", "Deployed twin fleet power"),
    ("deployed_budget_w", "deployed_budget_watts", "gauge", "Deployed twin fleet budget"),
)


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_metrics(service: DigitalTwinService) -> str:
    """The /metrics body: Prometheus text exposition format."""
    counters = service.metrics_counters()
    lines: list[str] = []
    for key, suffix, kind, help_text in _SCALAR_METRICS:
        value = counters.get(key)
        if value is None:
            continue
        name = f"{_PROM_PREFIX}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {float(value):g}")
    shadow_power = counters.get("shadow_power_w") or {}
    if shadow_power:
        name = f"{_PROM_PREFIX}_shadow_power_watts"
        lines.append(f"# HELP {name} Shadow twin fleet power")
        lines.append(f"# TYPE {name} gauge")
        for shadow, value in sorted(shadow_power.items()):
            if value is None:
                continue
            lines.append(f'{name}{{shadow="{_escape_label(shadow)}"}} {float(value):g}')
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """GET-only JSON/metrics handler bound to one service instance."""

    service: DigitalTwinService  # set by the subclass ServiceHTTPServer builds

    # The service is a long-lived process; access-log chatter belongs to
    # the operator's proxy, not stderr.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        try:
            if split.path == "/healthz":
                self._send_json(200, self.service.snapshot())
            elif split.path == "/windows":
                limit = self._int_param(query, "limit")
                self._send_json(200, self.service.windows_payload(limit))
            elif split.path == "/whatif":
                spec = query.get("spec", [None])[0]
                self._send_json(200, self.service.whatif_payload(spec))
            elif split.path == "/metrics":
                body = render_metrics(self.service).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(404, {"error": f"no such endpoint: {split.path}"})
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})

    @staticmethod
    def _int_param(query: dict[str, list[str]], name: str) -> int | None:
        raw = query.get(name, [None])[0]
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise ConfigurationError(
                f"query parameter {name} must be an integer, got {raw!r}"
            ) from None

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServiceHTTPServer:
    """The service's HTTP front end, served from a daemon thread."""

    def __init__(self, service: DigitalTwinService, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._server = ThreadingHTTPServer((host, port), handler)
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ServiceHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
