"""Stdlib HTTP read surface for the digital-twin service.

A :class:`~http.server.ThreadingHTTPServer` on a daemon thread serves
four GET endpoints off the live service object:

``/healthz``
    Liveness + identity: deployed scenario, window/watermark position,
    chain head, configured shadows.
``/windows``
    The verified closed-window ledger (``?limit=N`` for the tail).
``/whatif``
    Without a query: the configured shadows' latest cumulative answers.
    With ``?spec=cap=90``: an on-demand what-if computed (and cached) at
    the current window position.
``/metrics``
    Prometheus text exposition of the ingestion, window, cache, twin-power,
    health, and resilience counters.

The server only *reads* service state (the service's read surface is
thread-safe), so it cannot perturb the deterministic window/journal path
— a service with and without HTTP attached produces identical WALs.

Degraded-mode contract (see ``docs/service.md``): while the health state
machine reports ``degraded`` or worse, the query endpoints (``/windows``,
``/whatif``) answer **503 with a Retry-After header** — their answers
could be behind the stream or intentionally shed. ``/healthz`` keeps
answering 200 with the state in the body (503 only once ``failed``), and
``/metrics`` always answers 200 so the ladder stays observable.
"""

from __future__ import annotations

import json
import math
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigurationError
from .core import DigitalTwinService
from .resilience.health import HealthState

__all__ = ["ServiceHTTPServer", "render_metrics"]

_PROM_PREFIX = "repro_service"

#: (counter key, metric suffix, prometheus type, help text)
_SCALAR_METRICS = (
    ("windows_closed", "windows_closed_total", "counter", "Windows closed since genesis"),
    ("watermark_s", "watermark_seconds", "gauge", "Event-time watermark"),
    ("events_total", "events_total", "counter", "Data events ingested"),
    ("heartbeats_total", "heartbeats_total", "counter", "Heartbeats ingested"),
    ("late_events", "late_events_total", "counter", "Events dropped as late"),
    ("duplicate_events", "duplicate_events_total", "counter", "Duplicate events collapsed"),
    ("cache_hits", "cache_hits_total", "counter", "What-if cache hits"),
    ("cache_misses", "cache_misses_total", "counter", "What-if cache misses"),
    ("cache_entries", "cache_entries", "gauge", "What-if cache size"),
    ("deployed_power_w", "deployed_power_watts", "gauge", "Deployed twin fleet power"),
    ("deployed_budget_w", "deployed_budget_watts", "gauge", "Deployed twin fleet budget"),
    ("windows_shed_shadows", "windows_shed_shadows_total", "counter", "Windows committed with shadow deltas shed"),
    ("windows_deployed_only", "windows_deployed_only_total", "counter", "Windows committed deployed-only"),
    ("shadow_lag", "shadow_lag_windows", "gauge", "Windows the furthest-behind shadow owes"),
    ("twin_rebuilds", "twin_rebuilds_total", "counter", "Twin rebuilds after crash or stall"),
)


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_metrics(
    service: DigitalTwinService, extra: dict[str, object] | None = None
) -> str:
    """The /metrics body: Prometheus text exposition format.

    ``extra`` carries the resilience layer's flat counter dict (queue,
    shed ladder, supervisor, breaker, ingest, chaos); scalar values
    become ``repro_service_<key>`` gauges and dict values become one
    labelled series per entry.
    """
    counters = service.metrics_counters()
    lines: list[str] = []
    for key, suffix, kind, help_text in _SCALAR_METRICS:
        value = counters.get(key)
        if value is None:
            continue
        name = f"{_PROM_PREFIX}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {float(value):g}")
    shadow_power = counters.get("shadow_power_w") or {}
    if shadow_power:
        name = f"{_PROM_PREFIX}_shadow_power_watts"
        lines.append(f"# HELP {name} Shadow twin fleet power")
        lines.append(f"# TYPE {name} gauge")
        for shadow, value in sorted(shadow_power.items()):
            if value is None:
                continue
            lines.append(f'{name}{{shadow="{_escape_label(shadow)}"}} {float(value):g}')
    health = counters.get("health") or {}
    if health:
        name = f"{_PROM_PREFIX}_health_rank"
        lines.append(f"# HELP {name} Health state rank (0 ok … 3 failed)")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(health['rank']):g}")
        name = f"{_PROM_PREFIX}_health_state"
        lines.append(f"# HELP {name} One-hot current health state")
        lines.append(f"# TYPE {name} gauge")
        for state in HealthState:
            flag = 1.0 if state.value == health["state"] else 0.0
            lines.append(f'{name}{{state="{_escape_label(state.value)}"}} {flag:g}')
        name = f"{_PROM_PREFIX}_health_transitions_total"
        lines.append(f"# HELP {name} Transitions into each health state")
        lines.append(f"# TYPE {name} counter")
        for state, count in sorted((health.get("transitions") or {}).items()):
            lines.append(
                f'{name}{{state="{_escape_label(str(state))}"}} {float(count):g}'
            )
    for key in sorted(extra or {}):
        value = (extra or {})[key]
        name = f"{_PROM_PREFIX}_{key}"
        if isinstance(value, dict):
            if not value:
                continue
            lines.append(f"# HELP {name} Resilience counter {key} (labelled)")
            lines.append(f"# TYPE {name} gauge")
            for label, labelled in sorted(value.items(), key=lambda kv: str(kv[0])):
                if labelled is None:
                    continue
                lines.append(
                    f'{name}{{key="{_escape_label(str(label))}"}} '
                    f"{float(labelled):g}"
                )
        elif isinstance(value, (int, float)):
            lines.append(f"# HELP {name} Resilience counter {key}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {float(value):g}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """GET-only JSON/metrics handler bound to one service instance."""

    service: DigitalTwinService  # set by the subclass ServiceHTTPServer builds
    #: Callable returning the resilience layer's flat metric dict (or None).
    extra_metrics: Callable[[], dict[str, object]] | None = None
    #: Retry-After hint (seconds) served with degraded-mode 503s.
    retry_after_s: float = 1.0

    # The service is a long-lived process; access-log chatter belongs to
    # the operator's proxy, not stderr.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        state = self.service.health.state
        try:
            if split.path == "/healthz":
                # Health stays readable while degraded; 503 only once the
                # plane has terminally failed (the body carries the state).
                status = 503 if state is HealthState.FAILED else 200
                self._send_json(status, self.service.snapshot())
            elif split.path == "/windows":
                if state is not HealthState.OK:
                    self._send_unavailable(state)
                    return
                limit = self._int_param(query, "limit")
                self._send_json(200, self.service.windows_payload(limit))
            elif split.path == "/whatif":
                if state is not HealthState.OK:
                    self._send_unavailable(state)
                    return
                spec = query.get("spec", [None])[0]
                self._send_json(200, self.service.whatif_payload(spec))
            elif split.path == "/metrics":
                extra = self.extra_metrics() if self.extra_metrics else None
                body = render_metrics(self.service, extra).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(404, {"error": f"no such endpoint: {split.path}"})
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})

    def _send_unavailable(self, state: HealthState) -> None:
        """The degraded-mode 503 + Retry-After contract for query reads."""
        self._send_json(
            503,
            {
                "error": f"service is {state.value}; query reads are paused",
                "status": state.value,
                "retry_after_s": self.retry_after_s,
            },
            extra_headers={"Retry-After": str(math.ceil(self.retry_after_s))},
        )

    @staticmethod
    def _int_param(query: dict[str, list[str]], name: str) -> int | None:
        raw = query.get(name, [None])[0]
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise ConfigurationError(
                f"query parameter {name} must be an integer, got {raw!r}"
            ) from None

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class ServiceHTTPServer:
    """The service's HTTP front end, served from a daemon thread."""

    def __init__(
        self,
        service: DigitalTwinService,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_metrics: Callable[[], dict[str, object]] | None = None,
        retry_after_s: float = 1.0,
    ):
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "service": service,
                "extra_metrics": staticmethod(extra_metrics) if extra_metrics else None,
                "retry_after_s": float(retry_after_s),
            },
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ServiceHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
