"""Event model of the streaming service: canonical LDJSON telemetry.

One event is one JSON object on one line. Two fields are structural:

``kind``
    ``"heartbeat"`` events carry the stream's watermark — they advance
    event time and close windows, but hold no payload. Every other kind
    (``"telemetry"`` by convention) is a data event aggregated into the
    window its timestamp falls in.
``t``
    Event time in seconds (float, finite, non-negative). Windowing is
    driven entirely by this field — never by arrival order or wall clock —
    which is what makes the closed-window digests replayable.

Everything else in the object is opaque payload. Events canonicalize to
sorted-key JSON so that identity (duplicate detection) and digests are
byte-stable regardless of producer key order.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "HEARTBEAT_KIND",
    "Event",
    "make_event",
    "parse_event",
    "event_digest",
    "heartbeat",
]

#: The reserved kind that carries the watermark.
HEARTBEAT_KIND = "heartbeat"


@dataclass(frozen=True)
class Event:
    """One parsed stream event.

    ``canonical`` is the event's whole JSON object re-serialized with
    sorted keys and tight separators; it is the event's identity (dedup
    compares it) and the input to :func:`event_digest`.
    """

    kind: str
    t: float
    canonical: str

    @property
    def is_heartbeat(self) -> bool:
        return self.kind == HEARTBEAT_KIND


def _canonical_json(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def make_event(payload: dict) -> Event:
    """Build an :class:`Event` from an already-parsed JSON object."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"event must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ConfigurationError("event has no 'kind' string")
    t = payload.get("t")
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        raise ConfigurationError(f"event 't' must be a number, got {t!r}")
    t = float(t)
    if not math.isfinite(t) or t < 0.0:
        raise ConfigurationError(f"event 't' must be finite and >= 0, got {t!r}")
    return Event(kind=kind, t=t, canonical=_canonical_json(payload))


def parse_event(line: str) -> Event:
    """Parse one LDJSON line into an :class:`Event` (strict, no coercion)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"event line is not valid JSON: {exc}") from None
    return make_event(payload)


def event_digest(event: Event) -> str:
    """sha256 hex digest of the event's canonical encoding."""
    return hashlib.sha256(event.canonical.encode("utf-8")).hexdigest()


def heartbeat(t: float) -> Event:
    """A heartbeat event at time ``t`` (the watermark carrier)."""
    return make_event({"kind": HEARTBEAT_KIND, "t": t})
