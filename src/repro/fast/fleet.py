"""Relaxed-semantics fleet backend: fused reductions + controller banks.

:class:`FastFleetBackend` subclasses the bit-identical
:class:`~repro.fleet.soa.SoaFleetBackend` and re-derives its hot loops with
the float-semantics constraints dropped:

* **fused reductions** — per-channel plant power, GPU board sums, preproc
  core counts and meter-window means use ``ndarray.sum``/``ndarray.mean``
  over whole axes instead of the scalar engine's column-sequential
  accumulation (the property the reference transcription must preserve and
  this engine is sanctioned to break — see REP2xx sanctioning in
  ``repro.lint``);
* **batched workload stepping** — all GPUs of all servers advance as one
  ``(S, G)`` expression instead of a per-GPU column loop;
* **vectorized controller banks** — homogeneous fixed-step/safe-fixed-step
  fleets step as array programs (no per-server Python controller objects in
  the loop), and MPC fleets evaluate the process-global pre-solved gain
  cache of :class:`~repro.fast.mpc.FastMimoPowerMpc` with one matmul for
  the whole fleet per control period.

RNG streams are untouched: each server consumes exactly the same
per-server noise draws as its reference twin, so fast-vs-reference
differences come only from float reassociation and the analytic (projected)
MPC solve. ``repro.equiv`` bounds those differences statistically.

Supported fleets are the SoA-capable ones with ``fixed-step``/
``safe-fixed-step`` (mixed freely) or ``mpc`` controllers; anything else
should run on the ``soa`` or ``reference`` backends, which accept arbitrary
controller objects.
"""

from __future__ import annotations

import time

import numpy as np

from ..control.fixed_step import CPU_STEP_MHZ, GPU_STEP_MHZ, _UTIL_TIE_TOL
from ..core.mpc import MpcConfig
from ..core.weights import WeightAssigner
from ..errors import ConfigurationError
from ..fleet.soa import (
    _CONTROLLER_CORE_UTIL,
    _FREEZE_DETECT_SAMPLES,
    DEFAULT_GPU_SPECS,
    SoaFleetBackend,
    SoaServerSpec,
    fleet_identified_model,
)
from ..sim.engine import SimConfig
from ..units import microjoules_to_joules_array, seconds_to_milliseconds
from ..workloads.static import StaticLoadSpec
from .mpc import FastMimoPowerMpc

__all__ = ["FastFleetBackend"]

#: Controller kinds the vectorized banks cover.
_FIXED_STEP_KINDS = frozenset({"fixed-step", "safe-fixed-step"})


class FastFleetBackend(SoaFleetBackend):
    """The fast fleet: SoA state layout, relaxed-semantics stepping."""

    def __init__(
        self,
        specs: list[SoaServerSpec],
        gpu_specs: tuple[StaticLoadSpec, ...] = DEFAULT_GPU_SPECS,
        config: SimConfig = SimConfig(),
    ):
        kinds = {s.controller for s in specs}
        if kinds == {"mpc"}:
            self._bank = "mpc"
        elif kinds <= _FIXED_STEP_KINDS:
            self._bank = "fixed-step"
        else:
            raise ConfigurationError(
                f"fast backend supports fixed-step/safe-fixed-step or all-mpc "
                f"fleets, got controllers {sorted(kinds)}; run mixed or custom "
                f"fleets on the 'soa' or 'reference' backend"
            )
        super().__init__(specs, gpu_specs, config)
        n = len(specs)
        n_chan = self.n_channels

        # Workload-law constants, one row vector per quantity (the SoA loop
        # reads them per-GPU; the fused loop broadcasts them).
        self._wl_base = np.array([gs.base_rate_s for gs in self.gpu_specs])
        self._wl_rpm = np.array([gs.rate_per_mhz for gs in self.gpu_specs])
        self._wl_fref = np.array([gs.f_ref_mhz for gs in self.gpu_specs])
        self._wl_pre = np.array([gs.preproc_scale for gs in self.gpu_specs])
        self._wl_workers = np.array(self._n_workers, dtype=np.float64)

        if self._bank == "mpc":
            # One shared solver + one (a, r) cache entry for the whole
            # fleet: uniform penalty weights and the shared identified model
            # make the MPC matrices constant across servers and periods.
            model = fleet_identified_model()
            self._mpc = FastMimoPowerMpc(n_chan, MpcConfig())
            self._mpc_a = np.ascontiguousarray(model.a_w_per_mhz, dtype=np.float64)
            self._mpc_r = np.full(
                n_chan, WeightAssigner(mode="uniform").r_scale, dtype=np.float64
            )
        else:
            self._fs_step = np.array([float(s.step_size) for s in specs])
            self._fs_deadband = np.array([s.deadband_w for s in specs])
            self._fs_margin = np.array(
                [
                    s.safety_margin_w if s.controller == "safe-fixed-step" else 0.0
                    for s in specs
                ]
            )
            self._fs_rr = np.zeros(n, dtype=np.int64)
            self._fs_step_base = np.where(
                np.arange(n_chan) == 0, CPU_STEP_MHZ, GPU_STEP_MHZ
            )

    # -- stepping (fused transcription of the SoA period loop) ---------------

    def _run_one_period(self) -> None:
        cfg = self.config
        n = len(self.specs)
        dt = cfg.dt_s
        ticks = cfg.ticks_per_period
        spp = cfg.samples_per_period

        wall = np.array([s.take(ticks) for s in self._wall_noise])
        meter_noise = np.array([s.take(spp) for s in self._meter_noise])

        f = self._f
        u = self._u
        f_min = self._f_min
        f_max = self._f_max
        pitch = self._pitch
        k_max = self._k_max
        err_bound = self._err_bound
        idle = self._pm_idle
        dyn = self._pm_dyn
        flo = self._pm_floor
        omf = self._pm_omf
        quad = self._pm_quad
        fref = self._pm_fref
        demand = self._demand
        frac = self._frac_batches
        samples = np.empty((n, spp), dtype=np.float64)
        emit = 0

        for t in range(ticks):
            if self._pending is not None:
                self._tgt = self._pending
                self._pending = None
            desired = self._tgt + self._err
            clipped = np.minimum(np.maximum(desired, f_min), f_max)
            k = np.floor((clipped - f_min) / pitch)
            np.minimum(k, k_max, out=k)
            below = f_min + pitch * k
            above = f_min + pitch * (k + 1.0)
            level = np.where((clipped - below) <= (above - clipped), below, above)
            e = desired - level
            self._err = np.minimum(np.maximum(e, -err_bound), err_bound)
            f[:] = level
            self._applied_sum += level
            self._applied_ticks += 1

            # Workloads: every GPU of every server in one (S, G) expression.
            fg = f[:, 1:]
            capacity = self._wl_base + self._wl_rpm * (fg - self._wl_fref)
            busy = np.minimum(demand / capacity, 1.0)
            rate = np.minimum(demand, capacity)
            frac += rate * dt
            done = np.floor(frac)
            frac -= done
            busy_s = busy * dt
            u[:, 1:] = busy_s / dt
            self._tput_acc[:, 1:] += done
            self._util_acc[:, 1:] += busy_s
            preproc_cores = (
                self._wl_workers * np.minimum(busy * self._wl_pre, 1.0)
            ).sum(axis=1)

            busy_cores = preproc_cores + _CONTROLLER_CORE_UTIL
            cpu_util = np.minimum(busy_cores / self._n_cores, 1.0)
            u[:, 0] = cpu_util
            self._util_acc[:, 0] += cpu_util * dt
            self._acc_elapsed += dt

            # Plant: fused per-channel power with one axis reduction.
            self._noise_state = self._noise_rho * self._noise_state + wall[:, t]
            df = f - fref
            pw = idle + dyn * f * (flo + omf * u) + quad * df * df
            cpu_p = pw[:, 0]
            p_true = self._base_power_w + pw.sum(axis=1) + self._noise_state

            self._m_accum_j += p_true * dt
            self._m_accum_t += dt
            if self._m_accum_t + 1e-9 >= cfg.meter_interval_s:
                mean_w = self._m_accum_j / self._m_accum_t
                if cfg.meter_noise_sigma_w > 0:
                    mean_w = mean_w + meter_noise[:, emit]
                samples[:, emit] = (
                    np.rint(mean_w / cfg.meter_resolution_w) * cfg.meter_resolution_w
                )
                emit += 1
                self._m_accum_j[:] = 0.0
                self._m_accum_t = 0.0

            self._rapl_energy += (cpu_p * dt) * 1e6
            self._rapl_energy %= self._rapl_range_uj

            self._true_power_sum += p_true
            self._true_power_ticks += 1
            self.time_s += dt

        if emit != spp:
            raise ConfigurationError(
                f"meter emitted {emit} samples per period, expected {spp}"
            )
        self._observe_and_control(samples)

    def _filter_samples(
        self, samples: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The staleness/plausibility/freeze filter with fused window means."""
        n, spp = samples.shape
        previous = np.concatenate([self._last_sample_w[:, None], samples[:, :-1]], axis=1)
        eq = samples == previous
        run = self._freeze_run
        for j in range(spp):  # run length has a true sequential dependency
            run = np.where(eq[:, j], run + 1, 0)
        self._freeze_run = run
        self._last_sample_w = samples[:, -1].copy()
        keep = (
            np.isfinite(samples)
            & (samples >= self._plausible_lo_w)
            & (samples <= self._plausible_hi_w)
        )
        if self.config.meter_noise_sigma_w > 0:
            keep[run >= _FREEZE_DETECT_SAMPLES, :] = False
        count = keep.sum(axis=1)
        has = count > 0
        kept_sum = np.where(keep, samples, 0.0).sum(axis=1)
        mean = np.where(
            count == spp,
            samples.mean(axis=1),
            np.where(has, kept_sum / np.maximum(count, 1), np.nan),
        )
        masked_hi = np.where(keep, samples, -np.inf)
        masked_lo = np.where(keep, samples, np.inf)
        pmax = np.where(has, masked_hi.max(axis=1), np.nan)
        pmin = np.where(has, masked_lo.min(axis=1), np.nan)
        return keep, count, mean, np.stack([pmin, pmax])

    def _observe_and_control(self, samples: np.ndarray) -> None:
        n = len(self.specs)
        n_chan = self.n_channels
        n_gpus = self.n_gpus

        elapsed = self._acc_elapsed
        tput_raw = self._tput_acc / elapsed
        self._max_seen = np.maximum(self._max_seen, tput_raw)
        max_seen = self._max_seen
        safe_den = np.where(max_seen > 0, max_seen, 1.0)
        tput_norm = np.where(
            max_seen > 0, np.minimum(tput_raw / safe_den, 1.0), 0.0
        )
        util = np.minimum(self._util_acc / elapsed, 1.0)
        self._tput_acc = np.zeros((n, n_chan), dtype=np.float64)
        self._util_acc = np.zeros((n, n_chan), dtype=np.float64)
        self._acc_elapsed = 0.0

        _keep, count, mean_power, pminmax = self._filter_samples(samples)

        # NVML board powers, fused across GPUs (same per-element round trips).
        nvml = np.array([s.take(n_gpus) for s in self._nvml_noise])
        ug = np.minimum(np.maximum(self._u[:, 1:], 0.0), 1.0)
        fg = self._f[:, 1:]
        dfg = fg - self._pm_fref[1:]
        raw = (
            self._pm_idle[1:]
            + self._pm_dyn[1:] * fg * (self._pm_floor[1:] + (1.0 - self._pm_floor[1:]) * ug)
            + self._pm_quad[1:] * dfg * dfg
        )
        gpu_power = (np.maximum(raw + nvml, 0.0) * 1e3) / 1e3
        gpu_sum = gpu_power.sum(axis=1)

        now_uj = self._rapl_energy.astype(np.int64)
        d_uj = now_uj - self._rapl_anchor_uj
        d_uj = np.where(d_uj < 0, d_uj + self._rapl_range_uj, d_uj)
        dt_win = self.time_s - self._rapl_anchor_t
        if dt_win > 0:
            hold = (d_uj == 0) & self._has_last_cpu
            computed = microjoules_to_joules_array(d_uj) / dt_win
            cpu_power = np.where(hold, self._last_cpu_power, computed)
            fresh = ~hold
            self._last_cpu_power = np.where(fresh, cpu_power, self._last_cpu_power)
            self._has_last_cpu = self._has_last_cpu | fresh
        else:
            cpu_power = np.full(n, np.nan)
        self._rapl_anchor_uj = now_uj
        self._rapl_anchor_t = self.time_s

        finite = np.isfinite(cpu_power) & np.isfinite(gpu_sum)
        power_alt = np.where(
            finite, cpu_power + gpu_sum + self._platform_overhead_w, np.nan
        )

        has = count > 0
        alt_ok = np.isfinite(power_alt)
        power = np.where(
            has,
            mean_power,
            np.where(
                alt_ok,
                power_alt,
                np.where(self._has_last_good, self._last_good_power, np.nan),
            ),
        )
        src_code = np.where(
            has,
            0.0,
            np.where(alt_ok, 1.0, np.where(self._has_last_good, 2.0, 3.0)),
        )
        self._stale_periods = np.where(has, 0, self._stale_periods + 1)
        self._last_good_power = np.where(has, power, self._last_good_power)
        self._has_last_good = self._has_last_good | has

        if self._applied_ticks:
            f_applied = self._applied_sum / self._applied_ticks
            self._applied_sum = np.zeros((n, n_chan), dtype=np.float64)
            self._applied_ticks = 0
        else:
            f_applied = self._tgt.copy()

        # Controller bank: the whole fleet's next targets as one array
        # program — no per-server Python controller steps.
        t0 = time.perf_counter()  # repro-lint: disable=REP101 -- ctl_ms is timing telemetry, excluded from digests (runner.TIMING_KEYS)
        if self._bank == "mpc":
            new_targets = self._mpc_bank_targets(power, util)
        else:
            new_targets = self._fixed_step_bank_targets(power, util)
        self._last_ctl_ms = seconds_to_milliseconds(
            time.perf_counter() - t0  # repro-lint: disable=REP101 -- same timing window as t0 above
        )
        self._last_commanded = new_targets.copy()
        self._stage_targets(new_targets)

        self._record_period(
            power, pminmax, src_code, count, util, tput_raw, tput_norm, f_applied
        )
        self.period_index += 1

    # -- controller banks ----------------------------------------------------

    def _mpc_bank_targets(self, power: np.ndarray, util: np.ndarray) -> np.ndarray:
        """One batched pre-solved-gain MPC evaluation for the whole fleet."""
        floors = self._f_min
        f_now = np.clip(self._tgt, floors, self._f_max)
        errors = power - self._set_point
        d0 = self._mpc.batch_first_moves(
            errors, f_now, self._mpc_a, self._mpc_r, floors, self._f_max
        )
        return f_now + d0

    def _fixed_step_bank_targets(
        self, power: np.ndarray, util: np.ndarray
    ) -> np.ndarray:
        """Vectorized fixed-step / safe-fixed-step (margin-shifted) fleet."""
        targets = self._tgt.copy()
        err = (self._set_point - self._fs_margin) - power
        # Scalar guard is `abs(err) <= deadband: hold`, so a NaN error falls
        # through and moves (direction -1); negate the hold test to match.
        active = ~(np.abs(err) <= self._fs_deadband)
        raise_f = err > 0

        up_movable = targets < self._f_max - 1e-9
        down_movable = targets > self._f_min + 1e-9
        movable = np.where(raise_f[:, None], up_movable, down_movable)
        has_movable = movable.any(axis=1)

        best_up = np.where(movable, util, -np.inf).max(axis=1)
        best_down = np.where(movable, util, np.inf).min(axis=1)
        best = np.where(raise_f, best_up, best_down)
        tied = movable & (np.abs(util - best[:, None]) <= _UTIL_TIE_TOL)
        n_tied = np.maximum(tied.sum(axis=1), 1)

        move = active & has_movable
        pick = self._fs_rr % n_tied  # the scalar round-robin cursor, per server
        cum = np.cumsum(tied, axis=1)
        choice_mask = tied & (cum == (pick + 1)[:, None])
        channel = np.argmax(choice_mask, axis=1)
        self._fs_rr = np.where(move, self._fs_rr + 1, self._fs_rr)

        rows = np.nonzero(move)[0]
        cols = channel[rows]
        direction = np.where(raise_f[rows], 1.0, -1.0)
        delta = direction * self._fs_step_base[cols] * self._fs_step[rows]
        moved = np.clip(
            targets[rows, cols] + delta, self._f_min[cols], self._f_max[cols]
        )
        targets[rows, cols] = moved
        return targets
