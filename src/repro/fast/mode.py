"""Compatibility shim: the engine-mode switch moved to :mod:`repro.enginemode`.

The switch started life here, but the sim/core engine layer consults
:func:`fast_enabled` at construction time — which made the engine import
upward into ``repro.fast`` (a REP601 layer violation). The implementation
now lives at the kernel layer; this module re-exports it so existing
``from repro.fast.mode import ...`` call sites keep working.
"""

from __future__ import annotations

from ..enginemode import (
    ENGINES,
    engine_name,
    fast_enabled,
    fast_engine,
    set_engine,
)

__all__ = ["ENGINES", "engine_name", "fast_enabled", "set_engine", "fast_engine"]
