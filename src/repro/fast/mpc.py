"""Relaxed-semantics MPC: pre-solved gains instead of per-step linear solves.

The unconstrained minimizer of the CapGPU MPC quadratic is linear in the
period's data (see :func:`repro.core.mpc.unconstrained_gains`)::

    D*(e, g0) = -H^{-1} (e * q_row + P_map g0) = G_e * e + G_f @ g0

``H``, ``q_row`` and ``P_map`` depend only on the gains ``a``, the penalty
weights ``r`` and the frozen config — so the solver can Cholesky-factor
``H`` **once** per ``(a, r)`` and replace every subsequent solve with one
small matvec. The factorization cache is *process-global*: every controller
in a fleet with the same model and uniform penalty weights shares one entry
across all servers and all ticks.

When the box constraints bind, naively clipping the unconstrained
trajectory is **not** the constrained optimum — the unconstrained minimizer
routinely stages a huge first move cancelled by the next one (the QP is
nearly degenerate along move-compensation directions because the control
penalty ``R`` is tiny), and clipping destroys the cancellation while
keeping the huge first move. Instead, the fast solver changes variables to
cumulative positions, where the trajectory constraints become a pure box,
and runs a small vectorized active-set iteration: servers are grouped by
clamp pattern, and each group's free-coordinate subsystem is solved with
one shared factorization ("pre-solved cap-projection cache"). Interior
solves — the common case — short-circuit to the pure matvec.

Semantics contract (why this lives under ``repro.fast``):

* the reference solver honors ``config.solver`` (``"slsqp"`` by default);
  the fast solver always uses the pre-solved gains plus the active-set
  projection. Both converge to the same convex optimum, but along
  different float paths and to different solver tolerances —
  :mod:`repro.equiv` bounds the closed-loop effect statistically;
* ``H^{-1}b`` via a cached Cholesky factor is not bit-identical to the
  reference's per-step ``np.linalg.solve``; differences are at rounding
  level but digests will differ;
* a ``max_step_mhz`` limit adds move-increment constraints that are not a
  box in position space; the fast solver falls back to move-by-move
  clipping there (no shipped configuration sets it).
"""

from __future__ import annotations

import threading

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from ..core.mpc import MimoPowerMpc, MpcConfig, MpcSolution
from ..errors import ConfigurationError

__all__ = ["FastMimoPowerMpc", "presolved_gains"]

#: Process-global pre-solved gain cache:
#: (n, config, a bytes, r bytes) -> _Gains.
#: Shared across every FastMimoPowerMpc instance so a homogeneous fleet
#: factors H exactly once, not once per server.
_GAIN_CACHE: dict[tuple, "_Gains"] = {}  # repro-lint: lock-protocol=_GAIN_LOCK -- read/evict/insert under the lock; _Gains are immutable once published

#: Guards every read-modify-write of ``_GAIN_CACHE``: the fast fleet bank
#: is constructed from thread-pool callbacks and service shadows, so two
#: threads can race the evict-then-insert sequence. Gains themselves are
#: computed *outside* the lock (the Cholesky factor is the expensive part)
#: and are deterministic for a given key, so racing duplicate computations
#: is safe — last writer wins with an identical value.
_GAIN_LOCK = threading.Lock()

#: Entries kept before a full clear (same discipline as MimoPowerMpc's
#: per-instance cache; adapting gains would otherwise grow it unboundedly).
_GAIN_CACHE_LIMIT = 256

#: Active-set iterations before accepting the current (feasible) iterate.
#: The box QP has N*M unknowns; empirically the clamp pattern stabilizes in
#: two or three rounds.
_ACTIVE_SET_MAX_ITER = 24

#: Clamp detection tolerance (MHz) and KKT gradient tolerance.
_BOX_TOL = 1e-9


class _Gains:
    """Cached per-(a, r) solver constants (read-only arrays)."""

    __slots__ = ("h", "q_row", "p_map", "g_e", "g_f", "h_pos", "q_pos", "p_pos")

    def __init__(self, mpc: MimoPowerMpc, a: np.ndarray, r: np.ndarray):
        h, _ap, q_row, p_map = mpc._assemble(a, r)
        factor = cho_factor(h)
        solved = cho_solve(factor, np.column_stack([q_row, p_map]))
        g_e = -solved[:, 0]
        g_f = -solved[:, 1:]
        # Cumulative-position change of variables: with z_m = sum_{j<=m} d_j
        # (stacked like d), d = L z where L is the block first-difference
        # operator. The cost becomes z' (L'HL) z + 2 (L'b)' z and the
        # trajectory constraints become the box floors - f_now <= z <= f_max
        # - f_now, blockwise.
        n, m_hor = mpc.n, mpc.config.control_horizon
        k = n * m_hor
        l_op = np.zeros((k, k))
        idx = np.arange(n)
        for m in range(m_hor):
            l_op[m * n + idx, m * n + idx] = 1.0
            if m:
                l_op[m * n + idx, (m - 1) * n + idx] = -1.0
        h_pos = l_op.T @ h @ l_op
        q_pos = l_op.T @ q_row
        p_pos = l_op.T @ p_map
        for arr in (g_e, g_f, h_pos, q_pos, p_pos):
            arr.setflags(write=False)
        self.h, self.q_row, self.p_map = h, q_row, p_map
        self.g_e, self.g_f = g_e, g_f
        self.h_pos, self.q_pos, self.p_pos = h_pos, q_pos, p_pos


def presolved_gains(mpc: MimoPowerMpc, a: np.ndarray, r: np.ndarray) -> _Gains:
    """The cached solver constants for ``(a, r)``, computed process-wide once.

    ``G_e = -H^{-1} q_row`` (shape ``(N*M,)``) and ``G_f = -H^{-1} P_map``
    (shape ``(N*M, N)``) give the unconstrained trajectory directly:
    ``D* = G_e * e + G_f @ g0``. The ``*_pos`` members are the same
    quadratic transported to cumulative-position coordinates for the
    active-set projection.
    """
    key = (mpc.n, mpc.config, a.tobytes(), r.tobytes())
    with _GAIN_LOCK:
        hit = _GAIN_CACHE.get(key)
    if hit is not None:
        return hit
    entry = _Gains(mpc, a, r)  # expensive factorization: outside the lock
    with _GAIN_LOCK:
        if len(_GAIN_CACHE) >= _GAIN_CACHE_LIMIT:
            _GAIN_CACHE.clear()
        return _GAIN_CACHE.setdefault(key, entry)


def _cumulative_blocks(d: np.ndarray, n: int, m_hor: int) -> np.ndarray:
    """Stacked cumulative moves ``z`` from stacked moves ``d`` (rows)."""
    return np.cumsum(d.reshape(-1, m_hor, n), axis=1).reshape(d.shape)


def _first_differences(z: np.ndarray, n: int, m_hor: int) -> np.ndarray:
    """Stacked moves ``d`` from stacked cumulative moves ``z`` (rows)."""
    blocks = z.reshape(-1, m_hor, n)
    d = blocks.copy()
    d[:, 1:] -= blocks[:, :-1]
    return d.reshape(z.shape)


def _box_qp_active_set(
    gains: _Gains,
    b_pos: np.ndarray,
    z_unc: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Vectorized box-QP: ``min_z z'H_pos z + 2 b_pos.z`` s.t. ``lo<=z<=hi``.

    All rows share ``H_pos``; ``b_pos``/bounds/start vary per row. Servers
    are grouped by clamp pattern each round, so one factorization serves
    every server whose active set matches — the whole fleet converges in a
    handful of small grouped solves. The iterate is kept feasible
    throughout; on hitting the iteration cap the current projection is
    returned (a safe, feasible fallback).
    """
    h_pos = gains.h_pos
    s, k = b_pos.shape
    z = np.clip(z_unc, lo, hi)
    pending = np.arange(s)
    for _ in range(_ACTIVE_SET_MAX_ITER):
        grad = z[pending] @ h_pos + b_pos[pending]
        at_lo = z[pending] <= lo[pending] + _BOX_TOL
        at_hi = z[pending] >= hi[pending] - _BOX_TOL
        # KKT: a lower clamp is optimal iff the gradient pushes outward
        # (grad >= 0); symmetric for upper clamps. Everything else is free.
        act_lo = at_lo & (grad >= -_BOX_TOL)
        act_hi = at_hi & (grad <= _BOX_TOL)
        free = ~(act_lo | act_hi)
        # Rows whose free coordinates are already stationary are done.
        settled = np.abs(np.where(free, grad, 0.0)).max(axis=1) <= 1e-7
        pending = pending[~settled]
        if pending.size == 0:
            break
        free = free[~settled]
        zp = z[pending]
        fixed = np.where(free, 0.0, zp)
        patterns = np.unique(free, axis=0)
        z_new = np.where(free, 0.0, zp)
        for pat in patterns:
            rows = np.nonzero((free == pat).all(axis=1))[0]
            f_idx = np.nonzero(pat)[0]
            if f_idx.size == 0:
                continue
            rhs = -(
                b_pos[pending[rows]][:, f_idx]
                + fixed[rows] @ h_pos[:, f_idx]
            )
            sol = np.linalg.solve(h_pos[np.ix_(f_idx, f_idx)], rhs.T).T
            z_new[rows[:, None], f_idx[None, :]] = sol
        z[pending] = np.clip(z_new, lo[pending], hi[pending])
    return z


class FastMimoPowerMpc(MimoPowerMpc):
    """Drop-in MPC solver using pre-solved gains (relaxed semantics).

    Constructed in place of :class:`MimoPowerMpc` when the fast engine is
    enabled (see :mod:`repro.fast.mode`). Ignores ``config.solver``: every
    solve is the analytic gain evaluation, plus the grouped active-set box
    projection when constraints bind.
    """

    def __init__(self, n_channels: int, config: MpcConfig = MpcConfig()):
        super().__init__(n_channels, config)

    def _constrained_trajectories(
        self,
        errors: np.ndarray,
        f_now: np.ndarray,
        gains: _Gains,
        floors: np.ndarray,
        f_max: np.ndarray,
    ) -> np.ndarray:
        """Stacked optimal trajectories ``d`` for rows of period data.

        ``errors`` has shape ``(S,)``; ``f_now``/``floors``/``f_max`` shape
        ``(S, N)``. Rows whose unconstrained optimum is interior keep it
        verbatim (the pure pre-solved-gain path); the rest go through the
        box-QP active-set projection in cumulative-position coordinates.
        """
        cfg = self.config
        n, m_hor = self.n, cfg.control_horizon
        g0 = f_now - floors
        d_unc = errors[:, None] * gains.g_e[None, :] + g0 @ gains.g_f.T  # (S, N*M)
        z_unc = _cumulative_blocks(d_unc, n, m_hor)
        lo = np.tile(floors - f_now, m_hor)
        hi = np.tile(f_max - f_now, m_hor)
        if cfg.max_step_mhz is not None:
            # Move-increment limits are not a box in position space; keep
            # the documented clipping fallback (no shipped config sets it).
            d = d_unc.copy()
            f = f_now.copy()
            traj = d.reshape(-1, m_hor, n)
            for m in range(m_hor):
                step = traj[:, m]
                np.clip(step, -cfg.max_step_mhz, cfg.max_step_mhz, out=step)
                target = np.clip(f + step, floors, f_max)
                traj[:, m] = target - f
                f = target
            return d
        inside = ((z_unc >= lo - _BOX_TOL) & (z_unc <= hi + _BOX_TOL)).all(axis=1)
        if inside.all():
            return d_unc
        d = d_unc.copy()
        rows = np.nonzero(~inside)[0]
        b_pos = errors[rows, None] * gains.q_pos[None, :] + g0[rows] @ gains.p_pos.T
        z = _box_qp_active_set(gains, b_pos, z_unc[rows], lo[rows], hi[rows])
        d[rows] = _first_differences(z, n, m_hor)
        return d

    def solve(
        self,
        error_w: float,
        f_now_mhz: np.ndarray,
        a_w_per_mhz: np.ndarray,
        r_weights: np.ndarray,
        floors_mhz: np.ndarray,
        f_max_mhz: np.ndarray,
    ) -> MpcSolution:
        n = self.n
        for name, arr in (
            ("f_now_mhz", f_now_mhz), ("a_w_per_mhz", a_w_per_mhz),
            ("r_weights", r_weights), ("floors_mhz", floors_mhz),
            ("f_max_mhz", f_max_mhz),
        ):
            if np.asarray(arr).shape != (n,):
                raise ConfigurationError(f"{name} must have shape ({n},)")
        if np.any(floors_mhz > f_max_mhz + 1e-9):
            raise ConfigurationError("floors exceed maxima — infeasible box")

        a = np.asarray(a_w_per_mhz, dtype=np.float64)
        r = np.asarray(r_weights, dtype=np.float64)
        f_now = np.asarray(f_now_mhz, dtype=np.float64)
        floors = np.asarray(floors_mhz, dtype=np.float64)
        f_max = np.asarray(f_max_mhz, dtype=np.float64)
        gains = presolved_gains(self, a, r)
        d = self._constrained_trajectories(
            np.array([float(error_w)]),
            f_now[None, :],
            gains,
            floors[None, :],
            f_max[None, :],
        )[0]
        b = error_w * gains.q_row + gains.p_map @ (f_now - floors)
        cost = float(d @ gains.h @ d + 2 * b @ d)
        return self._solution(d, cost, "fast-analytic", True, 0)

    def batch_first_moves(
        self,
        error_w: np.ndarray,
        f_now_mhz: np.ndarray,
        a_w_per_mhz: np.ndarray,
        r_weights: np.ndarray,
        floors_mhz: np.ndarray,
        f_max_mhz: np.ndarray,
    ) -> np.ndarray:
        """First moves ``d0`` for a whole fleet sharing one ``(a, r)`` pair.

        ``error_w`` has shape ``(S,)``, ``f_now_mhz`` shape ``(S, N)``;
        ``floors_mhz``/``f_max_mhz`` broadcast over servers (``(N,)`` or
        ``(S, N)``). Returns ``(S, N)``. One matmul evaluates the cached
        gains for every server; only servers whose unconstrained optimum
        leaves the box pay for the grouped active-set projection.
        """
        a = np.ascontiguousarray(a_w_per_mhz, dtype=np.float64)
        r = np.ascontiguousarray(r_weights, dtype=np.float64)
        gains = presolved_gains(self, a, r)
        errors = np.asarray(error_w, dtype=np.float64)
        f_now = np.asarray(f_now_mhz, dtype=np.float64)
        floors = np.broadcast_to(np.asarray(floors_mhz, dtype=np.float64), f_now.shape)
        f_max = np.broadcast_to(np.asarray(f_max_mhz, dtype=np.float64), f_now.shape)
        d = self._constrained_trajectories(errors, f_now, gains, floors, f_max)
        return d[:, : self.n]
