"""Shared-memory parallel fleet stepping (fast engine only).

:class:`ParallelFleetBackend` shards a homogeneous fleet across worker
processes, each owning a :class:`~repro.fast.fleet.FastFleetBackend` for a
contiguous slice of the server list. Control-plane commands (run N periods,
set budgets) travel over pipes; the data plane — the per-server telemetry
row each control period ends with — is written by every worker into its
slice of one ``multiprocessing.shared_memory`` block, so the parent reads
fleet-wide power/state for the allocator without serializing a single
array.

Results are identical to a single-process :class:`FastFleetBackend` over
the same specs: servers never interact inside a period (budgets only change
between ``run_periods`` calls) and every server's RNG streams are seeded
from its own spec, so the chunk boundaries are invisible to the math. The
differential test pins this digest equality.

Lifecycle: workers are daemonic (they die with the parent at worst);
call :meth:`close` — or use the backend as a context manager — to shut
them down and unlink the shared segment deterministically.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from ..cluster.allocator import ServerPowerState
from ..errors import ConfigurationError
from ..fleet.engine import FleetBackend
from ..fleet.soa import DEFAULT_GPU_SPECS, SoaServerSpec
from ..sim.engine import SimConfig
from ..telemetry.trace import Trace
from ..workloads.static import StaticLoadSpec

__all__ = ["ParallelFleetBackend"]


def _worker_main(
    conn: Any,
    specs: list[SoaServerSpec],
    gpu_specs: tuple[StaticLoadSpec, ...],
    config: SimConfig,
    shm_name: str,
    n_total: int,
    n_trace_channels: int,
    start: int,
) -> None:
    """Worker loop: own a fleet slice, mirror each period's last row to shm."""
    from .fleet import FastFleetBackend

    backend = FastFleetBackend(specs, gpu_specs, config)
    shm = shared_memory.SharedMemory(name=shm_name)
    rows = np.ndarray(
        (n_total, n_trace_channels), dtype=np.float64, buffer=shm.buf
    )
    view = rows[start : start + len(specs)]
    try:
        while True:
            cmd, payload = conn.recv()
            if cmd == "run":
                backend.run_periods(payload)
                view[:] = backend._rows[-1]
                conn.send(("ok", backend.period_index))
            elif cmd == "budgets":
                backend.set_budgets(payload)
                conn.send(("ok", None))
            elif cmd == "trace":
                conn.send(("ok", [row[payload].tolist() for row in backend._rows]))
            elif cmd == "close":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
    finally:
        shm.close()
        conn.close()


class ParallelFleetBackend(FleetBackend):
    """Chunked multi-process fast fleet with a shared-memory data plane."""

    def __init__(
        self,
        specs: list[SoaServerSpec],
        gpu_specs: tuple[StaticLoadSpec, ...] = DEFAULT_GPU_SPECS,
        config: SimConfig = SimConfig(),
        n_workers: int = 2,
    ):
        from .fleet import FastFleetBackend

        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if n_workers > len(specs):
            n_workers = len(specs)
        # A one-server probe supplies the trace layout, envelope and name
        # validation (FastFleetBackend runs the full spec checks per chunk).
        probe = FastFleetBackend(list(specs[:1]), gpu_specs, config)
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate server names: {names}")
        self.specs = list(specs)
        self.gpu_specs = tuple(gpu_specs)
        self.config = config
        self.n_gpus = probe.n_gpus
        self._names = names
        self._priorities = [s.priority for s in specs]
        self._envelope = probe._envelope
        self._channels = probe._channels
        self._chan_index = dict(probe._chan_index)
        n = len(specs)

        # The shared data plane: one row of trace channels per server,
        # refreshed by each worker after every run_periods barrier.
        self._shm = shared_memory.SharedMemory(
            create=True, size=n * len(self._channels) * 8
        )
        self._rows = np.ndarray(
            (n, len(self._channels)), dtype=np.float64, buffer=self._shm.buf
        )
        self._rows[:] = np.nan

        bounds = np.linspace(0, n, n_workers + 1).astype(int)
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._conns = []
        self._procs = []
        self._slices: list[tuple[int, int]] = []
        for w in range(n_workers):
            lo, hi = int(bounds[w]), int(bounds[w + 1])
            if lo == hi:
                continue
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.specs[lo:hi],
                    self.gpu_specs,
                    config,
                    self._shm.name,
                    n,
                    len(self._channels),
                    lo,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._slices.append((lo, hi))
        self._ran = False
        self._closed = False
        self.period_index = 0

    @property
    def n_workers(self) -> int:
        """Live worker processes (capped at the fleet size)."""
        return len(self._procs)

    # -- control plane -------------------------------------------------------

    def _broadcast(self, cmd: str, payloads: list[Any]) -> list[Any]:
        """Scatter a command to every worker, then barrier on the acks."""
        if self._closed:
            raise ConfigurationError("parallel fleet backend is closed")
        for conn, payload in zip(self._conns, payloads):
            conn.send((cmd, payload))
        results = []
        for conn in self._conns:
            status, value = conn.recv()
            if status != "ok":  # pragma: no cover - protocol guard
                raise ConfigurationError(f"fleet worker failed: {value}")
            results.append(value)
        return results

    def run_periods(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError("n_periods must be >= 0")
        if n == 0:
            return
        self._broadcast("run", [n] * len(self._conns))
        self.period_index += n
        self._ran = True

    def set_budgets(self, budgets_w: list[float]) -> None:
        if len(budgets_w) != len(self.specs):
            raise ConfigurationError(
                f"expected {len(self.specs)} budgets, got {len(budgets_w)}"
            )
        payloads = [list(budgets_w[lo:hi]) for lo, hi in self._slices]
        self._broadcast("budgets", payloads)

    # -- data plane (reads straight from the shared segment) -----------------

    @property
    def names(self) -> list[str]:
        return list(self._names)

    def states(self) -> list[ServerPowerState]:
        n = len(self.specs)
        lo, hi = self._envelope
        if self._ran:
            last = self._rows
            power = last[:, self._chan_index["power_w"]]
            pressure: np.ndarray | None = None
            for g in range(self.n_gpus):
                c = 1 + g
                pg = np.maximum(
                    last[:, self._chan_index[f"util_{c}"]]
                    - last[:, self._chan_index[f"tput_norm_{c}"]],
                    0.0,
                )
                pressure = pg if pressure is None else pressure + pg
            demand = np.clip(pressure / self.n_gpus, 0.0, 1.0)
        else:
            power = np.full(n, np.nan)
            demand = np.ones(n)
        return [
            ServerPowerState(
                name=self._names[i],
                power_w=float(power[i]),
                p_min_w=lo,
                p_max_w=hi,
                demand=float(demand[i]),
                priority=self._priorities[i],
            )
            for i in range(n)
        ]

    def last_powers(self) -> list[float]:
        if not self._ran:
            raise ConfigurationError("fleet has not run yet")
        return self._rows[:, self._chan_index["power_w"]].tolist()

    def server_trace(self, index: int) -> Trace:
        if index < 0 or index >= len(self.specs):
            raise ConfigurationError(f"server index {index} out of range")
        for w, (lo, hi) in enumerate(self._slices):
            if lo <= index < hi:
                conn = self._conns[w]
                conn.send(("trace", index - lo))
                status, rows = conn.recv()
                if status != "ok":  # pragma: no cover - protocol guard
                    raise ConfigurationError(f"fleet worker failed: {rows}")
                trace = Trace(self._channels, capacity=max(len(rows), 1))
                for row in rows:
                    trace.append_row(dict(zip(self._channels, row)))
                return trace
        raise ConfigurationError(f"no worker owns server index {index}")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close", None))
                conn.recv()
            except (OSError, EOFError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck-worker fallback
                proc.terminate()
        del self._rows
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> ParallelFleetBackend:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass
