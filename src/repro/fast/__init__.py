"""Opt-in relaxed-semantics fast engine.

Everything under ``repro.fast`` is allowed to change float semantics —
fused/batched reductions across servers, MPC factorization reuse across
servers and ticks, pre-solved cap-projection caches, and shared-memory
parallel fleet stepping. The reference engine stays untouched as ground
truth; ``repro.equiv`` verifies the fast engine against it with explicit
statistical tolerances (distributions of power error, cap violations and
settle times), never with digests.

Opt in per process with ``REPRO_ENGINE=fast`` / ``--engine fast`` or
programmatically with :func:`set_engine`; the switch itself lives at the
kernel layer in :mod:`repro.enginemode` (re-exported here via
``repro.fast.mode``) so the engine layer can consult it without an
upward import.

This package is *sanctioned* for the REP2xx float-semantics lint rules
(see ``LintConfig.sanctioned_rules``): unordered reductions are its whole
point, and the sanction mechanism keeps that legal here without blanket
suppressions or weakening the rules anywhere else.
"""

from __future__ import annotations

from typing import Any

from .mode import ENGINES, engine_name, fast_enabled, fast_engine, set_engine

__all__ = [
    "ENGINES",
    "engine_name",
    "fast_enabled",
    "fast_engine",
    "set_engine",
    "FastMimoPowerMpc",
    "FastFleetBackend",
    "ParallelFleetBackend",
]

# Heavy submodules load lazily: ``repro.fast`` must stay importable
# from the CLI without dragging in scipy/the fleet.
_LAZY = {
    "FastMimoPowerMpc": ("repro.fast.mpc", "FastMimoPowerMpc"),
    "FastFleetBackend": ("repro.fast.fleet", "FastFleetBackend"),
    "ParallelFleetBackend": ("repro.fast.parallel", "ParallelFleetBackend"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
