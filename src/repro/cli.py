"""Command-line interface: run paper experiments and print their reports.

Usage::

    repro list                      # show available experiment ids
    repro run fig3 --seed 1         # run one experiment
    repro run all                   # run everything (slow)
    repro sweep all --jobs 4        # run everything in parallel workers
    repro sweep table1 fig3 fig7 --set-points 850 900 1000
    repro bench-compare benchmarks/BASELINE.json bench-out/
    repro profile fig3              # cProfile one experiment, show hot spots
    repro lint src/repro            # determinism/units/API static analysis
    repro stability                 # print the Section 4.4 gain bound
    repro faults                    # fault-injection / degradation study

Installed both as ``repro`` and (for backwards compatibility) ``capgpu``;
also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CapGPU reproduction — run paper experiments on the simulated testbed",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run an experiment (or 'all')")
    run_p.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id from 'capgpu list', or 'all' "
             "(defaults to fig9-scale with --fleet)",
    )
    run_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run_p.add_argument(
        "--fleet", action="store_true",
        help="fleet mode: default the experiment to fig9-scale (hierarchical "
             "budget reallocation over many servers)",
    )
    run_p.add_argument(
        "--fleet-servers", type=int, default=None, metavar="N",
        help="fleet size for fleet-capable experiments (e.g. fig9-scale; "
             "default 64)",
    )
    run_p.add_argument(
        "--fleet-backend",
        choices=("soa", "reference", "fast", "fast-parallel"),
        default=None,
        help="fleet stepping backend: 'soa' (vectorized, default) or "
             "'reference' (N scalar engines, bit-identical); 'fast' / "
             "'fast-parallel' require --engine fast",
    )
    run_p.add_argument(
        "--engine", choices=("reference", "fast"), default=None,
        help="execution engine: 'reference' (bit-identical ground truth, "
             "default) or 'fast' (relaxed float semantics, statistically "
             "equivalent per repro.equiv — see docs/simulator.md)",
    )
    run_p.add_argument(
        "--fleet-scenario", default=None, metavar="NAME",
        help="registered fleet scenario to build (default tree-static; "
             "see repro.fleet.scenarios)",
    )
    run_p.add_argument(
        "--save-dir", default=None,
        help="directory to write every result trace as <experiment>_<name>.npz",
    )
    run_p.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint the run every N engine periods (crash-safe, "
             "bit-identical; supported by checkpointable experiments "
             "such as fig9)",
    )
    run_p.add_argument(
        "--checkpoint-file", default=None, metavar="FILE",
        help="checkpoint blob path (required with --checkpoint-every/--resume)",
    )
    run_p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-file if it exists",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="run many experiments in parallel worker processes "
             "(bit-for-bit identical to sequential execution)",
    )
    sweep_p.add_argument(
        "experiments", nargs="*",
        help="experiment ids, 'all', or 'ablation' (expands to ablation-*); "
             "omitted when resuming (ids come from the journal manifest)",
    )
    sweep_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    sweep_p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (default 0 = one per CPU core; 1 = run inline)",
    )
    sweep_p.add_argument(
        "--replicates", type=int, default=1, metavar="R",
        help="repetitions per experiment; replicate seeds derive from --seed "
             "via repro.rng.spawn (default 1)",
    )
    sweep_p.add_argument(
        "--set-points", type=float, nargs="*", default=None, metavar="W",
        help="power caps to sweep (applied to experiments that accept "
             "set_point_w; others run once)",
    )
    sweep_p.add_argument(
        "--fleet-servers", type=int, default=None, metavar="N",
        help="fleet size for fleet-capable experiments in the sweep "
             "(e.g. fig9-scale; others ignore it)",
    )
    sweep_p.add_argument(
        "--fleet-backend",
        choices=("soa", "reference", "fast", "fast-parallel"),
        default=None,
        help="fleet stepping backend for fleet-capable experiments",
    )
    sweep_p.add_argument(
        "--engine", choices=("reference", "fast"), default=None,
        help="execution engine for every job in the sweep (exported as "
             "REPRO_ENGINE so spawn- and fork-started workers agree)",
    )
    sweep_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the full sweep report (renders + data + timings) as JSON",
    )
    sweep_p.add_argument(
        "--events", default=None, metavar="FILE",
        help="append structured per-job events as JSON lines",
    )
    sweep_p.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job rendered reports (summary table only)",
    )
    sweep_p.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="journal per-job completion to DIR (manifest.json + append-only "
             "journal.jsonl) so a killed sweep can be resumed with --resume",
    )
    sweep_p.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume a journalled sweep: replay DIR's journal, skip completed "
             "jobs, re-run only the remainder with their original seeds",
    )

    bench_p = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_*.json files and fail past regression thresholds",
    )
    bench_p.add_argument("baseline", help="baseline BENCH_*.json file (or directory)")
    bench_p.add_argument("candidate", help="candidate BENCH_*.json file (or directory)")
    bench_p.add_argument(
        "--wall-threshold", type=float, default=0.20, metavar="FRAC",
        help="fail if a bench is slower than baseline by more than this "
             "fraction (default 0.20; loosen across machines)",
    )
    bench_p.add_argument(
        "--metric-threshold", type=float, default=0.05, metavar="FRAC",
        help="fail if a headline metric drifts by more than this fraction "
             "in either direction (default 0.05)",
    )
    bench_p.add_argument(
        "--fail-on-missing", action="store_true",
        help="also fail when a baseline bench is missing from the candidate",
    )
    bench_p.add_argument(
        "--engine", choices=("reference", "fast"), default=None,
        help="compare only this engine's baseline namespace (default: every "
             "namespace present in either file); CI runs one gate per "
             "engine with separate wall thresholds",
    )
    bench_p.add_argument(
        "--summary-md", default=None, metavar="FILE",
        help="also write the comparison as a markdown table (append mode; "
             "point it at $GITHUB_STEP_SUMMARY in CI)",
    )

    prof_p = sub.add_parser(
        "profile",
        help="run one experiment under cProfile and print the hot functions "
             "plus per-phase wall times",
    )
    prof_p.add_argument("experiment", help="experiment id from 'repro list'")
    prof_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    prof_p.add_argument(
        "--sort", default="cumulative", metavar="KEY",
        help="pstats sort key: cumulative, tottime, calls, ... "
             "(default cumulative)",
    )
    prof_p.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="number of functions to list (default 25)",
    )
    prof_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="also dump the raw profile (for snakeviz / pstats)",
    )

    stab_p = sub.add_parser(
        "stability", help="print the Section 4.4 stable gain-variation range"
    )
    stab_p.add_argument("--seed", type=int, default=0)

    ident_p = sub.add_parser(
        "identify", help="run system identification and print the model + validation"
    )
    ident_p.add_argument("--seed", type=int, default=0)
    ident_p.add_argument("--points", type=int, default=8,
                         help="excitation points per channel")

    faults_p = sub.add_parser(
        "faults",
        help="run the fault-injection study (settling time and cap-violation "
             "rate per fault class; see docs/robustness.md)",
    )
    faults_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    faults_p.add_argument(
        "--set-point", type=float, default=900.0, dest="set_point_w",
        help="power budget in watts (default 900)",
    )
    faults_p.add_argument(
        "--n-periods", type=int, default=60,
        help="control periods per run (default 60)",
    )
    faults_p.add_argument(
        "--fault-start", type=int, default=30,
        help="control period at which the fault window opens (default 30)",
    )
    faults_p.add_argument(
        "--fault-periods", type=int, default=10,
        help="length of the fault window in periods (default 10)",
    )
    faults_p.add_argument(
        "--classes", nargs="*", default=None, metavar="FAULT",
        help="fault classes to run (default: the whole catalog; "
             "see 'capgpu faults --list-classes')",
    )
    faults_p.add_argument(
        "--list-classes", action="store_true",
        help="print the fault-class catalog and exit",
    )
    faults_p.add_argument(
        "--no-watchdog", action="store_true",
        help="disable the safe-mode watchdog (shows the unguarded failure modes)",
    )
    faults_p.add_argument(
        "--save-dir", default=None,
        help="directory to write each run's trace as fault-tolerance_<class>.npz",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the determinism/units/API static-analysis rules "
             "(REP1xx-REP4xx; see docs/static-analysis.md)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint_p)

    rep_p = sub.add_parser(
        "report", help="run experiments and write a markdown reproduction report"
    )
    rep_p.add_argument("-o", "--output", default="report.md")
    rep_p.add_argument("--seed", type=int, default=0)
    rep_p.add_argument(
        "--ids", nargs="*", default=None,
        help="experiment ids to include (default: all)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the streaming digital-twin service: ingest a telemetry "
             "stream, close event-time windows, simulate deployed + shadow "
             "what-ifs, answer over HTTP (see docs/service.md)",
    )
    serve_p.add_argument(
        "--replay", default=None, metavar="PATH",
        help="stream a recorded artifact as the event source: a .npz trace "
             "(repro run --save-dir output, file or directory) or a .jsonl "
             "event log",
    )
    serve_p.add_argument(
        "--stdin", action="store_true", dest="use_stdin",
        help="read line-delimited JSON events from stdin until EOF",
    )
    serve_p.add_argument(
        "--ingest-port", type=int, default=None, metavar="PORT",
        help="also listen for line-delimited JSON producers on TCP PORT "
             "(0 = ephemeral)",
    )
    serve_p.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the HTTP API (/healthz /windows /whatif /metrics) on "
             "HOST:PORT (PORT 0 = ephemeral; default: no HTTP)",
    )
    # Topology flags default to None (not their effective values) so that
    # --resume can refuse any flag the user actually typed; the effective
    # defaults are applied in _cmd_serve when building a fresh config.
    serve_p.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="deployed fleet scenario (default tree-static; "
             "see repro.fleet.scenarios)",
    )
    serve_p.add_argument(
        "--servers", type=int, default=None, metavar="N",
        help="deployed fleet size (default 8)",
    )
    serve_p.add_argument(
        "--window-s", type=float, default=None, metavar="SEC",
        help="event-time window width in seconds (default 1.0)",
    )
    serve_p.add_argument(
        "--periods-per-window", type=int, default=None, metavar="N",
        help="rack periods the twins advance per closed window (default 1)",
    )
    serve_p.add_argument(
        "--seed", type=int, default=None, help="twin seed (default 0)"
    )
    serve_p.add_argument(
        "--shadows", default=None, metavar="SPECS",
        help="comma-separated shadow what-ifs simulated alongside the "
             "deployed twin, e.g. 'cap=80,cap=120,cap=60+engine=fast' "
             "(keys: cap=<percent>, scenario=<name>, engine=reference|fast)",
    )
    serve_p.add_argument(
        "--journal", default=None, metavar="DIR", dest="journal_dir",
        help="journal closed windows to DIR (manifest.json + hash-chained "
             "windows.jsonl WAL + twin.ckpt) so a killed service resumes "
             "bit-identically with --resume",
    )
    serve_p.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume a journalled service from DIR (configuration comes "
             "from its manifest; topology flags are refused)",
    )
    serve_p.add_argument(
        "--oneshot", action="store_true",
        help="exit after the replay source is exhausted instead of staying "
             "up for live ingestion",
    )
    serve_p.add_argument(
        "--max-windows", type=int, default=None, metavar="N",
        help="stop after closing N windows (counts resumed windows)",
    )
    serve_p.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="arm a seeded network/twin fault plan (JSON; see "
             "docs/robustness.md) — deterministic, replayable chaos on "
             "every ingest source",
    )
    serve_p.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="override the fault plan's own seed",
    )
    serve_p.add_argument(
        "--queue-size", type=int, default=None, metavar="N",
        help="bounded ingest queue capacity before the load-shedding "
             "ladder engages (default 256)",
    )
    serve_p.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="consecutive twin crash/stall restarts before the service "
             "gives up with exit 2 (default 5)",
    )
    serve_p.add_argument(
        "--idle-timeout-s", type=float, default=None, metavar="SEC",
        help="per-connection TCP read deadline (default 30; 0 disables)",
    )
    serve_p.add_argument(
        "--max-line-bytes", type=int, default=None, metavar="BYTES",
        help="largest accepted LDJSON frame on any source (default 65536)",
    )

    twin_p = sub.add_parser(
        "twin",
        help="offline one-shot digital twin: advance the deployed + shadow "
             "simulations N windows and print their cumulative answers "
             "(digest-comparable to a served /whatif at window N)",
    )
    twin_p.add_argument(
        "--scenario", default="tree-static", metavar="NAME",
        help="deployed fleet scenario (default tree-static)",
    )
    twin_p.add_argument(
        "--servers", type=int, default=8, metavar="N",
        help="deployed fleet size (default 8)",
    )
    twin_p.add_argument(
        "--windows", type=int, required=True, metavar="N",
        help="number of windows to advance",
    )
    twin_p.add_argument(
        "--periods-per-window", type=int, default=1, metavar="N",
        help="rack periods per window (default 1)",
    )
    twin_p.add_argument("--seed", type=int, default=0, help="twin seed (default 0)")
    twin_p.add_argument(
        "--shadow", action="append", default=None, metavar="SPEC",
        help="shadow what-if spec (repeatable), e.g. --shadow cap=80",
    )
    twin_p.add_argument(
        "--json", action="store_true",
        help="print the full answer object as JSON instead of the summary",
    )
    return parser


def _cmd_list() -> int:
    from .experiments import experiment_ids

    for eid in experiment_ids():
        print(eid)
    return 0


def _checkpoint_kwargs(args: argparse.Namespace, stop_flag) -> dict:
    """Checkpoint kwargs for ``run_experiment``, validated against the
    experiment's signature (not every experiment is checkpointable)."""
    import inspect

    from .experiments import EXPERIMENTS

    if args.checkpoint_file is None:
        raise SystemExit(
            "repro run: --checkpoint-every/--resume require --checkpoint-file"
        )
    if args.experiment == "all":
        raise SystemExit("repro run: checkpointing requires a single experiment id")
    runner = EXPERIMENTS.get(args.experiment)
    accepted = (
        frozenset(inspect.signature(runner).parameters) if runner is not None else frozenset()
    )
    if runner is not None and "checkpoint_path" not in accepted:
        raise SystemExit(
            f"repro run: experiment {args.experiment!r} does not support "
            "checkpointing (no checkpoint_path parameter)"
        )
    kwargs = {
        "checkpoint_path": args.checkpoint_file,
        "checkpoint_every": args.checkpoint_every,
        "resume": args.resume,
        "stop_flag": stop_flag,
    }
    return {k: v for k, v in kwargs.items() if k in accepted}


def _fleet_kwargs(args: argparse.Namespace) -> dict:
    """Fleet kwargs for ``run_experiment``, validated against the
    experiment's signature (only fleet-capable experiments take them)."""
    import inspect

    from .experiments import EXPERIMENTS

    opts = {
        "n_servers": args.fleet_servers,
        "backend": args.fleet_backend,
        "scenario": args.fleet_scenario,
    }
    opts = {k: v for k, v in opts.items() if v is not None}
    if not opts:
        return {}
    if args.experiment == "all":
        raise SystemExit("repro run: fleet options require a single experiment id")
    runner = EXPERIMENTS.get(args.experiment)
    if runner is not None:
        accepted = frozenset(inspect.signature(runner).parameters)
        rejected = sorted(set(opts) - accepted)
        if rejected:
            raise SystemExit(
                f"repro run: experiment {args.experiment!r} does not take "
                f"fleet option(s) {rejected} (not a fleet experiment)"
            )
    return opts


def _activate_engine(engine: str | None) -> None:
    """Select the execution engine for this process and its children.

    Sets both the programmatic override and ``REPRO_ENGINE`` so worker
    processes — fork- or spawn-started — build under the same engine.
    """
    if engine is None:
        return
    import os

    from .enginemode import set_engine

    os.environ["REPRO_ENGINE"] = engine
    set_engine(engine)


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import experiment_ids, run_experiment

    if args.fleet_backend in ("fast", "fast-parallel") and args.engine != "fast":
        raise SystemExit(
            f"repro run: --fleet-backend {args.fleet_backend} changes float "
            "semantics; opt in explicitly with --engine fast"
        )
    _activate_engine(args.engine)
    if args.experiment is None:
        if not args.fleet:
            raise SystemExit(
                "repro run: an experiment id is required (or pass --fleet "
                "for the fleet-scale default)"
            )
        args.experiment = "fig9-scale"
    checkpointing = (
        args.checkpoint_every is not None
        or args.checkpoint_file is not None
        or args.resume
    )
    kwargs: dict = {}
    if checkpointing:
        from .checkpoint import (
            CheckpointInterrupt,
            ShutdownFlag,
            install_signal_handlers,
            shutdown_event,
        )

        flag = ShutdownFlag()
        kwargs = _checkpoint_kwargs(args, flag)
        install_signal_handlers(flag)
    kwargs.update(_fleet_kwargs(args))
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for eid in ids:
        if checkpointing:
            try:
                result = run_experiment(eid, seed=args.seed, **kwargs)
            except CheckpointInterrupt as stop:
                import json

                event = shutdown_event(
                    stop.signum, checkpoint=str(stop.checkpoint_path)
                )
                print(json.dumps(event, sort_keys=True), file=sys.stderr)
                return stop.exit_code
        else:
            result = run_experiment(eid, seed=args.seed, **kwargs)
        print(result.render())
        print()
        if args.save_dir is not None:
            _save_traces(result, args.save_dir)
    return 0


def _save_traces(result, save_dir: str) -> None:
    """Persist every Trace found in the result's data as NPZ."""
    import re
    from pathlib import Path

    from .telemetry import Trace, save_trace_npz

    out = Path(save_dir)
    out.mkdir(parents=True, exist_ok=True)

    def walk(obj, label):
        if isinstance(obj, Trace):
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", str(label)).strip("-")
            path = out / f"{result.experiment_id}_{slug}.npz"
            save_trace_npz(obj, path)
            print(f"saved {path}")
        elif isinstance(obj, dict):
            for key, value in obj.items():
                walk(value, f"{label}-{key}" if label else str(key))

    walk(result.data, "")


def _expand_sweep_ids(tokens: list[str]) -> list[str]:
    """Expand 'all' / 'ablation' meta-ids into concrete experiment ids."""
    from .experiments import experiment_ids

    ids: list[str] = []
    for token in tokens:
        if token == "all":
            ids.extend(experiment_ids())
        elif token == "ablation":
            ids.extend(e for e in experiment_ids() if e.startswith("ablation-"))
        else:
            ids.append(token)
    seen: set[str] = set()
    return [e for e in ids if not (e in seen or seen.add(e))]


def _sweep_jobs_and_journal(args: argparse.Namespace):
    """Build (jobs, journal, completed-records) for a sweep invocation.

    Fresh sweeps derive jobs from the CLI arguments (and optionally start a
    journal); ``--resume`` rebuilds the identical job list from the journal
    manifest — per-job seeds are a pure function of the manifest arguments —
    and pre-fills records replayed from the WAL.
    """
    from .checkpoint import SweepJournal
    from .errors import CheckpointError
    from .runner import JobRecord, build_jobs

    if args.resume:
        if args.experiments or args.journal_dir or args.engine:
            raise SystemExit(
                "repro sweep: --resume takes its experiments, journal "
                "directory and engine from the manifest; drop the extra "
                "arguments"
            )
        journal = SweepJournal.open(args.resume)
        manifest = journal.manifest()
        # Re-apply the recorded engine so resumed jobs build under the same
        # semantics the sweep started with.
        _activate_engine((manifest["extra_params"] or {}).get("engine"))
        jobs = build_jobs(
            manifest["experiments"],
            seed=manifest["seed"],
            replicates=manifest["replicates"],
            set_points_w=manifest["set_points_w"],
            extra_params=manifest["extra_params"] or None,
        )
        if [job.key for job in jobs] != manifest["job_keys"]:
            raise CheckpointError(
                f"{journal.manifest_path}: rebuilt job list does not match the "
                "manifest (code or experiment registry changed since the sweep "
                "started) — resume would not be bit-identical"
            )
        replay = journal.replay()
        completed = {
            key: JobRecord.from_dict(rec) for key, rec in replay.completed.items()
        }
        print(
            f"[sweep] resume: {len(completed)}/{len(jobs)} jobs already "
            f"complete, {len(replay.in_flight)} crashed in flight, "
            f"{len(jobs) - len(completed)} to run",
            file=sys.stderr,
        )
        return jobs, journal, completed

    if not args.experiments:
        raise SystemExit("repro sweep: experiment ids required (or --resume DIR)")
    if args.fleet_backend in ("fast", "fast-parallel") and args.engine != "fast":
        raise SystemExit(
            f"repro sweep: --fleet-backend {args.fleet_backend} changes float "
            "semantics; opt in explicitly with --engine fast"
        )
    _activate_engine(args.engine)
    ids = _expand_sweep_ids(args.experiments)
    # Fleet knobs ride as extra params: build_jobs filters them per
    # experiment against the runner's signature, so a mixed sweep simply
    # applies them to the fleet-capable ids. The engine is not a runner
    # kwarg (no runner takes it) — it rides here purely so the journal
    # manifest records it and --resume re-activates it.
    extra = {
        k: v
        for k, v in {
            "n_servers": args.fleet_servers,
            "backend": args.fleet_backend,
            "engine": args.engine,
        }.items()
        if v is not None
    }
    jobs = build_jobs(
        ids,
        seed=args.seed,
        replicates=args.replicates,
        set_points_w=args.set_points,
        extra_params=extra or None,
    )
    journal = None
    if args.journal_dir:
        journal = SweepJournal.create(
            args.journal_dir,
            experiments=ids,
            seed=args.seed,
            replicates=args.replicates,
            set_points_w=args.set_points,
            extra_params=extra,
            job_keys=[job.key for job in jobs],
        )
    return jobs, journal, None


def _cmd_sweep(args: argparse.Namespace) -> int:
    import contextlib
    import os

    from .checkpoint import ShutdownFlag, install_signal_handlers, shutdown_event
    from .runner import run_sweep

    jobs, journal, completed = _sweep_jobs_and_journal(args)
    n_jobs = args.jobs if args.jobs >= 1 else (os.cpu_count() or 1)
    stop_flag = None
    if journal is not None:
        # Journalled sweeps wind down gracefully: finish in-flight jobs,
        # journal them, and exit 130/143 so --resume picks up the rest.
        stop_flag = ShutdownFlag()
        install_signal_handlers(stop_flag)

    with contextlib.ExitStack() as stack:
        if journal is not None:
            stack.enter_context(journal)
        events_fh = (
            stack.enter_context(open(args.events, "a", encoding="utf-8"))
            if args.events
            else None
        )

        def on_event(event):
            line = f"[sweep] {event.kind} {event.job_key} (attempt {event.attempt}"
            if event.wall_s is not None:
                line += f", {event.wall_s:.2f} s"
            if event.error:
                line += f", {event.error}"
            print(line + ")", file=sys.stderr)
            if events_fh is not None:
                import json

                events_fh.write(json.dumps(event.to_dict()) + "\n")
                events_fh.flush()

        report = run_sweep(
            jobs,
            n_jobs=n_jobs,
            on_event=on_event,
            journal=journal,
            completed=completed,
            stop_flag=stop_flag,
        )
        if stop_flag:
            event = shutdown_event(
                stop_flag.signum,
                checkpoint=str(journal.directory) if journal is not None else None,
            )
            if journal is not None:
                journal.shutdown(event)
            import json

            print(json.dumps(event, sort_keys=True), file=sys.stderr)
    if not args.quiet:
        for rec in report.records:
            if rec.render:
                print(rec.render)
                print()
    print(report.render_summary())
    if args.out:
        path = report.write_json(args.out)
        print(f"wrote {path}")
    if stop_flag:
        return stop_flag.exit_code
    return 0 if report.ok else 1


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .benchcompare import compare_bench, load_bench
    from .errors import ExperimentError

    try:
        comparison = compare_bench(
            load_bench(args.baseline),
            load_bench(args.candidate),
            wall_threshold=args.wall_threshold,
            metric_threshold=args.metric_threshold,
            engine=args.engine,
        )
    except ExperimentError as err:
        # Unusable inputs (missing file, invalid JSON, disjoint bench keys)
        # are exit code 2 so CI can tell "comparison impossible" apart from
        # "comparison ran and found a regression" (exit 1).
        print(f"bench-compare: {err}", file=sys.stderr)
        return 2
    print(comparison.render())
    if args.summary_md:
        # Append: $GITHUB_STEP_SUMMARY accumulates across steps.
        with open(args.summary_md, "a", encoding="utf-8") as fh:
            fh.write(comparison.render_markdown() + "\n")
    if args.fail_on_missing and comparison.missing_in_candidate:
        print("FAIL: baseline benches missing from candidate")
        return 1
    return 0 if comparison.ok else 1


def _parse_host_port(text: str, flag: str) -> tuple[str, int]:
    from .errors import ConfigurationError

    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(f"{flag} takes HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"{flag} port must be an integer, got {port!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .errors import (
        CheckpointError,
        ConfigurationError,
        ForcedShutdown,
        ServiceFailedError,
    )
    from .service import ServeOptions, ServiceConfig, parse_shadow_specs, serve
    from .service.resilience import ResilienceConfig

    def announce(message: str) -> None:
        print(f"[serve] {message}", file=sys.stderr, flush=True)

    try:
        resume = args.resume is not None
        if resume:
            if args.journal_dir is not None:
                raise ConfigurationError(
                    "--resume and --journal are mutually exclusive (resume "
                    "reuses the journal directory it is given)"
                )
            overridden = [
                flag
                for flag, value in (
                    ("--scenario", args.scenario),
                    ("--servers", args.servers),
                    ("--window-s", args.window_s),
                    ("--periods-per-window", args.periods_per_window),
                    ("--seed", args.seed),
                    ("--shadows", args.shadows),
                )
                if value is not None
            ]
            if overridden:
                raise ConfigurationError(
                    f"{', '.join(overridden)} come from the journal manifest "
                    "on --resume; drop them"
                )
        if not (args.replay or args.use_stdin or args.ingest_port is not None):
            raise ConfigurationError(
                "no event source: give --replay, --stdin, or --ingest-port"
            )
        listen_host, listen_port = ("127.0.0.1", None)
        if args.listen is not None:
            listen_host, listen_port = _parse_host_port(args.listen, "--listen")
        config = None
        if not resume:
            shadows = (
                parse_shadow_specs(args.shadows) if args.shadows is not None else ()
            )
            config = ServiceConfig(
                scenario=args.scenario if args.scenario is not None else "tree-static",
                n_servers=args.servers if args.servers is not None else 8,
                window_s=args.window_s if args.window_s is not None else 1.0,
                periods_per_window=(
                    args.periods_per_window
                    if args.periods_per_window is not None
                    else 1
                ),
                seed=args.seed if args.seed is not None else 0,
                shadows=shadows,
            )
        defaults = ResilienceConfig()
        resilience = ResilienceConfig(
            queue_size=(
                args.queue_size
                if args.queue_size is not None
                else defaults.queue_size
            ),
            max_line_bytes=(
                args.max_line_bytes
                if args.max_line_bytes is not None
                else defaults.max_line_bytes
            ),
            idle_timeout_s=(
                (args.idle_timeout_s if args.idle_timeout_s > 0 else None)
                if args.idle_timeout_s is not None
                else defaults.idle_timeout_s
            ),
            max_restarts=(
                args.max_restarts
                if args.max_restarts is not None
                else defaults.max_restarts
            ),
            seed=args.seed if args.seed is not None else defaults.seed,
        )
        options = ServeOptions(
            journal_dir=Path(args.resume) if resume else (
                Path(args.journal_dir) if args.journal_dir is not None else None
            ),
            resume=resume,
            replay=Path(args.replay) if args.replay is not None else None,
            use_stdin=args.use_stdin,
            ingest_port=args.ingest_port,
            listen_host=listen_host,
            listen_port=listen_port,
            oneshot=args.oneshot,
            max_windows=args.max_windows,
            fault_plan=Path(args.fault_plan) if args.fault_plan is not None else None,
            fault_seed=args.fault_seed,
            resilience=resilience,
        )
        service = serve(config, options, announce=announce)
    except ServiceFailedError as err:
        # The supervisor exhausted its restart budget: the crash-loop
        # give-up contract is exit 2 (docs/robustness.md).
        print(f"serve: {err}", file=sys.stderr)
        return 2
    except ForcedShutdown as err:
        # Second SIGINT: conventional SIGINT exit status.
        print(f"serve: {err}", file=sys.stderr)
        return 130
    except (CheckpointError, ConfigurationError) as err:
        # Setup/durability refusals (journal exists, corrupt WAL, bad spec)
        # are exit 2, like every other "could not even start" CLI path.
        print(f"serve: {err}", file=sys.stderr)
        return 2
    try:
        print(json.dumps(service.snapshot(), sort_keys=True))
    finally:
        service.close()
    return 0


def _cmd_twin(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError
    from .service import offline_whatif
    from .service.shadow import parse_shadow_spec

    try:
        shadows = tuple(parse_shadow_spec(s) for s in (args.shadow or ()))
        names = [s.name for s in shadows]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shadow specs: {names}")
        answers = offline_whatif(
            args.scenario,
            args.servers,
            args.windows,
            periods_per_window=args.periods_per_window,
            seed=args.seed,
            shadows=shadows,
        )
    except ConfigurationError as err:
        print(f"twin: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(answers, sort_keys=True, indent=2))
        return 0
    deployed = answers["deployed"]
    print(
        f"deployed: scenario={deployed['scenario']} "
        f"servers={deployed['n_servers']} windows={deployed['windows']} "
        f"digest={deployed['digest']}"
    )
    if "total_power_w" in deployed:
        print(
            f"  power {deployed['total_power_w']:.1f} W / "
            f"budget {deployed['budget_w']:.1f} W "
            f"(err {deployed['tracking_err_w']:+.1f} W)"
        )
    for name in sorted(answers["shadows"]):
        answer = answers["shadows"][name]
        line = f"shadow {name}: digest={answer['digest']}"
        if "total_power_w" in answer:
            line += (
                f" power={answer['total_power_w']:.1f}W"
                f" budget={answer['budget_w']:.1f}W"
            )
        line += f" equiv_ok={answer['equiv_vs_deployed']['ok']}"
        print(line)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profiling import profile_experiment

    report = profile_experiment(
        args.experiment,
        seed=args.seed,
        sort=args.sort,
        top=args.top,
        prof_out=args.out,
    )
    print(report.render())
    return 0


def _cmd_identify(seed: int, points: int) -> int:
    from .sim import paper_scenario
    from .sysid import (
        cross_validate_power_model,
        identify_power_model,
        residual_summary,
    )

    sim = paper_scenario(seed=seed)
    ds = identify_power_model(sim, points_per_channel=points)
    fit = ds.fit
    print("identified model p = A.F + C")
    for ref, gain in zip(sim.server.channels, fit.a_w_per_mhz):
        print(f"  A[{ref.name}] = {gain:.4f} W/MHz")
    print(f"  C = {fit.c_w:.1f} W")
    print(f"  training R^2 = {fit.r2:.4f}, RMSE = {fit.rmse_w:.2f} W "
          f"({fit.n_samples} points)")
    scores = cross_validate_power_model(ds.f_mhz, ds.power_w, k_folds=4)
    print(f"  4-fold CV R^2 = {min(scores):.4f} .. {max(scores):.4f}")
    summary = residual_summary(fit, ds.f_mhz, ds.power_w)
    print(f"  residuals: std {summary.std_w:.2f} W, max |r| "
          f"{summary.max_abs_w:.2f} W, lag-1 autocorr "
          f"{summary.lag1_autocorr:+.2f}, looks white: {summary.looks_white}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .experiments.fault_tolerance import fault_catalog, run_fault_tolerance

    if args.list_classes:
        for name in fault_catalog(args.fault_start, args.fault_periods):
            print(name)
        return 0
    result = run_fault_tolerance(
        seed=args.seed,
        set_point_w=args.set_point_w,
        n_periods=args.n_periods,
        fault_start=args.fault_start,
        fault_periods=args.fault_periods,
        classes=tuple(args.classes) if args.classes is not None else None,
        watchdog=not args.no_watchdog,
    )
    print(result.render())
    if args.save_dir is not None:
        _save_traces(result, args.save_dir)
    return 0


def _cmd_stability(seed: int) -> int:
    from .core import stable_gain_range
    from .experiments import identified_model

    model = identified_model(seed)
    r = np.full(model.n_channels, 5e-5)
    sweep = stable_gain_range(model.a_w_per_mhz, r)
    lo, hi = sweep.stable_interval()
    print(f"identified gains A = {np.round(model.a_w_per_mhz, 4)} (W/MHz)")
    print(
        "closed loop remains stable for uniform gain variation "
        f"g in [{lo:.2f}, {hi:.2f}] (A' = g*A)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench-compare":
        return _cmd_bench_compare(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "stability":
        return _cmd_stability(args.seed)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "identify":
        return _cmd_identify(args.seed, args.points)
    if args.command == "lint":
        from .lint.cli import run_lint_cli

        return run_lint_cli(args)
    if args.command == "report":
        from .report import write_report

        path = write_report(args.output, seed=args.seed, ids=args.ids)
        print(f"wrote {path}")
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "twin":
        return _cmd_twin(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
