"""Command-line interface: run paper experiments and print their reports.

Usage::

    capgpu list                     # show available experiment ids
    capgpu run fig3 --seed 1        # run one experiment
    capgpu run all                  # run everything (slow)
    capgpu stability                # print the Section 4.4 gain bound
    capgpu faults                   # fault-injection / degradation study

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="capgpu",
        description="CapGPU reproduction — run paper experiments on the simulated testbed",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run an experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id from 'capgpu list', or 'all'")
    run_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run_p.add_argument(
        "--save-dir", default=None,
        help="directory to write every result trace as <experiment>_<name>.npz",
    )

    stab_p = sub.add_parser(
        "stability", help="print the Section 4.4 stable gain-variation range"
    )
    stab_p.add_argument("--seed", type=int, default=0)

    ident_p = sub.add_parser(
        "identify", help="run system identification and print the model + validation"
    )
    ident_p.add_argument("--seed", type=int, default=0)
    ident_p.add_argument("--points", type=int, default=8,
                         help="excitation points per channel")

    faults_p = sub.add_parser(
        "faults",
        help="run the fault-injection study (settling time and cap-violation "
             "rate per fault class; see docs/robustness.md)",
    )
    faults_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    faults_p.add_argument(
        "--set-point", type=float, default=900.0, dest="set_point_w",
        help="power budget in watts (default 900)",
    )
    faults_p.add_argument(
        "--n-periods", type=int, default=60,
        help="control periods per run (default 60)",
    )
    faults_p.add_argument(
        "--fault-start", type=int, default=30,
        help="control period at which the fault window opens (default 30)",
    )
    faults_p.add_argument(
        "--fault-periods", type=int, default=10,
        help="length of the fault window in periods (default 10)",
    )
    faults_p.add_argument(
        "--classes", nargs="*", default=None, metavar="FAULT",
        help="fault classes to run (default: the whole catalog; "
             "see 'capgpu faults --list-classes')",
    )
    faults_p.add_argument(
        "--list-classes", action="store_true",
        help="print the fault-class catalog and exit",
    )
    faults_p.add_argument(
        "--no-watchdog", action="store_true",
        help="disable the safe-mode watchdog (shows the unguarded failure modes)",
    )
    faults_p.add_argument(
        "--save-dir", default=None,
        help="directory to write each run's trace as fault-tolerance_<class>.npz",
    )

    rep_p = sub.add_parser(
        "report", help="run experiments and write a markdown reproduction report"
    )
    rep_p.add_argument("-o", "--output", default="report.md")
    rep_p.add_argument("--seed", type=int, default=0)
    rep_p.add_argument(
        "--ids", nargs="*", default=None,
        help="experiment ids to include (default: all)",
    )
    return parser


def _cmd_list() -> int:
    from .experiments import experiment_ids

    for eid in experiment_ids():
        print(eid)
    return 0


def _cmd_run(experiment: str, seed: int, save_dir: str | None = None) -> int:
    from .experiments import experiment_ids, run_experiment

    ids = experiment_ids() if experiment == "all" else [experiment]
    for eid in ids:
        result = run_experiment(eid, seed=seed)
        print(result.render())
        print()
        if save_dir is not None:
            _save_traces(result, save_dir)
    return 0


def _save_traces(result, save_dir: str) -> None:
    """Persist every Trace found in the result's data as NPZ."""
    import re
    from pathlib import Path

    from .telemetry import Trace, save_trace_npz

    out = Path(save_dir)
    out.mkdir(parents=True, exist_ok=True)

    def walk(obj, label):
        if isinstance(obj, Trace):
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", str(label)).strip("-")
            path = out / f"{result.experiment_id}_{slug}.npz"
            save_trace_npz(obj, path)
            print(f"saved {path}")
        elif isinstance(obj, dict):
            for key, value in obj.items():
                walk(value, f"{label}-{key}" if label else str(key))

    walk(result.data, "")


def _cmd_identify(seed: int, points: int) -> int:
    from .sim import paper_scenario
    from .sysid import (
        cross_validate_power_model,
        identify_power_model,
        residual_summary,
    )

    sim = paper_scenario(seed=seed)
    ds = identify_power_model(sim, points_per_channel=points)
    fit = ds.fit
    print("identified model p = A.F + C")
    for ref, gain in zip(sim.server.channels, fit.a_w_per_mhz):
        print(f"  A[{ref.name}] = {gain:.4f} W/MHz")
    print(f"  C = {fit.c_w:.1f} W")
    print(f"  training R^2 = {fit.r2:.4f}, RMSE = {fit.rmse_w:.2f} W "
          f"({fit.n_samples} points)")
    scores = cross_validate_power_model(ds.f_mhz, ds.power_w, k_folds=4)
    print(f"  4-fold CV R^2 = {min(scores):.4f} .. {max(scores):.4f}")
    summary = residual_summary(fit, ds.f_mhz, ds.power_w)
    print(f"  residuals: std {summary.std_w:.2f} W, max |r| "
          f"{summary.max_abs_w:.2f} W, lag-1 autocorr "
          f"{summary.lag1_autocorr:+.2f}, looks white: {summary.looks_white}")
    return 0


def _cmd_faults(args) -> int:
    from .experiments.fault_tolerance import fault_catalog, run_fault_tolerance

    if args.list_classes:
        for name in fault_catalog(args.fault_start, args.fault_periods):
            print(name)
        return 0
    result = run_fault_tolerance(
        seed=args.seed,
        set_point_w=args.set_point_w,
        n_periods=args.n_periods,
        fault_start=args.fault_start,
        fault_periods=args.fault_periods,
        classes=tuple(args.classes) if args.classes is not None else None,
        watchdog=not args.no_watchdog,
    )
    print(result.render())
    if args.save_dir is not None:
        _save_traces(result, args.save_dir)
    return 0


def _cmd_stability(seed: int) -> int:
    from .core import stable_gain_range
    from .experiments import identified_model

    model = identified_model(seed)
    r = np.full(model.n_channels, 5e-5)
    sweep = stable_gain_range(model.a_w_per_mhz, r)
    lo, hi = sweep.stable_interval()
    print(f"identified gains A = {np.round(model.a_w_per_mhz, 4)} (W/MHz)")
    print(
        "closed loop remains stable for uniform gain variation "
        f"g in [{lo:.2f}, {hi:.2f}] (A' = g*A)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.seed, args.save_dir)
    if args.command == "stability":
        return _cmd_stability(args.seed)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "identify":
        return _cmd_identify(args.seed, args.points)
    if args.command == "report":
        from .report import write_report

        path = write_report(args.output, seed=args.seed, ids=args.ids)
        print(f"wrote {path}")
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
