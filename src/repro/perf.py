"""Global switch between the vectorized hot path and the legacy scalar path.

The simulation/controller hot path has two implementations that are
bit-for-bit equivalent by construction and by test
(``tests/sim/test_vectorized_digest.py``):

* the *vectorized* path (default) — array-valued device state on the
  server, per-period delta-sigma rollouts in the actuator, and block
  pre-drawing of RNG samples in the workloads and telemetry noise models;
* the *legacy scalar* path — one Python call per device per tick, one RNG
  draw per sample, exactly as originally written.

Components consult :func:`vectorized_enabled` **at construction time** (the
hot loop itself never branches on it), so flipping the switch affects
simulations built afterwards. The digest-equivalence tests run the same
experiment under both paths and assert identical canonical checksums.

Control knobs, highest precedence first:

1. :func:`set_vectorized` / :func:`scalar_fallback` (tests, tooling);
2. the ``REPRO_VECTORIZED`` environment variable (``0``/``false``/``no``
   disables, anything else enables);
3. the built-in default (enabled).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["vectorized_enabled", "set_vectorized", "scalar_fallback"]

_FALSE_STRINGS = ("0", "false", "no", "off")

#: Programmatic override; ``None`` defers to the environment.
_override: bool | None = None


def vectorized_enabled() -> bool:
    """Whether newly constructed components should use the vectorized path."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_VECTORIZED")
    if env is not None and env.strip().lower() in _FALSE_STRINGS:
        return False
    return True


def set_vectorized(flag: bool | None) -> None:
    """Force the switch on/off, or ``None`` to defer to the environment."""
    global _override
    _override = None if flag is None else bool(flag)


@contextmanager
def scalar_fallback():
    """Context manager: build components on the legacy scalar path."""
    previous = _override
    set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
