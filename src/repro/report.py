"""Full reproduction report generation.

``capgpu report -o report.md`` runs every registered experiment (paper
artifacts plus extensions) and writes one self-contained markdown document:
per-experiment rendered sections, power-trace sparklines where traces are
available, and a header recording seed and versions — the artifact you
attach to a reproduction claim.
"""

from __future__ import annotations

import time
from pathlib import Path

from ._version import __version__
from .analysis import sparkline
from .atomicio import atomic_write_text
from .experiments import run_experiment
from .experiments.registry import experiment_ids
from .telemetry.trace import Trace

__all__ = ["generate_report", "write_report"]


def _trace_sparklines(data: dict, indent: str = "") -> list[str]:
    """Collect sparklines for every Trace reachable in a result's data."""
    lines: list[str] = []

    def walk(obj, label):
        if isinstance(obj, Trace) and "power_w" in obj and len(obj) > 1:
            lines.append(
                f"{indent}`{label or 'trace':>18s}` "
                f"`{sparkline(obj['power_w'], width=60)}`"
            )
        elif isinstance(obj, dict):
            for key, value in obj.items():
                walk(value, f"{label}/{key}" if label else str(key))

    walk(data, "")
    return lines


def generate_report(
    seed: int = 0,
    ids: list[str] | None = None,
    include_extensions: bool = True,
) -> str:
    """Run experiments and return the report as markdown text."""
    selected = ids if ids is not None else experiment_ids()
    if ids is None and not include_extensions:
        paper_only = {"table1", "fig2", "fig3", "fig4", "fig5",
                      "fig6", "fig7", "fig8", "fig9", "fig10"}
        selected = [e for e in selected if e in paper_only]
    parts = [
        "# CapGPU reproduction report",
        "",
        f"- package version: `{__version__}`",
        f"- seed: `{seed}`",
        f"- generated: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        f"- experiments: {', '.join(selected)}",
        "",
    ]
    for eid in selected:
        result = run_experiment(eid, seed=seed)
        parts.append(f"## {eid}: {result.title}")
        parts.append("")
        for section in result.sections:
            # Series dumps are long and machine-oriented; keep tables and
            # sparklines, link the raw data to --save-dir instead.
            if section.startswith(("power_W[", "measured_W", "predicted_W",
                                   "lat_s[", "slo_s[", "set_point_W[")):
                continue
            parts.append("```")
            parts.append(section)
            parts.append("```")
            parts.append("")
        sparks = _trace_sparklines(result.data)
        if sparks:
            parts.append("Power traces (one block char per control period):")
            parts.append("")
            parts.extend(sparks)
            parts.append("")
    return "\n".join(parts)


def write_report(path: str | Path, seed: int = 0, ids: list[str] | None = None) -> Path:
    """Generate and write the report; returns the output path."""
    return atomic_write_text(path, generate_report(seed=seed, ids=ids))
