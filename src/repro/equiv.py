"""Statistical equivalence between the fast and reference engines.

The fast engine (:mod:`repro.fast`) is allowed to change float semantics,
so its outputs can never be digest-compared to the reference. This module
is the trust bridge: it compares the two engines through *distributions of
closed-loop metrics* — per-server power tracking error, cap-violation
rates, and settle times — against the explicit tolerance table below.

Pairing, not pooling: both engines run the identical scenario (same specs,
same seeds, same RNG streams), so every fast server has a reference twin
and the comparison is on paired differences per metric. A paired test is
strictly stronger than comparing pooled distributions — a systematic
per-server bias that pooled summary statistics would average away shows up
directly.

The reference side runs on the SoA backend, which the differential suite
(``tests/fleet/test_differential.py``) pins bit-identical to N scalar
reference engines — so "SoA vs fast" *is* "reference vs fast", at fleet
scale, in test-friendly time.

The committed :data:`TOLERANCES` are the fast engine's semantic contract:
CI fails when any paired difference drifts past them, and any intentional
widening must edit this file (and justify itself in review). See
``docs/simulator.md`` for the contract's rationale and when to trust which
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigurationError
from .telemetry.trace import Trace

__all__ = [
    "ToleranceSpec",
    "TOLERANCES",
    "SETTLE_BAND_FRAC",
    "server_metrics",
    "EquivRow",
    "EquivReport",
    "compare_backends",
    "compare_traces",
    "run_fleet_equivalence",
    "run_scalar_capgpu_equivalence",
]

#: Settle band: a server has settled once |power - set point| stays within
#: this fraction of the set point for the rest of the run.
SETTLE_BAND_FRAC = 0.05


@dataclass(frozen=True)
class ToleranceSpec:
    """Committed tolerance for one closed-loop metric.

    ``mean_tol`` bounds the mean absolute paired difference across servers;
    ``max_tol`` bounds the worst single server. Both must hold.
    """

    metric: str
    unit: str
    mean_tol: float
    max_tol: float
    description: str


#: The fast engine's semantic contract. Calibrated on the registered
#: static-load scenarios (mpc-static is the stressor: the analytic
#: projected MPC solve vs the reference SLSQP iteration is the largest
#: relaxation in the fast engine; the fused reductions alone are below
#: float rounding at these channel counts).
TOLERANCES: tuple[ToleranceSpec, ...] = (
    ToleranceSpec(
        metric="power_err_w",
        unit="W",
        mean_tol=5.0,
        max_tol=15.0,
        description="per-server mean |power - set point| over the run",
    ),
    ToleranceSpec(
        metric="violation_rate",
        unit="fraction",
        mean_tol=0.10,
        max_tol=0.25,
        description="fraction of periods whose peak power sample exceeds the cap",
    ),
    ToleranceSpec(
        metric="settle_periods",
        unit="periods",
        mean_tol=3.0,
        max_tol=8.0,
        description=f"periods to enter and hold the {SETTLE_BAND_FRAC:.0%} band",
    ),
)


def server_metrics(
    trace: Trace, settle_band_frac: float = SETTLE_BAND_FRAC
) -> dict[str, float]:
    """The equivalence metrics of one server's period trace.

    * ``power_err_w`` — mean absolute tracking error over periods with a
      finite power reading;
    * ``violation_rate`` — fraction of periods whose *peak* power sample
      (``power_max_w``) exceeds the period's set point (peak-based, like
      the paper's violation counting);
    * ``settle_periods`` — first period index from which the absolute error
      stays inside ``settle_band_frac * set_point`` for the rest of the
      run (the run length if it never settles; NaN errors never settle).
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot compute equivalence metrics of an empty trace")
    power = np.asarray(trace["power_w"], dtype=np.float64)
    set_point = np.asarray(trace["set_point_w"], dtype=np.float64)
    peak = np.asarray(trace["power_max_w"], dtype=np.float64)
    err = power - set_point
    finite = np.isfinite(err)
    abs_err = np.abs(err[finite])
    power_err_w = float(abs_err.mean()) if abs_err.size else float("nan")
    peak_finite = np.isfinite(peak)
    violations = (peak > set_point) & peak_finite
    violation_rate = (
        float(violations.sum() / peak_finite.sum()) if peak_finite.any() else float("nan")
    )
    band = settle_band_frac * np.abs(set_point)
    inside = finite & (np.abs(err) <= band)
    settle = len(inside)
    for k in range(len(inside) - 1, -1, -1):
        if not inside[k]:
            break
        settle = k
    return {
        "power_err_w": power_err_w,
        "violation_rate": violation_rate,
        "settle_periods": float(settle),
    }


@dataclass(frozen=True)
class EquivRow:
    """Paired-difference summary of one metric across the fleet."""

    metric: str
    unit: str
    mean_abs_diff: float
    max_abs_diff: float
    mean_tol: float
    max_tol: float

    @property
    def ok(self) -> bool:
        # NaN differences (metric undefined on one side only) must fail.
        return bool(
            self.mean_abs_diff <= self.mean_tol and self.max_abs_diff <= self.max_tol
        )


@dataclass
class EquivReport:
    """Fast-vs-reference equivalence verdict for one scenario run."""

    scenario: str
    n_servers: int
    rows: list[EquivRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and all(row.ok for row in self.rows)

    def render(self) -> str:
        lines = [
            f"equivalence: {self.scenario} ({self.n_servers} servers), "
            f"paired |fast - reference| per metric",
        ]
        for row in self.rows:
            marker = "ok" if row.ok else "EXCEEDED"
            lines.append(
                f"  [{marker:>8s}] {row.metric}: mean {row.mean_abs_diff:.4g} "
                f"(tol {row.mean_tol:g}), max {row.max_abs_diff:.4g} "
                f"(tol {row.max_tol:g}) {row.unit}"
            )
        lines.append(
            "PASS: statistically equivalent" if self.ok else "FAIL: tolerance exceeded"
        )
        return "\n".join(lines)


def compare_traces(
    reference: list[Trace],
    fast: list[Trace],
    scenario: str = "custom",
    tolerances: tuple[ToleranceSpec, ...] = TOLERANCES,
) -> EquivReport:
    """Paired equivalence report from matched per-server trace lists."""
    if len(reference) != len(fast) or not reference:
        raise ConfigurationError(
            f"paired comparison needs equal nonempty trace lists, got "
            f"{len(reference)} reference vs {len(fast)} fast"
        )
    ref_metrics = [server_metrics(t) for t in reference]
    fast_metrics = [server_metrics(t) for t in fast]
    report = EquivReport(scenario=scenario, n_servers=len(reference))
    for spec in tolerances:
        diffs = np.array(
            [
                fm[spec.metric] - rm[spec.metric]
                for rm, fm in zip(ref_metrics, fast_metrics)
            ],
            dtype=np.float64,
        )
        abs_diffs = np.abs(diffs)
        # NaN on both sides is agreement (0 diff); NaN on one side is a
        # real discrepancy and propagates to a failing NaN difference.
        both_nan = np.array(
            [
                np.isnan(rm[spec.metric]) and np.isnan(fm[spec.metric])
                for rm, fm in zip(ref_metrics, fast_metrics)
            ]
        )
        abs_diffs = np.where(both_nan, 0.0, abs_diffs)
        report.rows.append(
            EquivRow(
                metric=spec.metric,
                unit=spec.unit,
                mean_abs_diff=float(abs_diffs.mean()),
                max_abs_diff=float(abs_diffs.max()),
                mean_tol=spec.mean_tol,
                max_tol=spec.max_tol,
            )
        )
    return report


def compare_backends(
    reference, fast, scenario: str = "custom",
    tolerances: tuple[ToleranceSpec, ...] = TOLERANCES,
) -> EquivReport:
    """Paired equivalence report from two run fleet backends."""
    n = len(reference.specs)
    if n != len(fast.specs):
        raise ConfigurationError("backends hold different fleet sizes")
    return compare_traces(
        [reference.server_trace(i) for i in range(n)],
        [fast.server_trace(i) for i in range(n)],
        scenario=scenario,
        tolerances=tolerances,
    )


def run_fleet_equivalence(
    scenario: str = "mpc-static",
    n_servers: int | None = None,
    n_rounds: int = 8,
    backend: str = "fast",
    tolerances: tuple[ToleranceSpec, ...] = TOLERANCES,
    curtail_fraction: float = 0.04,
) -> EquivReport:
    """Run one registered scenario on both engines and compare.

    Both fleets run ``n_rounds`` budget rounds with a mid-run budget cut
    (``curtail_fraction``) so the comparison covers a transient — settle
    times are only meaningful when something changes. The reference side
    uses the SoA backend (differential-pinned bit-identical to the scalar
    reference); ``backend`` picks the fast side (``fast`` or
    ``fast-parallel``).
    """
    from .fleet.scenarios import fleet_scenario

    if backend not in ("fast", "fast-parallel"):
        raise ConfigurationError(
            f"equivalence compares the reference against a fast backend, "
            f"got {backend!r}"
        )
    if n_rounds < 2:
        raise ConfigurationError("n_rounds must be >= 2 (pre and post cut)")
    sc = fleet_scenario(scenario)
    fleets = []
    for be in ("soa", backend):
        fleet = sc.build_fleet(be, n_servers)
        half = n_rounds // 2
        fleet.run(half)
        fleet.set_budget(fleet.budget_w * (1.0 - curtail_fraction))
        fleet.run(n_rounds - half)
        fleets.append(fleet)
    try:
        report = compare_backends(
            fleets[0].backend, fleets[1].backend,
            scenario=scenario, tolerances=tolerances,
        )
    finally:
        for fleet in fleets:
            closer = getattr(fleet.backend, "close", None)
            if callable(closer):
                closer()
    return report


def run_scalar_capgpu_equivalence(
    seed: int = 0,
    set_point_w: float = 900.0,
    n_periods: int = 30,
    faults=None,
    tolerances: tuple[ToleranceSpec, ...] = TOLERANCES,
) -> EquivReport:
    """Single-server CapGPU equivalence on the scalar engine, faults allowed.

    Runs the paper scenario twice from identical seeds — once with the
    reference MPC, once under :func:`repro.fast.mode.fast_engine` (which
    swaps in the pre-solved-gain solver at construction) — and compares the
    closed-loop metrics. ``faults`` (a :class:`repro.faults.FaultPlan`)
    exercises the degradation ladder under both engines; the scalar plant
    itself is engine-independent, so every difference is the solver's.
    """
    from .core import build_capgpu
    from .experiments.common import identified_model
    from .enginemode import fast_engine
    from .sim import paper_scenario

    traces = []
    for use_fast in (False, True):
        sim = paper_scenario(seed=seed, set_point_w=set_point_w, faults=faults)
        if use_fast:
            with fast_engine():
                controller = build_capgpu(sim, model=identified_model(0))
        else:
            controller = build_capgpu(sim, model=identified_model(0))
        traces.append(sim.run(controller, n_periods))
    return compare_traces(
        [traces[0]], [traces[1]],
        scenario="scalar-capgpu" + ("-faults" if faults is not None else ""),
        tolerances=tolerances,
    )
