"""The engine-mode switch: reference (default) vs relaxed-semantics fast.

Lives at the kernel layer so that the engine layer (``repro.sim``,
``repro.core``) can consult the switch without importing upward into
``repro.fast`` — the fast engine *implements* the mode, it does not own
the flag. ``repro.fast.mode`` re-exports this module for compatibility.

Mirrors :mod:`repro.perf`'s construction-time switch discipline:

* the programmatic override (:func:`set_engine`) wins,
* else the ``REPRO_ENGINE`` environment variable,
* else the default, ``"reference"``.

Components consult :func:`fast_enabled` / :func:`engine_name` **at
construction time** and never mid-run, so a built simulation keeps its
semantics for its whole life regardless of later switch flips.

The environment variable is the cross-process channel: ``repro sweep
--engine fast`` sets ``REPRO_ENGINE`` in the parent before the worker pool
exists, and both fork- and spawn-started workers inherit it — a module
global would silently reset under the spawn start method.

Unlike ``REPRO_VECTORIZED`` (a bit-identical fast path, default on), the
fast engine changes float semantics and is therefore strictly opt-in:
nothing enables it implicitly, and every artifact produced under it is
comparable to the reference only through the tolerance-based
:mod:`repro.equiv` layer, never through digests.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

from .errors import ConfigurationError

__all__ = ["ENGINES", "engine_name", "fast_enabled", "set_engine", "fast_engine"]

#: Recognized engine names, in trust order.
ENGINES = ("reference", "fast")

_ENV_VAR = "REPRO_ENGINE"

#: Programmatic override; ``None`` defers to the environment.
_override: str | None = None


def _validated(name: str, source: str) -> str:
    lowered = name.strip().lower()
    if lowered not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {name!r} from {source}; valid engines: {', '.join(ENGINES)}"
        )
    return lowered


def engine_name() -> str:
    """The engine new components should build for: ``"reference"`` or ``"fast"``."""
    if _override is not None:
        return _override
    env = os.environ.get(_ENV_VAR)
    if env is None or not env.strip():
        return "reference"
    return _validated(env, f"${_ENV_VAR}")


def fast_enabled() -> bool:
    """True when newly constructed components should use the fast engine."""
    return engine_name() == "fast"


def set_engine(name: str | None) -> None:
    """Override the engine mode (``None`` restores environment control)."""
    global _override  # noqa: PLW0603 -- module-level feature switch, like perf.set_vectorized
    _override = None if name is None else _validated(name, "set_engine()")


@contextmanager
def fast_engine() -> Iterator[None]:
    """Construct components under the fast engine within the block."""
    global _override  # noqa: PLW0603 -- paired save/restore of the module switch
    previous = _override
    _override = "fast"
    try:
        yield
    finally:
        _override = previous
