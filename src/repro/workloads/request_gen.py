"""Request arrival processes for inference pipelines.

The evaluation pipelines run with a saturated backlog (producers always have
images to preprocess), but the motivation experiment and the adaptability
study need shaped offered load: steady, Poisson, and bursty arrivals. A
process returns the (possibly fractional) number of image arrivals in each
simulation tick; the pipeline buffers them as pending work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import require_non_negative, require_positive

__all__ = [
    "ArrivalProcess",
    "SaturatedArrivals",
    "SteadyArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "TraceArrivals",
]


class ArrivalProcess(ABC):
    """Offered load in images per second, evaluated tick by tick."""

    @abstractmethod
    def arrivals(self, t_s: float, dt_s: float) -> float:
        """Image arrivals during ``[t_s, t_s + dt_s)`` (may be fractional)."""

    def reset(self) -> None:
        """Clear internal state (default: stateless)."""


class SaturatedArrivals(ArrivalProcess):
    """Infinite backlog — producers never wait for work (evaluation default)."""

    def arrivals(self, t_s: float, dt_s: float) -> float:
        return float("inf")


class SteadyArrivals(ArrivalProcess):
    """Constant offered rate in images/s."""

    def __init__(self, rate_img_s: float):
        self.rate = require_non_negative(rate_img_s, "rate_img_s")

    def arrivals(self, t_s: float, dt_s: float) -> float:
        return self.rate * dt_s


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals with the given mean rate."""

    def __init__(self, rate_img_s: float, rng: np.random.Generator):
        self.rate = require_non_negative(rate_img_s, "rate_img_s")
        self._rng = rng
        # Per-tick counts are pre-drawn in blocks keyed on lambda = rate*dt
        # (batch draws consume the generator stream exactly like scalar
        # draws, so the arrival sequence is bit-identical). If the rate is
        # mutated mid-run the sampler re-keys, discarding any buffered
        # draws — the stream stays seeded-deterministic but diverges from
        # the scalar draw order from that point on.
        self._vec = vectorized_enabled()
        self._sampler: BlockSampler | None = None
        self._sampler_lam: float | None = None

    def arrivals(self, t_s: float, dt_s: float) -> float:
        lam = self.rate * dt_s
        if self._vec:
            if lam != self._sampler_lam:
                self._sampler = BlockSampler(self._rng, "poisson", (lam,))
                self._sampler_lam = lam
            return float(self._sampler.next())
        return float(self._rng.poisson(lam))


class TraceArrivals(ArrivalProcess):
    """Rate schedule replayed from a recorded trace.

    ``times_s`` / ``rates_img_s`` define a right-continuous step function:
    the offered rate at time ``t`` is the rate of the last breakpoint at or
    before ``t`` (0 before the first breakpoint). ``loop`` repeats the
    schedule with the last breakpoint's time as the cycle length — useful
    for replaying a measured diurnal pattern.
    """

    def __init__(self, times_s, rates_img_s, loop: bool = False):
        import numpy as np

        t = np.asarray(times_s, dtype=np.float64)
        r = np.asarray(rates_img_s, dtype=np.float64)
        if t.ndim != 1 or t.shape != r.shape or t.size == 0:
            raise ConfigurationError("times_s and rates_img_s must be aligned 1-D")
        if np.any(np.diff(t) <= 0):
            raise ConfigurationError("times_s must be strictly increasing")
        if np.any(r < 0):
            raise ConfigurationError("rates must be >= 0")
        self._t = t
        self._r = r
        self.loop = bool(loop)

    def rate_at(self, t_s: float) -> float:
        """The offered rate at absolute time ``t_s``."""
        import numpy as np

        t = float(t_s)
        if self.loop:
            cycle = float(self._t[-1])
            if cycle > 0:
                t = t % cycle
        idx = int(np.searchsorted(self._t, t, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self._r[idx])

    def arrivals(self, t_s: float, dt_s: float) -> float:
        return self.rate_at(t_s) * dt_s


class BurstArrivals(ArrivalProcess):
    """Steady base rate with a rectangular burst window.

    Models the Section 6.4 scenario: a sudden surge of inference requests
    between ``burst_start_s`` and ``burst_end_s`` (during which the data
    center raises the power budget).
    """

    def __init__(
        self,
        base_rate_img_s: float,
        burst_rate_img_s: float,
        burst_start_s: float,
        burst_end_s: float,
    ):
        self.base = require_non_negative(base_rate_img_s, "base_rate_img_s")
        self.burst = require_positive(burst_rate_img_s, "burst_rate_img_s")
        if burst_end_s <= burst_start_s:
            raise ConfigurationError("burst_end_s must exceed burst_start_s")
        self.start = float(burst_start_s)
        self.end = float(burst_end_s)

    def arrivals(self, t_s: float, dt_s: float) -> float:
        rate = self.burst if self.start <= t_s < self.end else self.base
        return rate * dt_s
