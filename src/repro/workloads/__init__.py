"""Workloads: inference pipelines, model zoo, CPU feature selection, traces.

Substitutes the paper's PyTorch inference stack and the Alibaba PAI dataset
(see DESIGN.md): analytic pipelines execute the paper's own latency model
(Eq. 8), and a synthetic PAI-like trace feeds a real exhaustive
feature-selection implementation.
"""

from .llm import LLAMA_7B_V100, LlmPipeline, LlmRequest, LlmSpec
from .feature_selection import (
    FeatureSelectionResult,
    FeatureSelectionWorkload,
    cross_val_mse,
    exhaustive_feature_selection,
)
from .models import (
    GOOGLENET_3090,
    MODEL_ZOO,
    RESNET50,
    SWIN_T,
    VGG16,
    InferenceModelSpec,
    latency_at,
    min_frequency_for_latency,
    tail_latency,
)
from .pai import PAI_FEATURE_NAMES, TRUE_SUPPORT, PaiTrace, generate_pai_trace
from .pipeline import GpuWorkload, InferencePipeline, PipelineConfig, PipelineTick
from .static import StaticLoadPipeline, StaticLoadSpec
from .request_gen import (
    ArrivalProcess,
    BurstArrivals,
    PoissonArrivals,
    SaturatedArrivals,
    SteadyArrivals,
    TraceArrivals,
)

__all__ = [
    "InferenceModelSpec",
    "latency_at",
    "min_frequency_for_latency",
    "tail_latency",
    "RESNET50",
    "SWIN_T",
    "VGG16",
    "GOOGLENET_3090",
    "MODEL_ZOO",
    "GpuWorkload",
    "InferencePipeline",
    "PipelineConfig",
    "PipelineTick",
    "StaticLoadSpec",
    "StaticLoadPipeline",
    "FeatureSelectionWorkload",
    "FeatureSelectionResult",
    "cross_val_mse",
    "exhaustive_feature_selection",
    "PaiTrace",
    "generate_pai_trace",
    "PAI_FEATURE_NAMES",
    "TRUE_SUPPORT",
    "ArrivalProcess",
    "SaturatedArrivals",
    "SteadyArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "TraceArrivals",
    "LlmSpec",
    "LlmPipeline",
    "LlmRequest",
    "LLAMA_7B_V100",
]
