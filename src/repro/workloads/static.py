"""Closed-form GPU workload for fleet-scale simulation.

The full :class:`~repro.workloads.pipeline.InferencePipeline` carries queues,
per-image latency bookkeeping and stochastic batch work — state that is
inherently per-object and resists stacking across thousands of servers. The
fleet engine instead uses this *static load* model: a deterministic,
closed-form law mapping GPU frequency to batch capacity,

``capacity(f) = base_rate_s + rate_per_mhz * (f - f_ref_mhz)``

with completions ``min(demand, capacity)`` and busy fraction
``min(demand / capacity, 1)``. Every operation is an elementwise float
expression, so N servers step as one numpy program while a scalar
:class:`StaticLoadPipeline` run of the very same spec reproduces the result
bit for bit — the property the differential suite in ``tests/fleet`` pins.

The model intentionally reports no per-batch latencies (the latency channels
trace as NaN): latency percentiles need per-batch samples, which is exactly
the state this model exists to avoid. Scenarios that care about latency use
the full pipeline on the scalar reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import require_positive
from .pipeline import PipelineConfig, PipelineTick

__all__ = ["StaticLoadSpec", "StaticLoadPipeline"]


@dataclass(frozen=True)
class StaticLoadSpec:
    """Parameters of the affine frequency-capacity law for one GPU.

    ``base_rate_s`` is the batch capacity at ``f_ref_mhz`` (use the domain
    minimum so capacity stays positive across the whole range);
    ``rate_per_mhz`` is the capacity gained per MHz of GPU clock;
    ``demand_rate_s`` is the offered load in batches/s.
    """

    name: str = "static-load"
    demand_rate_s: float = 8.0
    base_rate_s: float = 4.0
    rate_per_mhz: float = 0.01
    f_ref_mhz: float = 435.0
    f_max_mhz: float = 1350.0
    preproc_scale: float = 0.5

    def __post_init__(self):
        require_positive(self.demand_rate_s, "demand_rate_s")
        require_positive(self.base_rate_s, "base_rate_s")
        if self.rate_per_mhz < 0:
            raise ConfigurationError("rate_per_mhz must be >= 0")
        if self.f_max_mhz < self.f_ref_mhz:
            raise ConfigurationError("f_max_mhz must be >= f_ref_mhz")
        if not 0.0 <= self.preproc_scale <= 1.0:
            raise ConfigurationError("preproc_scale must be in [0, 1]")

    def capacity_s(self, gpu_mhz: float) -> float:
        """Batch capacity (batches/s) at ``gpu_mhz``."""
        return self.base_rate_s + self.rate_per_mhz * (gpu_mhz - self.f_ref_mhz)

    def max_batch_rate_s(self) -> float:
        """Capacity at the top of the frequency range (monitor hint)."""
        return self.capacity_s(self.f_max_mhz)

    def scaled(self, demand_scale: float) -> "StaticLoadSpec":
        """The same law under ``demand_scale`` times the offered load."""
        return replace(self, demand_rate_s=self.demand_rate_s * demand_scale)


class StaticLoadPipeline:
    """Scalar reference execution of a :class:`StaticLoadSpec`.

    Drop-in for :class:`~repro.workloads.pipeline.InferencePipeline` in
    :class:`~repro.sim.engine.ServerSimulation`: exposes ``config``, ``spec``
    (with ``max_batch_rate_s``), ``step`` and ``set_batch_size``. Whole-batch
    completions come from a fractional accumulator (``acc += rate * dt``,
    emit ``floor(acc)``) so throughput counts stay integral per tick while
    the long-run rate is exact.
    """

    def __init__(self, spec: StaticLoadSpec, config: PipelineConfig | None = None):
        self.spec = spec
        self.config = config if config is not None else PipelineConfig(n_workers=1)
        self._frac_batches = 0.0

    def set_batch_size(self, batch: int) -> None:
        """Accepted for controller compatibility; the law is batch-agnostic."""

    def step(
        self, t_s: float, dt_s: float, cpu_ghz: float, gpu_mhz: float
    ) -> PipelineTick:
        spec = self.spec
        capacity = spec.base_rate_s + spec.rate_per_mhz * (gpu_mhz - spec.f_ref_mhz)
        busy = min(spec.demand_rate_s / capacity, 1.0)
        rate = min(spec.demand_rate_s, capacity)
        self._frac_batches = self._frac_batches + rate * dt_s
        done = int(self._frac_batches)
        self._frac_batches = self._frac_batches - done
        return PipelineTick(
            images_preprocessed=float(done),
            batches_completed=done,
            images_completed=done,
            gpu_busy_s=busy * dt_s,
            preproc_busy_frac=min(busy * spec.preproc_scale, 1.0),
            queue_len_img=0.0,
        )
