"""Exhaustive feature selection — the paper's CPU-side workload.

Section 6.1: "we implement an exhaustive feature selection algorithm on the
Alibaba PAI dataset ... fit and test a model using every possible feature
subset, and choose the feature subset yielding the lowest cross-validation
(CV) Mean Squared Error."

Two layers:

* :func:`exhaustive_feature_selection` — a *real*, runnable implementation
  (vectorized k-fold CV of ordinary least squares over every non-empty
  feature subset). The examples and benchmarks execute it on the synthetic
  PAI trace; the throughput monitor abstraction counts "feature subsets
  evaluated per second" exactly as the paper's CPU monitor does.
* :class:`FeatureSelectionWorkload` — the analytic rate model used inside
  the simulator: evaluating one subset costs a fixed number of
  core-GHz-seconds, so the subset rate scales linearly with the controlled
  core clock and the per-subset latency (what Fig. 7(d) plots) is
  ``cost / f_ghz``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import require_positive

__all__ = [
    "cross_val_mse",
    "exhaustive_feature_selection",
    "FeatureSelectionResult",
    "FeatureSelectionWorkload",
]


def cross_val_mse(X: np.ndarray, y: np.ndarray, k_folds: int = 5) -> float:
    """k-fold cross-validated MSE of ordinary least squares on ``(X, y)``.

    Folds are contiguous blocks (deterministic — shuffling, if desired, is
    the caller's responsibility so results stay reproducible).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ConfigurationError("X must be (n, d) and y (n,) with matching n")
    n = X.shape[0]
    if not 2 <= k_folds <= n:
        raise ConfigurationError(f"k_folds must lie in [2, {n}]")
    # Augment with an intercept column.
    Xa = np.column_stack([X, np.ones(n)])
    bounds = np.linspace(0, n, k_folds + 1).astype(int)
    total_sq = 0.0
    for f in range(k_folds):
        lo, hi = bounds[f], bounds[f + 1]
        test = slice(lo, hi)
        train_idx = np.r_[0:lo, hi:n]
        coef, *_ = np.linalg.lstsq(Xa[train_idx], y[train_idx], rcond=None)
        resid = Xa[test] @ coef - y[test]
        total_sq += float(resid @ resid)
    return total_sq / n


@dataclass(frozen=True)
class FeatureSelectionResult:
    """Outcome of an exhaustive search."""

    best_subset: tuple[int, ...]
    best_mse: float
    n_subsets_evaluated: int
    mse_by_subset: dict


def exhaustive_feature_selection(
    X: np.ndarray,
    y: np.ndarray,
    k_folds: int = 5,
    max_subset_size: int | None = None,
    keep_scores: bool = False,
) -> FeatureSelectionResult:
    """Evaluate every non-empty feature subset; return the CV-MSE minimizer.

    Parameters
    ----------
    X, y:
        Design matrix and target.
    k_folds:
        CV folds per subset.
    max_subset_size:
        Optional cap on subset cardinality (the full search over ``d``
        features evaluates ``2^d - 1`` subsets).
    keep_scores:
        Retain the per-subset MSE map (memory grows as 2^d).
    """
    X = np.asarray(X, dtype=np.float64)
    d = X.shape[1]
    if d > 20:
        raise ConfigurationError(
            f"exhaustive search over {d} features is 2^{d} subsets; cap the "
            "feature count or use max_subset_size"
        )
    limit = d if max_subset_size is None else min(max_subset_size, d)
    if limit < 1:
        raise ConfigurationError("max_subset_size must be >= 1")
    best_subset: tuple[int, ...] | None = None
    best_mse = np.inf
    scores: dict = {}
    n_eval = 0
    for size in range(1, limit + 1):
        for subset in itertools.combinations(range(d), size):
            mse = cross_val_mse(X[:, subset], y, k_folds=k_folds)
            n_eval += 1
            if keep_scores:
                scores[subset] = mse
            if mse < best_mse:
                best_mse = mse
                best_subset = subset
    assert best_subset is not None
    return FeatureSelectionResult(
        best_subset=best_subset,
        best_mse=best_mse,
        n_subsets_evaluated=n_eval,
        mse_by_subset=scores,
    )


class FeatureSelectionWorkload:
    """Analytic rate model of the exhaustive search, for the simulator.

    Evaluating one subset (fit + CV) costs ``cost_core_ghz_s`` core-GHz
    seconds, so ``n_cores`` cores at clock ``f`` GHz evaluate
    ``n_cores * f / cost`` subsets per second and each evaluation's
    wall-clock latency is ``cost / f`` (+ log-normal jitter). Fractional
    completions carry over between ticks, so long ticks and slow clocks
    lose no work.
    """

    def __init__(
        self,
        n_cores: int,
        cost_core_ghz_s: float = 0.8,
        jitter_sigma: float = 0.05,
        rng: np.random.Generator | None = None,
    ):
        if n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        self.n_cores = int(n_cores)
        self.cost_core_ghz_s = require_positive(cost_core_ghz_s, "cost_core_ghz_s")
        if jitter_sigma < 0:
            raise ConfigurationError("jitter_sigma must be >= 0")
        if jitter_sigma > 0 and rng is None:
            raise ConfigurationError("rng required when jitter_sigma > 0")
        self.jitter_sigma = float(jitter_sigma)
        self._rng = rng
        self._carry = 0.0
        self.completed_subsets = 0
        self._total_latency_s = 0.0
        # Hot-path memoization: the clock takes few distinct values (discrete
        # DVFS levels), so rate and base latency are cached on the exact
        # float frequency. On the vectorized path jitter draws are pre-drawn
        # in blocks — bit-identical to the per-tick ``size=done`` draw.
        self._rate_cache: dict[float, float] = {}
        self._latency_cache: dict[float, float] = {}
        self._jitter_sampler = (
            BlockSampler(rng, "lognormal", (0.0, self.jitter_sigma))
            if self.jitter_sigma > 0 and vectorized_enabled()
            else None
        )

    def rate_subsets_s(self, f_ghz: float) -> float:
        """Aggregate evaluation rate at clock ``f_ghz``."""
        if f_ghz <= 0:
            raise ConfigurationError("f_ghz must be positive")
        return self.n_cores * f_ghz / self.cost_core_ghz_s

    def latency_s(self, f_ghz: float) -> float:
        """Deterministic per-subset wall-clock latency at clock ``f_ghz``."""
        if f_ghz <= 0:
            raise ConfigurationError("f_ghz must be positive")
        return self.cost_core_ghz_s / f_ghz

    def max_rate_subsets_s(self, f_max_ghz: float) -> float:
        """Normalizer for the throughput monitor (rate at the max clock)."""
        return self.rate_subsets_s(f_max_ghz)

    def step(self, dt_s: float, f_ghz: float) -> tuple[int, list[float]]:
        """Advance ``dt_s`` seconds at clock ``f_ghz``.

        Returns ``(completions, per-completion latencies)``.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        rate = self._rate_cache.get(f_ghz)
        if rate is None:
            rate = self._rate_cache[f_ghz] = self.rate_subsets_s(f_ghz)
        self._carry += rate * dt_s
        done = int(self._carry)
        self._carry -= done
        latencies: list[float] = []
        if done:
            base = self._latency_cache.get(f_ghz)
            if base is None:
                base = self._latency_cache[f_ghz] = self.latency_s(f_ghz)
            if self.jitter_sigma > 0:
                if self._jitter_sampler is not None:
                    latencies = [base * j for j in self._jitter_sampler.take(done)]
                else:
                    jit = self._rng.lognormal(0.0, self.jitter_sigma, size=done)
                    latencies = list(base * jit)
            else:
                latencies = [base] * done
            self.completed_subsets += done
            self._total_latency_s += float(sum(latencies))
        return done, latencies

    def mean_latency_s(self) -> float:
        """Lifetime mean per-subset latency (NaN before any completion)."""
        if self.completed_subsets == 0:
            return float("nan")
        return self._total_latency_s / self.completed_subsets

    def reset(self) -> None:
        """Clear progress counters."""
        self._carry = 0.0
        self.completed_subsets = 0
        self._total_latency_s = 0.0
