"""LLM inference workload (extension beyond the paper's CNN/ViT tasks).

The paper motivates SLO adaptation with bursty generative traffic (its
Section 6.4 cites the ChatGPT Ghibli-image surge), and its related work
(Patel et al., ASPLOS'24) characterizes LLM power behaviour: *prefill* is
compute-bound (power tracks clock strongly) while *decode* is memory-bound
(lower dynamic intensity, latency less clock-sensitive). This module adds a
token-level serving model with those phases, so CapGPU can be exercised on
a workload whose *effective power gain changes with phase mix* — a live
instance of the Section 4.4 model-mismatch robustness argument.

Model
-----
Requests carry (prompt_tokens, output_tokens). The engine serves:

* a FIFO **prefill** stage processing prompt tokens at
  ``prefill_tok_s * (f/f_max)^gamma`` (one request at a time);
* a **decode** pool generating output tokens at an aggregate
  ``decode_tok_s * (f/f_max)^gamma_decode`` shared round-robin among active
  requests, up to ``max_concurrency`` (continuous batching).

Metrics: TTFT (time to first token — prefill wait + prefill time) and
end-to-end request latency. The per-tick GPU "busy" signal is weighted by
phase intensity (prefill 1.0, decode ``decode_intensity``), which the power
model sees as utilization — so a decode-heavy mix draws less power per MHz,
exactly the time-varying-gain effect we want the controller to ride out.

The pipeline exposes the same duck-typed surface as
:class:`~repro.workloads.pipeline.InferencePipeline` (``spec``, ``config``,
``step``, latency stats), so it drops into :class:`~repro.sim.engine.
ServerSimulation` unchanged; "batches" in the engine's throughput
accounting become "completed requests".
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive
from .pipeline import PipelineTick
from .request_gen import ArrivalProcess, SteadyArrivals

__all__ = ["LlmSpec", "LlmRequest", "LlmPipeline", "LLAMA_7B_V100"]

_LATENCY_WINDOW = 512


@dataclass(frozen=True)
class LlmSpec:
    """Static parameters of one LLM served on one GPU.

    Rates are tokens/s at ``f_gmax_mhz``. ``gamma`` scales prefill (compute
    bound, near the CNN exponent); ``gamma_decode`` scales decode (memory
    bound, much flatter). ``decode_intensity`` is the relative dynamic-power
    activity of decode vs prefill.
    """

    name: str
    prefill_tok_s: float
    decode_tok_s: float
    gamma: float
    gamma_decode: float
    f_gmax_mhz: float
    decode_intensity: float = 0.6
    mean_prompt_tokens: float = 512.0
    mean_output_tokens: float = 128.0
    batch_size: int = 1  # engine-facing: one "batch" = one request

    def __post_init__(self):
        require_positive(self.prefill_tok_s, "prefill_tok_s")
        require_positive(self.decode_tok_s, "decode_tok_s")
        require_positive(self.gamma, "gamma")
        require_positive(self.gamma_decode, "gamma_decode")
        require_positive(self.f_gmax_mhz, "f_gmax_mhz")
        if not 0.0 < self.decode_intensity <= 1.0:
            raise ConfigurationError("decode_intensity must lie in (0, 1]")
        require_positive(self.mean_prompt_tokens, "mean_prompt_tokens")
        require_positive(self.mean_output_tokens, "mean_output_tokens")

    def prefill_rate(self, f_mhz: float) -> float:
        """Prompt tokens/s at clock ``f_mhz``."""
        return self.prefill_tok_s * (f_mhz / self.f_gmax_mhz) ** self.gamma

    def decode_rate(self, f_mhz: float) -> float:
        """Aggregate output tokens/s at clock ``f_mhz``."""
        return self.decode_tok_s * (f_mhz / self.f_gmax_mhz) ** self.gamma_decode

    def mean_request_latency_s(self, f_mhz: float, concurrency: float = 1.0) -> float:
        """Model-predicted end-to-end latency of an average request."""
        ttft = self.mean_prompt_tokens / self.prefill_rate(f_mhz)
        decode = self.mean_output_tokens * max(concurrency, 1.0) / self.decode_rate(f_mhz)
        return ttft + decode

    def max_batch_rate_s(self) -> float:
        """Expected request completions/s at f_max (engine normalizer).

        At full clock the shared decode pool bounds throughput:
        ``decode_tok_s / mean_output_tokens`` requests/s (prefill is
        typically faster per request).
        """
        by_decode = self.decode_tok_s / self.mean_output_tokens
        by_prefill = self.prefill_tok_s / self.mean_prompt_tokens
        return min(by_decode, by_prefill)

    def max_throughput_img_s(self) -> float:
        """Engine-facing alias (requests/s)."""
        return self.max_batch_rate_s()


#: A 7B-parameter-class model on a V100: ~2400 tok/s prefill, ~220 tok/s
#: aggregate decode at 1350 MHz; decode latency almost clock-flat.
LLAMA_7B_V100 = LlmSpec(
    name="llama-7b",
    prefill_tok_s=2400.0,
    decode_tok_s=220.0,
    gamma=0.9,
    gamma_decode=0.35,
    f_gmax_mhz=1350.0,
    decode_intensity=0.6,
    mean_prompt_tokens=512.0,
    mean_output_tokens=128.0,
)


class LlmRequest:
    """One in-flight request."""

    __slots__ = ("prompt_tokens", "output_tokens", "arrival_t",
                 "prefill_done", "decoded", "ttft_s")

    def __init__(self, prompt_tokens: float, output_tokens: float, arrival_t: float):
        self.prompt_tokens = float(prompt_tokens)
        self.output_tokens = float(output_tokens)
        self.arrival_t = float(arrival_t)
        self.prefill_done = 0.0
        self.decoded = 0.0
        self.ttft_s: float | None = None


class _EngineConfigShim:
    """Duck-typed stand-in for PipelineConfig (the engine reads n_workers)."""

    n_workers = 1
    preproc_frequency = "fixed"

    def __init__(self, queue_capacity: int):
        self.queue_capacity_img = queue_capacity
        self.inflight_limit_img = None


class LlmPipeline:
    """Token-level LLM serving on one GPU (continuous batching)."""

    def __init__(
        self,
        spec: LlmSpec,
        rng: np.random.Generator,
        arrivals: ArrivalProcess | None = None,
        max_concurrency: int = 8,
        queue_capacity: int = 256,
        length_jitter: float = 0.3,
    ):
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be >= 1")
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if not 0.0 <= length_jitter < 1.0:
            raise ConfigurationError("length_jitter must lie in [0, 1)")
        self.spec = spec
        self._rng = rng
        default_rate = 0.5 * spec.max_batch_rate_s()
        self.arrivals = arrivals if arrivals is not None else SteadyArrivals(default_rate)
        self.max_concurrency = int(max_concurrency)
        self.queue_capacity = int(queue_capacity)
        self.length_jitter = float(length_jitter)
        self.config = _EngineConfigShim(queue_capacity)

        self._carry_arrivals = 0.0
        self._prefill_q: deque[LlmRequest] = deque()
        self._decoding: list[LlmRequest] = []
        self.completed_requests = 0
        self.dropped_requests = 0
        self.recent_latencies_s: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.recent_ttft_s: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.recent_queue_waits_s: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._total_latency_s = 0.0

    # -- engine-facing stats ------------------------------------------------

    @property
    def completed_batches(self) -> int:
        """Engine alias: one request == one batch."""
        return self.completed_requests

    @property
    def completed_images(self) -> int:
        return self.completed_requests

    @property
    def queue_len_img(self) -> float:
        return float(len(self._prefill_q))

    @property
    def inflight_img(self) -> float:
        return float(len(self._prefill_q) + len(self._decoding))

    def mean_batch_latency_s(self) -> float:
        if self.completed_requests == 0:
            return float("nan")
        return self._total_latency_s / self.completed_requests

    def latency_percentile_s(self, q: float) -> float:
        if not self.recent_latencies_s:
            return float("nan")
        return float(np.quantile(np.asarray(self.recent_latencies_s), q))

    def mean_ttft_s(self) -> float:
        """Mean time-to-first-token over the recent window."""
        if not self.recent_ttft_s:
            return float("nan")
        return float(np.mean(self.recent_ttft_s))

    def set_batch_size(self, batch: int) -> None:
        """Batch commands map to the continuous-batching concurrency cap."""
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        self.max_concurrency = int(batch)

    # -- helpers --------------------------------------------------------------

    def _draw_request(self, t: float) -> LlmRequest:
        if self.length_jitter == 0.0:
            p, o = self.spec.mean_prompt_tokens, self.spec.mean_output_tokens
        else:
            p = self.spec.mean_prompt_tokens * self._rng.lognormal(
                -0.5 * self.length_jitter**2, self.length_jitter
            )
            o = self.spec.mean_output_tokens * self._rng.lognormal(
                -0.5 * self.length_jitter**2, self.length_jitter
            )
        return LlmRequest(max(p, 1.0), max(o, 1.0), t)

    # -- dynamics -----------------------------------------------------------

    def step(
        self, t_s: float, dt_s: float, cpu_freq_ghz: float, gpu_freq_mhz: float
    ) -> PipelineTick:
        """Advance one tick (duck-compatible with InferencePipeline)."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        tick = PipelineTick()
        spec = self.spec

        # 1. arrivals (fractional carry -> whole requests). A saturated
        # process tops the queue up without counting drops (the backlog is
        # notional); metered arrivals that find the queue full are dropped.
        new = self.arrivals.arrivals(t_s, dt_s)
        if math.isinf(new):
            self._carry_arrivals = 0.0
            n_new = max(self.queue_capacity - len(self._prefill_q), 0)
            for _ in range(n_new):
                self._prefill_q.append(self._draw_request(t_s))
        else:
            self._carry_arrivals += new
            n_new = int(self._carry_arrivals)
            self._carry_arrivals -= n_new
            for _ in range(n_new):
                if len(self._prefill_q) >= self.queue_capacity:
                    self.dropped_requests += 1
                    continue
                self._prefill_q.append(self._draw_request(t_s))
        tick.images_preprocessed = float(n_new)

        # 2. admit queued requests into the decode pool via prefill
        prefill_budget = spec.prefill_rate(gpu_freq_mhz) * dt_s
        prefill_used = 0.0
        while self._prefill_q and len(self._decoding) < self.max_concurrency:
            req = self._prefill_q[0]
            need = req.prompt_tokens - req.prefill_done
            if prefill_budget < need:
                req.prefill_done += prefill_budget
                prefill_used += prefill_budget
                prefill_budget = 0.0
                break
            prefill_budget -= need
            prefill_used += need
            req.prefill_done = req.prompt_tokens
            req.ttft_s = (t_s + dt_s) - req.arrival_t
            self.recent_ttft_s.append(req.ttft_s)
            self.recent_queue_waits_s.append(req.ttft_s)
            self._prefill_q.popleft()
            self._decoding.append(req)

        # 3. decode round-robin
        decode_budget = spec.decode_rate(gpu_freq_mhz) * dt_s
        decode_used = 0.0
        if self._decoding:
            share = decode_budget / len(self._decoding)
            finished: list[LlmRequest] = []
            for req in self._decoding:
                take = min(share, req.output_tokens - req.decoded)
                req.decoded += take
                decode_used += take
                if req.decoded >= req.output_tokens - 1e-9:
                    finished.append(req)
            for req in finished:
                self._decoding.remove(req)
                latency = (t_s + dt_s) - req.arrival_t
                self.completed_requests += 1
                self._total_latency_s += latency
                self.recent_latencies_s.append(latency)
                tick.batches_completed += 1
                tick.images_completed += 1
                tick.batch_latencies_s.append(latency)
                tick.queue_waits_s.append(req.ttft_s or 0.0)

        # 4. busy signal weighted by phase intensity (power coupling)
        prefill_frac = prefill_used / (spec.prefill_rate(gpu_freq_mhz) * dt_s)
        decode_frac = decode_used / (spec.decode_rate(gpu_freq_mhz) * dt_s)
        intensity = min(
            prefill_frac * 1.0 + decode_frac * spec.decode_intensity, 1.0
        )
        tick.gpu_busy_s = dt_s * intensity
        tick.preproc_busy_frac = 0.05  # tokenization is negligible CPU work
        tick.queue_len_img = float(len(self._prefill_q))
        return tick

    def reset(self) -> None:
        """Return to the empty initial state."""
        self._carry_arrivals = 0.0
        self._prefill_q.clear()
        self._decoding.clear()
        self.completed_requests = 0
        self.dropped_requests = 0
        self.recent_latencies_s.clear()
        self.recent_ttft_s.clear()
        self.recent_queue_waits_s.clear()
        self._total_latency_s = 0.0
        self.arrivals.reset()
