"""Synthetic Alibaba-PAI-style trace generator.

The paper's CPU workload runs exhaustive feature selection over the Alibaba
PAI dataset (a production ML-cluster trace). The trace itself is not
redistributable, so we generate a synthetic table with the same *shape*:
per-job resource-request and runtime features with realistic correlations,
and a regression target (actual GPU utilization) that depends nonlinearly on
a sparse subset of the features plus noise. What matters for the
reproduction is that (a) the feature-selection algorithm has a non-trivial
best subset to find and (b) its per-subset cost scales like the real
workload; both hold by construction.

Schema (columns):

========================  =====================================================
``plan_cpu``              requested CPU cores
``plan_mem_gb``           requested memory
``plan_gpu``              requested GPU fraction
``batch_size``            training/inference batch size
``model_params_m``        model size, millions of parameters
``input_mb``              input dataset size
``duration_min``          job duration
``n_instances``           task parallelism
``hour_of_day``           submission hour (cyclic)
``is_inference``          1 for inference jobs, 0 for training
========================  =====================================================

Target: ``gpu_util`` — actual mean GPU utilization of the job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import make_rng

__all__ = ["PaiTrace", "generate_pai_trace", "PAI_FEATURE_NAMES", "TRUE_SUPPORT"]

PAI_FEATURE_NAMES: tuple[str, ...] = (
    "plan_cpu",
    "plan_mem_gb",
    "plan_gpu",
    "batch_size",
    "model_params_m",
    "input_mb",
    "duration_min",
    "n_instances",
    "hour_of_day",
    "is_inference",
)

#: Indices of the features that truly drive the target (ground truth for
#: tests: a good selector should recover a subset overlapping these).
TRUE_SUPPORT: tuple[int, ...] = (2, 3, 4, 9)  # plan_gpu, batch, params, is_inference


@dataclass(frozen=True)
class PaiTrace:
    """A generated trace: design matrix, target, and column names."""

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]

    @property
    def n_jobs(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]


def generate_pai_trace(
    n_jobs: int = 2000, noise_sigma: float = 0.05, seed=0
) -> PaiTrace:
    """Generate a synthetic PAI-like trace.

    Parameters
    ----------
    n_jobs:
        Number of rows (jobs).
    noise_sigma:
        Std of the additive noise on the target.
    seed:
        Seed or Generator for reproducibility.
    """
    if n_jobs < 10:
        raise ConfigurationError("n_jobs must be >= 10")
    if noise_sigma < 0:
        raise ConfigurationError("noise_sigma must be >= 0")
    rng = make_rng(seed)

    is_inference = (rng.random(n_jobs) < 0.55).astype(np.float64)
    # Inference jobs are smaller: scale the resource asks down.
    size_scale = np.where(is_inference > 0, 0.4, 1.0)

    plan_gpu = rng.choice([0.25, 0.5, 1.0, 2.0, 4.0], size=n_jobs,
                          p=[0.25, 0.25, 0.3, 0.15, 0.05]) * size_scale
    plan_cpu = np.round(plan_gpu * rng.uniform(4, 12, n_jobs) + rng.uniform(1, 4, n_jobs))
    plan_mem = plan_cpu * rng.uniform(2, 6, n_jobs)
    batch = rng.choice([1, 8, 16, 32, 64, 128], size=n_jobs,
                       p=[0.15, 0.2, 0.2, 0.2, 0.15, 0.1]).astype(np.float64)
    params_m = rng.lognormal(mean=3.0, sigma=1.2, size=n_jobs)  # ~20M median
    input_mb = rng.lognormal(mean=5.5, sigma=1.5, size=n_jobs)
    duration = rng.lognormal(mean=3.2, sigma=1.0, size=n_jobs)
    n_inst = np.round(rng.lognormal(mean=0.7, sigma=0.9, size=n_jobs)) + 1
    hour = rng.integers(0, 24, n_jobs).astype(np.float64)

    X = np.column_stack([
        plan_cpu, plan_mem, plan_gpu, batch, params_m,
        input_mb, duration, n_inst, hour, is_inference,
    ])

    # Target: utilization driven by batch size, model size, GPU share and job
    # type, saturating (sigmoid) — nonlinear so no linear subset is perfect,
    # as with the real trace.
    z = (
        0.55 * np.log1p(batch) / np.log(129)
        + 0.45 * np.log1p(params_m) / 8.0
        - 0.25 * np.log1p(plan_gpu)
        - 0.30 * is_inference
    )
    y = 1.0 / (1.0 + np.exp(-4.0 * (z - 0.25)))
    y = np.clip(y + rng.normal(0.0, noise_sigma, n_jobs), 0.0, 1.0)

    return PaiTrace(X=X, y=y, feature_names=PAI_FEATURE_NAMES)
