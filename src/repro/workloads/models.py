"""Inference model zoo and the frequency-latency model (Eq. 8).

The paper models the batch-inference latency of task ``t_i`` at GPU core
frequency ``f_g`` as::

    e_i(f_g) = e_min_i * (f_g,max / f_g)^gamma        (Eq. 8 / 10b)

with ``e_min_i`` the latency at the maximum frequency and ``gamma`` an
empirical exponent (0.91 on the paper's V100, fit R^2 ~ 0.91). Our GPU
pipeline *executes* this model: a batch carries ``e_min * jitter`` units of
work (seconds at f_max) and progresses at rate ``(f/f_max)^gamma`` — so under
a constant clock the realized latency is exactly Eq. 8 times jitter, and
under delta-sigma dithering the realized latency reflects the time-averaged
progress rate, just like real hardware.

Calibrations: batch size 20 on V100 (evaluation workloads t1-t3) and on the
RTX 3090 (GoogLeNet motivation workload, chosen so the Table 1 frequency
pairs land on the paper's 1.3 / 2.0 / 1.6 s batch latencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import require_positive

__all__ = [
    "InferenceModelSpec",
    "latency_at",
    "min_frequency_for_latency",
    "tail_latency",
    "RESNET50",
    "SWIN_T",
    "VGG16",
    "GOOGLENET_3090",
    "MODEL_ZOO",
]


@dataclass(frozen=True)
class InferenceModelSpec:
    """Static parameters of one inference workload.

    Parameters
    ----------
    name:
        Model name (e.g. ``"resnet50"``).
    batch_size:
        Images per inference batch (the paper uses 20 throughout).
    e_min_s:
        Batch latency at ``f_gmax`` (seconds).
    gamma:
        Frequency-scaling exponent of Eq. 8.
    f_gmax_mhz:
        Core clock at which ``e_min_s`` was measured.
    jitter_sigma:
        Log-normal sigma of per-batch latency jitter (the measured-vs-model
        scatter of Fig. 2(b)).
    preproc_cost_core_ghz_s:
        CPU preprocessing cost per image: core-seconds x GHz per image, i.e.
        preprocessing one image on a core at ``f`` GHz takes
        ``preproc_cost_core_ghz_s / f`` seconds.
    fixed_fraction:
        Fraction of ``e_min_s`` that is batch-size-independent (kernel
        launches, weight reads); the rest scales linearly with the batch.
        Used by the dynamic-batching extension: larger batches amortize the
        fixed part, so per-image efficiency improves with batch size.
    """

    name: str
    batch_size: int
    e_min_s: float
    gamma: float
    f_gmax_mhz: float
    jitter_sigma: float = 0.06
    preproc_cost_core_ghz_s: float = 0.048
    fixed_fraction: float = 0.25

    def __post_init__(self):
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        require_positive(self.e_min_s, "e_min_s")
        require_positive(self.gamma, "gamma")
        require_positive(self.f_gmax_mhz, "f_gmax_mhz")
        if self.jitter_sigma < 0:
            raise ConfigurationError("jitter_sigma must be >= 0")
        require_positive(self.preproc_cost_core_ghz_s, "preproc_cost_core_ghz_s")
        if not 0.0 <= self.fixed_fraction < 1.0:
            raise ConfigurationError("fixed_fraction must lie in [0, 1)")

    # -- latency model -------------------------------------------------------

    def latency_s(self, f_g_mhz: float) -> float:
        """Deterministic Eq. 8 latency at core clock ``f_g_mhz``."""
        return latency_at(self.e_min_s, self.gamma, self.f_gmax_mhz, f_g_mhz)

    def min_frequency_mhz(self, slo_s: float) -> float:
        """Smallest clock meeting latency ``slo_s`` (inverse of Eq. 8)."""
        return min_frequency_for_latency(self.e_min_s, self.gamma, self.f_gmax_mhz, slo_s)

    def tail_latency_s(self, f_g_mhz: float, quantile: float) -> float:
        """Latency quantile at ``f_g_mhz`` under the log-normal jitter."""
        return tail_latency(
            self.latency_s(f_g_mhz), self.jitter_sigma, quantile
        )

    def max_throughput_img_s(self) -> float:
        """Images/s at ``f_gmax`` ignoring supply limits (``batch/e_min``)."""
        return self.batch_size / self.e_min_s

    def max_batch_rate_s(self) -> float:
        """Batches/s at ``f_gmax`` (the GPU throughput the monitors report)."""
        return 1.0 / self.e_min_s

    # -- batch-size extension ---------------------------------------------------

    def work_for_batch_s(self, batch: int) -> float:
        """Seconds-at-f_max of work in a ``batch``-image batch.

        The reference point is ``work_for_batch_s(self.batch_size) ==
        e_min_s``; the fixed fraction does not scale with the batch.
        """
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        fixed = self.fixed_fraction * self.e_min_s
        per_img = (1.0 - self.fixed_fraction) * self.e_min_s / self.batch_size
        return fixed + per_img * batch

    def batch_latency_s(self, batch: int, f_g_mhz: float) -> float:
        """Eq. 8 latency of a ``batch``-image batch at clock ``f_g_mhz``."""
        return latency_at(
            self.work_for_batch_s(batch), self.gamma, self.f_gmax_mhz, f_g_mhz
        )

    def throughput_img_s(self, batch: int, f_g_mhz: float) -> float:
        """Delivered images/s at (batch, clock) — increasing in batch size,
        because larger batches amortize the fixed launch cost."""
        return batch / self.batch_latency_s(batch, f_g_mhz)

    def max_batch_for_slo(
        self, slo_s: float, f_g_mhz: float, batch_cap: int = 128
    ) -> int | None:
        """Largest batch whose latency at ``f_g_mhz`` meets ``slo_s``.

        Returns ``None`` when even a single-image batch misses the SLO.
        Solves the linear-in-batch latency model in closed form.
        """
        if slo_s <= 0:
            raise ConfigurationError("slo_s must be positive")
        scale = (self.f_gmax_mhz / f_g_mhz) ** self.gamma
        fixed = self.fixed_fraction * self.e_min_s
        per_img = (1.0 - self.fixed_fraction) * self.e_min_s / self.batch_size
        budget = slo_s / scale - fixed
        if budget < per_img:
            return None
        return int(min(budget / per_img, batch_cap))


def latency_at(e_min_s: float, gamma: float, f_max_mhz: float, f_mhz: float) -> float:
    """Eq. 8: ``e = e_min * (f_max / f)^gamma``."""
    if f_mhz <= 0:
        raise ConfigurationError("frequency must be positive")
    return float(e_min_s * (f_max_mhz / f_mhz) ** gamma)


def min_frequency_for_latency(
    e_min_s: float, gamma: float, f_max_mhz: float, slo_s: float
) -> float:
    """Invert Eq. 8: smallest ``f`` with ``e(f) <= slo_s``.

    Returns a value possibly above ``f_max_mhz`` when the SLO is tighter than
    ``e_min`` — callers decide whether that is an infeasibility error.
    """
    if slo_s <= 0:
        raise ConfigurationError("slo_s must be positive")
    return float(f_max_mhz * (e_min_s / slo_s) ** (1.0 / gamma))


def tail_latency(median_s: float, jitter_sigma: float, quantile: float) -> float:
    """Quantile of ``median * LogNormal(0, sigma)``.

    ``quantile`` follows the paper's "q% tail latency" phrasing: the latency
    value that q% of batches stay under (i.e. the q-th percentile).
    """
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError("quantile must lie in (0, 1)")
    if jitter_sigma == 0.0:
        return float(median_s)
    from scipy.special import ndtri  # inverse standard normal CDF

    return float(median_s * math.exp(jitter_sigma * float(ndtri(quantile))))


def sample_batch_work(
    spec: InferenceModelSpec,
    rng: np.random.Generator,
    batch: int | None = None,
    sampler=None,
) -> float:
    """Draw one batch's work in seconds-at-f_max (``work(batch) * jitter``).

    ``batch=None`` uses the spec's reference batch size, for which the work
    equals ``e_min_s`` (times jitter). Callers on the hot path may pass a
    pre-drawing ``sampler`` (a :class:`~repro.rng.BlockSampler` over the same
    lognormal) whose values are bit-identical to the scalar draw.
    """
    base = spec.e_min_s if batch is None else spec.work_for_batch_s(batch)
    if spec.jitter_sigma == 0.0:
        return base
    if sampler is not None:
        return float(base * sampler.next())
    return float(base * rng.lognormal(mean=0.0, sigma=spec.jitter_sigma))


# -- calibrated zoo -----------------------------------------------------------
# V100 workloads t1-t3 (Section 6.1): batch 20, pretrained torchvision weights.
# e_min values are representative V100 fp32 measurements for batch-20 image
# classification; gamma near the paper's 0.91.

RESNET50 = InferenceModelSpec(
    name="resnet50", batch_size=20, e_min_s=0.50, gamma=0.91, f_gmax_mhz=1350.0,
    jitter_sigma=0.06, preproc_cost_core_ghz_s=0.048,
)

SWIN_T = InferenceModelSpec(
    name="swin-t", batch_size=20, e_min_s=0.80, gamma=0.93, f_gmax_mhz=1350.0,
    jitter_sigma=0.07, preproc_cost_core_ghz_s=0.048,
)

VGG16 = InferenceModelSpec(
    name="vgg16", batch_size=20, e_min_s=0.65, gamma=0.95, f_gmax_mhz=1350.0,
    jitter_sigma=0.05, preproc_cost_core_ghz_s=0.048,
)

#: GoogLeNet on the RTX 3090 motivation box, calibrated so the Table 1
#: frequency pairs reproduce the paper's batch latencies:
#: e(810 MHz) ~= 1.33 s, e(495) ~= 2.04 s, e(660) ~= 1.59 s. The
#: preprocessing cost is set so that, under the ten-worker closed-loop
#: pipeline, neither stage dominates at the balanced (1.6 GHz, 660 MHz)
#: operating point — which is what makes coordinated throttling win.
GOOGLENET_3090 = InferenceModelSpec(
    name="googlenet", batch_size=20, e_min_s=0.70, gamma=0.87, f_gmax_mhz=1695.0,
    jitter_sigma=0.05, preproc_cost_core_ghz_s=1.55,
)

MODEL_ZOO: dict[str, InferenceModelSpec] = {
    spec.name: spec for spec in (RESNET50, SWIN_T, VGG16, GOOGLENET_3090)
}
