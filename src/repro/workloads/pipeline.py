"""End-to-end ML inference pipeline: CPU preprocessing -> queue -> GPU batches.

Reproduces the serving structure of Sections 3.2 and 5 of the paper:

* one or more CPU *producer* cores run preprocessing (resize / normalize /
  tensor conversion) at a rate proportional to their clock;
* preprocessed images land in a shared bounded queue;
* a GPU-bound consumer assembles fixed-size batches and runs inference with
  the Eq. 8 frequency-latency model (executed as work units progressing at
  ``(f/f_max)^gamma``, so mid-batch frequency changes — e.g. delta-sigma
  dithering — integrate correctly).

Two couplings are supported (Section 6.2 distinguishes them):

* ``preproc_frequency="cpu"`` — producer cores follow the controlled CPU
  clock (the Table 1 motivation box throttles the whole package);
* ``preproc_frequency="fixed"`` — producer cores are exempt from DVFS (the
  evaluation testbed regulates only the feature-selection cores, leaving the
  data-preparation cores at a fixed clock).

The pipeline can run *saturated* (infinite backlog — evaluation default),
*open-loop* against an :class:`~repro.workloads.request_gen.ArrivalProcess`,
or *closed-loop* with a bounded number of in-flight images (the motivation
experiment's ten request streams).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from ..errors import ConfigurationError
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import require_positive
from .models import InferenceModelSpec, sample_batch_work
from .request_gen import ArrivalProcess, SaturatedArrivals

__all__ = ["PipelineConfig", "PipelineTick", "GpuWorkload", "InferencePipeline"]

_LATENCY_WINDOW = 512  # recent per-batch samples kept for percentile stats


@dataclass(frozen=True)
class PipelineConfig:
    """Serving configuration of one inference pipeline.

    Parameters
    ----------
    n_workers:
        Number of dedicated CPU preprocessing cores (paper: one per GPU
        workload on the testbed; ten on the motivation box).
    queue_capacity_img:
        Bound of the shared tensor queue in images.
    inflight_limit_img:
        Closed-loop window: maximum images preprocessed-but-not-inferred at
        any time (``None`` = open loop).
    preproc_frequency:
        ``"cpu"`` (producers follow the controlled clock) or ``"fixed"``.
    fixed_preproc_ghz:
        Producer clock when ``preproc_frequency="fixed"``.
    """

    n_workers: int = 1
    queue_capacity_img: int = 400
    inflight_limit_img: int | None = None
    preproc_frequency: str = "cpu"
    fixed_preproc_ghz: float = 2.4

    def __post_init__(self):
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.queue_capacity_img < 1:
            raise ConfigurationError("queue_capacity_img must be >= 1")
        if self.inflight_limit_img is not None and self.inflight_limit_img < 1:
            raise ConfigurationError("inflight_limit_img must be >= 1 or None")
        if self.preproc_frequency not in ("cpu", "fixed"):
            raise ConfigurationError("preproc_frequency must be 'cpu' or 'fixed'")
        require_positive(self.fixed_preproc_ghz, "fixed_preproc_ghz")


class PipelineTick:
    """Per-tick pipeline observations fed to monitors and traces.

    A plain slots class rather than a dataclass: one is allocated per
    pipeline per simulation tick, so construction cost matters.
    """

    __slots__ = (
        "images_preprocessed",
        "batches_completed",
        "images_completed",
        "batch_latencies_s",
        "queue_waits_s",
        "gpu_busy_s",
        "preproc_busy_frac",
        "queue_len_img",
    )

    def __init__(
        self,
        images_preprocessed: float = 0.0,
        batches_completed: int = 0,
        images_completed: int = 0,
        batch_latencies_s: list | None = None,
        queue_waits_s: list | None = None,
        gpu_busy_s: float = 0.0,
        preproc_busy_frac: float = 0.0,
        queue_len_img: float = 0.0,
    ):
        self.images_preprocessed = images_preprocessed
        self.batches_completed = batches_completed
        self.images_completed = images_completed
        self.batch_latencies_s = [] if batch_latencies_s is None else batch_latencies_s
        self.queue_waits_s = [] if queue_waits_s is None else queue_waits_s
        self.gpu_busy_s = gpu_busy_s
        self.preproc_busy_frac = preproc_busy_frac
        self.queue_len_img = queue_len_img


class _RunningBatch:
    __slots__ = ("work_s", "progress_s", "start_t", "queue_wait_s", "n_images")

    def __init__(self, work_s: float, start_t: float, queue_wait_s: float,
                 n_images: int):
        self.work_s = work_s
        self.progress_s = 0.0
        self.start_t = start_t
        self.queue_wait_s = queue_wait_s
        self.n_images = n_images


class GpuWorkload(Protocol):
    """Structural interface :class:`~repro.sim.engine.ServerSimulation`
    requires of a per-GPU workload.

    Satisfied by :class:`InferencePipeline` (the full queued serving model)
    and by :class:`~repro.workloads.static.StaticLoadPipeline` (the
    closed-form fleet model). ``spec`` must expose ``max_batch_rate_s()``
    (throughput-monitor normalization hint).
    """

    config: PipelineConfig
    spec: Any

    def step(
        self, t_s: float, dt_s: float, cpu_ghz: float, gpu_mhz: float
    ) -> PipelineTick: ...

    def set_batch_size(self, batch: int) -> None: ...


class InferencePipeline:
    """Simulates one model's serving pipeline on one GPU."""

    def __init__(
        self,
        spec: InferenceModelSpec,
        config: PipelineConfig,
        rng: np.random.Generator,
        arrivals: ArrivalProcess | None = None,
    ):
        if config.queue_capacity_img < spec.batch_size:
            raise ConfigurationError(
                "queue capacity must hold at least one batch "
                f"({config.queue_capacity_img} < {spec.batch_size})"
            )
        if (
            config.inflight_limit_img is not None
            and config.inflight_limit_img < spec.batch_size
        ):
            raise ConfigurationError(
                "inflight limit must admit at least one batch "
                f"({config.inflight_limit_img} < {spec.batch_size})"
            )
        self.spec = spec
        self.config = config
        self._rng = rng
        # Jitter draws pre-fetched in blocks on the fast path; batch draws
        # consume the generator stream identically to per-batch scalar
        # draws, so sampled work (and digests) are unchanged.
        self._work_sampler = (
            BlockSampler(rng, "lognormal", (0.0, spec.jitter_sigma))
            if spec.jitter_sigma > 0 and vectorized_enabled()
            else None
        )
        # Current assembly size; mutable at run time (dynamic-batching
        # extension). Starts at the spec's reference batch size.
        self._batch_size = int(spec.batch_size)
        # Hot-path caches. Clocks take few distinct values (discrete DVFS
        # levels), so the per-tick powers/divisions are memoized on the exact
        # float frequency — cache hits return the identical float64 the
        # direct expression would produce.
        self._gpu_rate_cache: dict[float, float] = {}
        self._preproc_rate_cache: dict[float, float] = {}
        self.arrivals = arrivals if arrivals is not None else SaturatedArrivals()
        # FIFO of [image_count, mean_push_time] chunks (fluid approximation).
        self._queue: deque[list] = deque()
        self._queue_len = 0.0
        self._pending_img = 0.0  # offered but not yet preprocessed (finite modes)
        self._batch: _RunningBatch | None = None
        self.completed_images = 0
        self.completed_batches = 0
        self.recent_latencies_s: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.recent_queue_waits_s: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._total_latency_s = 0.0
        self._total_queue_wait_s = 0.0

    # -- derived rates -------------------------------------------------------

    def preproc_rate_img_s(self, cpu_freq_ghz: float) -> float:
        """Aggregate producer rate at the effective preprocessing clock."""
        f = (
            self.config.fixed_preproc_ghz
            if self.config.preproc_frequency == "fixed"
            else cpu_freq_ghz
        )
        return self.config.n_workers * f / self.spec.preproc_cost_core_ghz_s

    def preproc_latency_s(self, cpu_freq_ghz: float) -> float:
        """Per-image preprocessing time on one producer core."""
        f = (
            self.config.fixed_preproc_ghz
            if self.config.preproc_frequency == "fixed"
            else cpu_freq_ghz
        )
        return self.spec.preproc_cost_core_ghz_s / f

    @property
    def queue_len_img(self) -> float:
        """Images currently waiting in the shared queue."""
        return self._queue_len

    @property
    def batch_size(self) -> int:
        """Current assembly batch size (mutable via :meth:`set_batch_size`)."""
        return self._batch_size

    def set_batch_size(self, batch: int) -> None:
        """Change the assembly batch size (affects the *next* batch).

        Must stay within what the queue and the in-flight window can hold.
        """
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if batch > self.config.queue_capacity_img:
            raise ConfigurationError(
                f"batch {batch} exceeds queue capacity "
                f"{self.config.queue_capacity_img}"
            )
        if (
            self.config.inflight_limit_img is not None
            and batch > self.config.inflight_limit_img
        ):
            raise ConfigurationError(
                f"batch {batch} exceeds in-flight limit "
                f"{self.config.inflight_limit_img}"
            )
        self._batch_size = int(batch)

    @property
    def inflight_img(self) -> float:
        """Images preprocessed but not yet inferred."""
        batch = self._batch.n_images if self._batch is not None else 0
        return self._queue_len + batch

    @property
    def gpu_busy(self) -> bool:
        """True while a batch is running."""
        return self._batch is not None

    # -- statistics ----------------------------------------------------------

    def mean_batch_latency_s(self) -> float:
        """Lifetime mean per-batch inference latency (NaN before any batch)."""
        if self.completed_batches == 0:
            return float("nan")
        return self._total_latency_s / self.completed_batches

    def mean_queue_wait_s(self) -> float:
        """Lifetime mean per-image queue wait (NaN before any batch)."""
        if self.completed_batches == 0:
            return float("nan")
        return self._total_queue_wait_s / self.completed_batches

    def latency_percentile_s(self, q: float) -> float:
        """Recent-window latency percentile, ``q`` in (0, 1)."""
        if not self.recent_latencies_s:
            return float("nan")
        return float(np.quantile(np.asarray(self.recent_latencies_s), q))

    # -- dynamics --------------------------------------------------------------

    def step(
        self, t_s: float, dt_s: float, cpu_freq_ghz: float, gpu_freq_mhz: float
    ) -> PipelineTick:
        """Advance the pipeline one tick; returns the tick's observations."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        tick = PipelineTick()
        pending = self._pending_img
        queue_len = self._queue_len

        # 1. offered load
        new = self.arrivals.arrivals(t_s, dt_s)
        if math.isinf(new):
            pending = math.inf
        else:
            if math.isinf(pending):
                # The arrival process changed from saturated to metered
                # (e.g. an ArrivalRateChange event): the infinite backlog
                # was notional, so restart metered accounting from zero.
                pending = 0.0
            pending += new

        # 2. preprocessing: bounded by capacity, backlog, queue space, window
        rate = self._preproc_rate_cache.get(cpu_freq_ghz)
        if rate is None:
            rate = self._preproc_rate_cache[cpu_freq_ghz] = self.preproc_rate_img_s(
                cpu_freq_ghz
            )
        capacity = rate * dt_s
        space = self.config.queue_capacity_img - queue_len
        window = (
            math.inf
            if self.config.inflight_limit_img is None
            else max(self.config.inflight_limit_img - self.inflight_img, 0.0)
        )
        produced = max(min(capacity, pending, space, window), 0.0)
        if produced > 0:
            if not math.isinf(pending):
                pending -= produced
            self._queue.append([produced, t_s + 0.5 * dt_s])
            queue_len += produced
        self._pending_img = pending
        self._queue_len = queue_len
        tick.images_preprocessed = produced
        tick.preproc_busy_frac = produced / capacity if capacity > 0 else 0.0

        # 3. GPU progress, with sub-tick completion accounting: when a batch
        # finishes inside the tick, the exact completion instant is recovered
        # from the progress overshoot (otherwise every latency sample would
        # carry a +O(dt) quantization bias), and the spare tail of the tick
        # immediately serves the next batch if one can be assembled.
        batch = self._batch
        if batch is not None:
            rate = self._gpu_rate_cache.get(gpu_freq_mhz)
            if rate is None:
                rate = self._gpu_rate_cache[gpu_freq_mhz] = (
                    gpu_freq_mhz / self.spec.f_gmax_mhz
                ) ** self.spec.gamma
            batch.progress_s += dt_s * rate
            tick.gpu_busy_s = dt_s
            if batch.progress_s >= batch.work_s:
                overshoot = batch.progress_s - batch.work_s
                spare_s = overshoot / rate if rate > 0 else 0.0
                spare_s = min(spare_s, dt_s)
                completion_t = t_s + dt_s - spare_s
                self._complete_batch(completion_t, tick)
                if self._queue_len >= self._batch_size:
                    self._start_batch(completion_t)
                    self._batch.progress_s += spare_s * rate
                else:
                    tick.gpu_busy_s = dt_s - spare_s

        # 4. batch assembly when idle (images that arrived this tick count)
        if self._batch is None and self._queue_len >= self._batch_size:
            self._start_batch(t_s + dt_s)

        tick.queue_len_img = self._queue_len
        return tick

    def _complete_batch(self, now_s: float, tick: PipelineTick) -> None:
        batch = self._batch
        assert batch is not None
        latency = now_s - batch.start_t
        self._batch = None
        self.completed_batches += 1
        self.completed_images += batch.n_images
        self._total_latency_s += latency
        self._total_queue_wait_s += batch.queue_wait_s
        self.recent_latencies_s.append(latency)
        self.recent_queue_waits_s.append(batch.queue_wait_s)
        tick.batches_completed += 1
        tick.images_completed += batch.n_images
        tick.batch_latencies_s.append(latency)
        tick.queue_waits_s.append(batch.queue_wait_s)

    def _start_batch(self, now_s: float) -> None:
        n_images = self._batch_size
        need = float(n_images)
        weighted_age = 0.0
        taken = 0.0
        while need > 1e-12 and self._queue:
            chunk = self._queue[0]
            take = min(chunk[0], need)
            weighted_age += take * (now_s - chunk[1])
            chunk[0] -= take
            need -= take
            taken += take
            if chunk[0] <= 1e-12:
                self._queue.popleft()
        self._queue_len = max(self._queue_len - taken, 0.0)
        queue_wait = weighted_age / taken if taken > 0 else 0.0
        work = sample_batch_work(
            self.spec, self._rng, batch=n_images, sampler=self._work_sampler
        )
        self._batch = _RunningBatch(work, now_s, queue_wait, n_images)

    def reset(self) -> None:
        """Return to the empty initial state (keeps spec/config/rng)."""
        self._queue.clear()
        self._queue_len = 0.0
        self._pending_img = 0.0
        self._batch = None
        self.completed_images = 0
        self.completed_batches = 0
        self.recent_latencies_s.clear()
        self.recent_queue_waits_s.clear()
        self._total_latency_s = 0.0
        self._total_queue_wait_s = 0.0
        self._batch_size = int(self.spec.batch_size)
        self.arrivals.reset()
