"""Rack simulation: hierarchical capping over multiple CapGPU servers.

The outer loop of oversubscribed operation (extension beyond the paper):
every ``periods_per_rack_period`` server control periods the rack manager
reads each server's state (power, achievable envelope, demand) and pushes a
new per-server budget computed by a :class:`~repro.cluster.allocator.
BudgetAllocator`; each server's own controller then tracks its budget.
Servers are electrically independent, so they advance one after another
within a rack period without loss of fidelity.
"""

from __future__ import annotations

import numpy as np

from ..control.base import PowerCappingController
from ..errors import ConfigurationError
from ..sim.engine import ServerSimulation
from ..telemetry.trace import Trace
from ..units import require_positive
from .allocator import BudgetAllocator, ServerPowerState

__all__ = ["RackServer", "RackSimulation"]


class RackServer:
    """One server slot in a rack: a simulation plus its capping controller."""

    def __init__(
        self,
        name: str,
        sim: ServerSimulation,
        controller: PowerCappingController,
        priority: int = 0,
    ):
        self.name = str(name)
        self.sim = sim
        self.controller = controller
        self.priority = int(priority)
        self._started = False

    def state(self) -> ServerPowerState:
        """Snapshot for the allocator."""
        lo, hi = self.sim.server.power_envelope_w(utilization=1.0)
        trace = self.sim.trace
        if len(trace) > 0:
            power = trace.last("power_w")
            # Demand = throttling pressure: a GPU that is busy a larger
            # fraction of time than the throughput fraction it delivers is
            # being held back by its clock (cap), whereas a GPU idle for
            # lack of work shows low utilization *and* low throughput and
            # contributes nothing. This distinguishes "capped" from "idle".
            pressure = [
                max(
                    trace.last(f"util_{c}") - trace.last(f"tput_norm_{c}"), 0.0
                )
                for c in self.sim.gpu_channels
            ]
            demand = float(np.clip(np.mean(pressure), 0.0, 1.0))
        else:
            power = float("nan")
            demand = 1.0
        return ServerPowerState(
            name=self.name,
            power_w=power,
            p_min_w=lo,
            p_max_w=hi,
            demand=demand,
            priority=self.priority,
        )

    def run_periods(self, n: int) -> None:
        """Advance the server ``n`` control periods under its controller."""
        self.sim.run(
            self.controller, n, apply_initial_targets=not self._started
        )
        self._started = True


class RackSimulation:
    """A rack of servers under a shared, reallocated power budget."""

    def __init__(
        self,
        servers: list[RackServer],
        allocator: BudgetAllocator,
        rack_budget_w: float,
        periods_per_rack_period: int = 5,
    ):
        if not servers:
            raise ConfigurationError("rack needs at least one server")
        names = [s.name for s in servers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate server names: {names}")
        self.servers = list(servers)
        self.allocator = allocator
        self.rack_budget_w = require_positive(rack_budget_w, "rack_budget_w")
        if periods_per_rack_period < 1:
            raise ConfigurationError("periods_per_rack_period must be >= 1")
        self.periods_per_rack_period = int(periods_per_rack_period)
        channels = ["rack_period", "budget_w", "total_power_w"]
        for name in names:
            channels += [f"budget_{name}", f"power_{name}", f"demand_{name}"]
        self.trace = Trace(channels)
        self.rack_period = 0

    def set_budget(self, budget_w: float) -> None:
        """Change the rack budget (takes effect at the next rack period)."""
        self.rack_budget_w = require_positive(budget_w, "budget_w")

    def run(self, n_rack_periods: int) -> Trace:
        """Run ``n_rack_periods`` allocation rounds; returns the rack trace."""
        if n_rack_periods < 1:
            raise ConfigurationError("n_rack_periods must be >= 1")
        for _ in range(n_rack_periods):
            states = [s.state() for s in self.servers]
            budgets = self.allocator.allocate(self.rack_budget_w, states)
            for server, budget in zip(self.servers, budgets):
                server.sim.set_point_w = budget
                server.run_periods(self.periods_per_rack_period)
            row: dict[str, float] = {
                "rack_period": float(self.rack_period),
                "budget_w": self.rack_budget_w,
            }
            total = 0.0
            for server, budget, state in zip(self.servers, budgets, states):
                power = server.sim.trace.last("power_w")
                total += power
                row[f"budget_{server.name}"] = budget
                row[f"power_{server.name}"] = power
                row[f"demand_{server.name}"] = state.demand
            row["total_power_w"] = total
            self.trace.append(**row)
            self.rack_period += 1
        return self.trace
