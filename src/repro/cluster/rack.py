"""Rack simulation: hierarchical capping over multiple CapGPU servers.

Since the fleet engine landed this is a thin compatibility shim: a rack is
exactly a one-rack :class:`~repro.fleet.engine.FleetSimulation` over the
scalar :class:`~repro.fleet.engine.ReferenceBackend`, with a flat budget
tree (one interior node — the rack — feeding every server leaf). The
original rack loop lives on, float for float, as that reference backend;
``tests/fleet/test_differential.py`` pins the equivalence against a literal
transcription of the pre-shim loop.

New code should target :class:`~repro.fleet.engine.FleetSimulation`
directly — it adds hierarchical budget trees, pluggable backends (the
structure-of-arrays engine scales to thousands of servers) and fleet-level
checkpointing. The shim exists so the paper-facing rack experiments and
the published examples keep their exact API and their exact traces
(modulo the appended digest-excluded ``alloc_ms`` timing channel).
"""

from __future__ import annotations

from ..fleet.engine import FleetServer, FleetSimulation, ReferenceBackend
from .allocator import BudgetAllocator

__all__ = ["RackServer", "RackSimulation"]


class RackServer(FleetServer):
    """One server slot in a rack: a simulation plus its capping controller.

    Alias of :class:`~repro.fleet.engine.FleetServer` kept for the original
    rack API.
    """


class RackSimulation(FleetSimulation):
    """A rack of servers under a shared, reallocated power budget.

    One-rack :class:`FleetSimulation` with the original constructor and
    attribute names (``servers``, ``allocator``, ``rack_budget_w``).
    """

    backend: ReferenceBackend  # racks always step the scalar reference loop

    def __init__(
        self,
        servers: list[RackServer],
        allocator: BudgetAllocator,
        rack_budget_w: float,
        periods_per_rack_period: int = 5,
    ):
        super().__init__(
            ReferenceBackend(servers),
            budget_w=rack_budget_w,
            allocation=allocator,
            periods_per_rack_period=periods_per_rack_period,
        )
        self.allocator = allocator

    @property
    def servers(self) -> list[FleetServer]:
        return self.backend.servers

    @property
    def rack_budget_w(self) -> float:
        return self.budget_w

    @rack_budget_w.setter
    def rack_budget_w(self, value: float) -> None:
        self.set_budget(value)
