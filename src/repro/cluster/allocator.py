"""Rack-level budget allocators (extension beyond the paper).

The paper's context is power oversubscription: a rack (or data center) holds
a budget below the sum of its servers' peaks, and a manager — Meta's Dynamo,
Google's priority-aware capping, SHIP [29] — divides it among servers, each
of which enforces its share with a server-level capper such as CapGPU. This
module supplies that upper layer for our simulated servers.

An allocator receives one :class:`ServerPowerState` per server (what a rack
manager can measure: current draw, achievable envelope, a demand signal,
a priority weight) and returns per-server budgets that

* never drop below a server's achievable minimum (it could not comply),
* never exceed its achievable maximum (wasted budget), and
* sum to at most the rack budget.

Implemented policies:

* :class:`FairShareAllocator` — equal split of the controllable range;
* :class:`ProportionalDemandAllocator` — headroom proportional to measured
  demand (throughput-starved servers get more, like Dynamo's workload-aware
  groups);
* :class:`PriorityAllocator` — water-filling by strict priority tiers
  (high-priority servers are satisfied first, as in [16, 24]).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import BudgetShortfallWarning, ConfigurationError

__all__ = [
    "ServerPowerState",
    "BudgetAllocator",
    "FairShareAllocator",
    "ProportionalDemandAllocator",
    "PriorityAllocator",
]


@dataclass(frozen=True)
class ServerPowerState:
    """What the rack manager knows about one server.

    ``demand`` is a non-negative scalar expressing how much the server would
    benefit from more budget (e.g. 1 - mean normalized throughput, or queue
    growth); ``priority`` orders servers for the priority policy (higher =
    more important).
    """

    name: str
    power_w: float
    p_min_w: float
    p_max_w: float
    demand: float = 1.0
    priority: int = 0

    def __post_init__(self):
        if self.p_min_w > self.p_max_w:
            raise ConfigurationError(f"{self.name}: p_min exceeds p_max")
        if self.demand < 0:
            raise ConfigurationError(f"{self.name}: demand must be >= 0")


def _validate(states: list[ServerPowerState], budget_w: float) -> list[float] | None:
    """Shared precondition check; returns a clamped allocation on shortfall.

    When ``budget_w`` is below the sum of server minimums no allocator can
    satisfy both the budget and the per-server floors. The defined behavior
    (property-tested) is clamp-to-min: every server receives exactly its
    ``p_min_w`` and a :class:`~repro.errors.BudgetShortfallWarning` carries
    the structured deficit. Returns ``None`` when the budget is feasible and
    the caller should run its policy.
    """
    if not states:
        raise ConfigurationError("need at least one server state")
    floor = sum(s.p_min_w for s in states)
    if budget_w < floor:
        warnings.warn(BudgetShortfallWarning(budget_w, floor), stacklevel=3)
        return [s.p_min_w for s in states]
    return None


def _water_fill(
    states: list[ServerPowerState], budget_w: float, weights: np.ndarray
) -> list[float]:
    """Guarantee every minimum, then split the surplus by weight, capping at
    each server's maximum and redistributing until no budget is stranded."""
    alloc = np.array([s.p_min_w for s in states], dtype=np.float64)
    caps = np.array([s.p_max_w for s in states], dtype=np.float64)
    surplus = budget_w - float(alloc.sum())
    w = np.asarray(weights, dtype=np.float64).copy()
    active = (caps - alloc) > 1e-9
    for _ in range(len(states) + 1):
        if surplus <= 1e-9 or not np.any(active):
            break
        w_active = np.where(active, w, 0.0)
        total_w = float(w_active.sum())
        if total_w <= 0:
            # No remaining weight: spread evenly across non-saturated servers.
            w_active = active.astype(np.float64)
            total_w = float(w_active.sum())
        share = surplus * w_active / total_w
        new_alloc = np.minimum(alloc + share, caps)
        surplus -= float((new_alloc - alloc).sum())
        alloc = new_alloc
        active = (caps - alloc) > 1e-9
    return [float(a) for a in alloc]


class BudgetAllocator(ABC):
    """Divides a rack budget among servers."""

    @abstractmethod
    def allocate(self, budget_w: float, states: list[ServerPowerState]) -> list[float]:
        """Return one budget per server (aligned with ``states``)."""


class FairShareAllocator(BudgetAllocator):
    """Equal share of the surplus above every server's minimum."""

    def allocate(self, budget_w: float, states: list[ServerPowerState]) -> list[float]:
        clamped = _validate(states, budget_w)
        if clamped is not None:
            return clamped
        return _water_fill(states, budget_w, np.ones(len(states)))


class ProportionalDemandAllocator(BudgetAllocator):
    """Surplus proportional to each server's demand signal.

    A floor keeps zero-demand servers from being starved outright (they
    still receive a trickle so a demand spike can be detected next round).
    """

    def __init__(self, demand_floor: float = 0.05):
        if demand_floor < 0:
            raise ConfigurationError("demand_floor must be >= 0")
        self.demand_floor = float(demand_floor)

    def allocate(self, budget_w: float, states: list[ServerPowerState]) -> list[float]:
        clamped = _validate(states, budget_w)
        if clamped is not None:
            return clamped
        weights = np.array(
            [max(s.demand, self.demand_floor) for s in states], dtype=np.float64
        )
        return _water_fill(states, budget_w, weights)


class PriorityAllocator(BudgetAllocator):
    """Strict priority tiers: satisfy higher tiers to their maximum first.

    Within a tier the surplus splits evenly. This mirrors priority-aware
    capping [16, 24], where best-effort servers absorb the shortfall.
    """

    def allocate(self, budget_w: float, states: list[ServerPowerState]) -> list[float]:
        clamped = _validate(states, budget_w)
        if clamped is not None:
            return clamped
        alloc = {i: s.p_min_w for i, s in enumerate(states)}
        surplus = budget_w - sum(alloc.values())
        for prio in sorted({s.priority for s in states}, reverse=True):
            tier = [i for i, s in enumerate(states) if s.priority == prio]
            tier_states = [states[i] for i in tier]
            tier_budget = sum(alloc[i] for i in tier) + surplus
            tier_alloc = _water_fill(
                tier_states,
                min(tier_budget, sum(s.p_max_w for s in tier_states)),
                np.ones(len(tier)),
            )
            spent = sum(tier_alloc) - sum(alloc[i] for i in tier)
            surplus -= spent
            for i, a in zip(tier, tier_alloc):
                alloc[i] = a
            if surplus <= 1e-9:
                break
        return [alloc[i] for i in range(len(states))]
