"""Rack-level hierarchical power capping over CapGPU servers (extension).

See DESIGN.md: this layer implements the oversubscription context the paper
motivates (Dynamo-style budget reallocation), with CapGPU as the per-server
enforcement mechanism.
"""

from .allocator import (
    BudgetAllocator,
    FairShareAllocator,
    PriorityAllocator,
    ProportionalDemandAllocator,
    ServerPowerState,
)
from .rack import RackServer, RackSimulation

__all__ = [
    "ServerPowerState",
    "BudgetAllocator",
    "FairShareAllocator",
    "ProportionalDemandAllocator",
    "PriorityAllocator",
    "RackServer",
    "RackSimulation",
]
