"""Rack-level hierarchical power capping over CapGPU servers (extension).

See DESIGN.md: this layer implements the oversubscription context the paper
motivates (Dynamo-style budget reallocation), with CapGPU as the per-server
enforcement mechanism.
"""

from .allocator import (
    BudgetAllocator,
    FairShareAllocator,
    PriorityAllocator,
    ProportionalDemandAllocator,
    ServerPowerState,
)


def __getattr__(name: str):
    # RackSimulation is a shim over repro.fleet, which itself builds on
    # .allocator — importing .rack lazily keeps the package import acyclic
    # whichever of repro.cluster / repro.fleet loads first.
    if name in ("RackServer", "RackSimulation"):
        from . import rack

        return getattr(rack, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ServerPowerState",
    "BudgetAllocator",
    "FairShareAllocator",
    "ProportionalDemandAllocator",
    "PriorityAllocator",
    "RackServer",
    "RackSimulation",
]
