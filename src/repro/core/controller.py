"""The CapGPU controller: MPC + weight assignment + SLO constraints.

This is the strategy Figure 1 of the paper wires into the control loop. Each
control period it:

1. reads the period-averaged power from the meter path and forms the
   tracking error against the (possibly just-changed) set point;
2. asks the :class:`~repro.core.weights.WeightAssigner` for this period's
   control-penalty weights from the normalized throughputs;
3. asks the :class:`~repro.core.slo.SloManager` for SLO-derived frequency
   floors (Eq. 10b-c inverted);
4. solves the MIMO MPC (Eq. 9-10) and stages the first move of the input
   trajectory, receding-horizon style.

The identified power model comes from :mod:`repro.sysid`; optionally an
online RLS estimator refreshes it each period (extension).
"""

from __future__ import annotations

import numpy as np

from ..control.base import ControlObservation, PowerCappingController
from ..errors import ConfigurationError
from ..enginemode import fast_enabled
from ..sysid.least_squares import PowerModelFit
from ..sysid.rls import RecursiveLeastSquares
from .feasibility import FeasibilityReport, check_set_point
from .mpc import MimoPowerMpc, MpcConfig, MpcSolution
from .slo import SloManager
from .weights import WeightAssigner

__all__ = ["CapGpuController"]


class CapGpuController(PowerCappingController):
    """Joint CPU + multi-GPU MIMO power-capping controller (the paper's CapGPU).

    Parameters
    ----------
    model:
        Identified linear power model (``A`` gains are what the MPC uses;
        the offset ``C`` cancels in the incremental form of Eq. 7).
    mpc_config:
        Horizons and solver (paper defaults P=8, M=2, SLSQP).
    weights:
        Throughput-to-penalty mapping; default is the paper's inverse
        normalized throughput.
    slo_manager:
        Optional SLO constraint handler; omit for SLO-free capping.
    online_adaptation:
        If True, refresh the gain estimate each period with recursive least
        squares on the observed (applied frequencies, power) pairs.
    """

    name = "capgpu"

    def __init__(
        self,
        model: PowerModelFit,
        mpc_config: MpcConfig = MpcConfig(),
        weights: WeightAssigner | None = None,
        slo_manager: SloManager | None = None,
        online_adaptation: bool = False,
    ):
        self.model = model
        if fast_enabled():
            # Construction-time engine switch: a controller built under
            # --engine fast keeps the pre-solved-gain solver for life,
            # matching the discipline in repro.enginemode. The upward
            # engine->scale reference is the one sanctioned bridge: the
            # fast solver *subclasses* this controller's MPC, the import
            # is deferred behind the flag, and reference-mode runs never
            # execute it.
            from ..fast.mpc import FastMimoPowerMpc  # repro-lint: disable=REP601 -- deliberate construction-time bridge to the opt-in fast engine

            self.mpc: MimoPowerMpc = FastMimoPowerMpc(model.n_channels, mpc_config)
        else:
            self.mpc = MimoPowerMpc(model.n_channels, mpc_config)
        self.weights = weights if weights is not None else WeightAssigner()
        self.slo_manager = slo_manager
        self.online_adaptation = bool(online_adaptation)
        self._rls: RecursiveLeastSquares | None = None
        if online_adaptation:
            theta0 = np.append(model.a_w_per_mhz, model.c_w)
            self._rls = RecursiveLeastSquares(
                model.n_channels, forgetting=0.97, theta0=theta0, p0=10.0
            )
        self.last_solution: MpcSolution | None = None
        self.last_floors_mhz: np.ndarray | None = None
        self.last_penalty_weights: np.ndarray | None = None
        self.last_feasibility: FeasibilityReport | None = None

    def reset(self) -> None:
        self.last_solution = None
        self.last_floors_mhz = None
        self.last_penalty_weights = None
        if self.online_adaptation:
            theta0 = np.append(self.model.a_w_per_mhz, self.model.c_w)
            self._rls = RecursiveLeastSquares(
                self.model.n_channels, forgetting=0.97, theta0=theta0, p0=10.0
            )

    def current_gains(self) -> np.ndarray:
        """Gains the MPC will use next period (RLS-refreshed if enabled)."""
        if self._rls is not None and self._rls.n_updates > 0:
            return self._rls.estimate().a_w_per_mhz
        return self.model.a_w_per_mhz

    def step(self, obs: ControlObservation) -> np.ndarray:
        if obs.n_channels != self.model.n_channels:
            raise ConfigurationError(
                f"observation has {obs.n_channels} channels, model has "
                f"{self.model.n_channels}"
            )
        if self._rls is not None and np.isfinite(obs.power_w):
            self._rls.update(obs.f_applied_mhz, obs.power_w)

        floors = (
            self.slo_manager.frequency_floors(obs)
            if self.slo_manager is not None
            else obs.f_min_mhz.copy()
        )
        r = self.weights.penalty_weights(obs)
        self.last_floors_mhz = floors
        self.last_penalty_weights = r
        # Section 4.4's assumption, continuously monitored: with the current
        # SLO floors, can any frequency combination reach the set point?
        if self.online_adaptation and self._rls is not None and self._rls.n_updates:
            feas_model = self._rls.estimate()
        else:
            feas_model = self.model
        self.last_feasibility = check_set_point(
            feas_model, floors, obs.f_max_mhz, obs.set_point_w
        )

        # Base the move on the current *commands*: the plant model (Eq. 7)
        # is incremental, and the commands are what the next period's
        # modulators will realize.
        f_now = np.clip(obs.f_targets_mhz, floors, obs.f_max_mhz)
        sol = self.mpc.solve(
            error_w=obs.power_w - obs.set_point_w,
            f_now_mhz=f_now,
            a_w_per_mhz=self.current_gains(),
            r_weights=r,
            floors_mhz=floors,
            f_max_mhz=obs.f_max_mhz,
        )
        self.last_solution = sol
        return f_now + sol.d0_mhz
