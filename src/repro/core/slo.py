"""SLO management: latency constraints as per-GPU frequency floors.

Eq. 10b-c constrain the MPC: the latency model ``e_i = e_min_i
(f_gmax/f_g)^gamma`` must keep every task under its SLO. Inverting Eq. 8
turns each SLO into a *lower bound* on that GPU's clock::

    f_g >= f_gmax * (e_min_i / SLO_i)^(1/gamma)

which is a linear box constraint the solver handles natively. The manager
holds the per-task latency model (from system identification or from the
task spec) and converts the observation's current SLO map — which events may
change at run time (Section 6.4) — into a frequency-floor vector.
"""

from __future__ import annotations

import numpy as np

from ..control.base import ControlObservation
from ..errors import ConfigurationError, SloInfeasibleError
from ..sysid.latency_fit import LatencyModelFit
from ..workloads.models import InferenceModelSpec

__all__ = ["SloManager", "TaskLatencyModel"]


class TaskLatencyModel:
    """Latency-model parameters for one GPU channel."""

    __slots__ = ("e_min_s", "gamma", "f_max_mhz")

    def __init__(self, e_min_s: float, gamma: float, f_max_mhz: float):
        if e_min_s <= 0 or gamma <= 0 or f_max_mhz <= 0:
            raise ConfigurationError("latency-model parameters must be positive")
        self.e_min_s = float(e_min_s)
        self.gamma = float(gamma)
        self.f_max_mhz = float(f_max_mhz)

    @classmethod
    def from_spec(cls, spec: InferenceModelSpec) -> "TaskLatencyModel":
        return cls(spec.e_min_s, spec.gamma, spec.f_gmax_mhz)

    @classmethod
    def from_fit(cls, fit: LatencyModelFit) -> "TaskLatencyModel":
        return cls(fit.e_min_s, fit.gamma, fit.f_max_mhz)

    def latency_s(self, f_mhz: float) -> float:
        """Eq. 8 latency at clock ``f_mhz``."""
        return self.e_min_s * (self.f_max_mhz / f_mhz) ** self.gamma

    def floor_mhz(self, slo_s: float) -> float:
        """Smallest clock meeting ``slo_s`` (may exceed ``f_max_mhz``)."""
        return self.f_max_mhz * (self.e_min_s / slo_s) ** (1.0 / self.gamma)


class SloManager:
    """Translates the live SLO map into per-channel frequency floors.

    Parameters
    ----------
    task_models:
        Mapping from GPU *channel index* to that task's latency model.
    strict:
        If True, an SLO tighter than the task's minimum latency raises
        :class:`SloInfeasibleError`; if False the floor clamps to ``f_max``
        and the infeasibility is recorded in :attr:`infeasible_channels`
        (the controller then does its best, as a deployment would).
    headroom:
        Multiplicative back-off applied to each SLO before inversion
        (e.g. 0.95 targets 95% of the SLO so jitter does not ride the
        boundary). 1.0 = exact inversion.
    """

    def __init__(
        self,
        task_models: dict[int, TaskLatencyModel],
        strict: bool = False,
        headroom: float = 0.9,
    ):
        if not 0.0 < headroom <= 1.0:
            raise ConfigurationError("headroom must lie in (0, 1]")
        self.task_models = dict(task_models)
        self.strict = bool(strict)
        self.headroom = float(headroom)
        self.infeasible_channels: set[int] = set()

    def frequency_floors(self, obs: ControlObservation) -> np.ndarray:
        """Per-channel lower bounds honoring the observation's current SLOs.

        Channels without an SLO (all CPUs; SLO-free GPUs) keep their domain
        minimum. Floors never drop below the domain minimum and, in
        non-strict mode, never exceed the domain maximum.
        """
        floors = obs.f_min_mhz.copy()
        self.infeasible_channels.clear()
        for chan, slo_s in obs.slos_s.items():
            model = self.task_models.get(chan)
            if model is None:
                raise ConfigurationError(
                    f"SLO set on channel {chan} but no latency model registered"
                )
            effective = slo_s * self.headroom
            floor = model.floor_mhz(effective)
            if floor > obs.f_max_mhz[chan] + 1e-9:
                if self.strict:
                    raise SloInfeasibleError(
                        task=f"channel{chan}", slo_s=slo_s, e_min_s=model.e_min_s
                    )
                self.infeasible_channels.add(chan)
                floor = obs.f_max_mhz[chan]
            floors[chan] = max(floors[chan], floor)
        return floors

    def predicted_latency_s(self, chan: int, f_mhz: float) -> float:
        """Model-predicted latency of channel ``chan`` at clock ``f_mhz``."""
        model = self.task_models.get(chan)
        if model is None:
            raise ConfigurationError(f"no latency model for channel {chan}")
        return model.latency_s(f_mhz)
