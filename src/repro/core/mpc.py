"""MIMO model-predictive power controller — the mathematics of Section 4.3.

State and model (Eq. 7): the incremental power model
``p(k+1) = p(k) + A . dF(k)`` with identified gains ``A`` (one per CPU/GPU
channel). Decision variable: the stacked input trajectory
``D = [d(k), d(k+1|k), ..., d(k+M-1|k)]`` of frequency increments over the
control horizon ``M``; predictions extend over the prediction horizon ``P``.

Cost (Eq. 9)::

    V(k) = sum_{i=1..P} Q(i) * (p(k+i|k) - P_s)^2
         + sum_{m=0..M-1} || f(k+m|k) + d(k+m|k) - f_min ||^2_R

with per-channel penalty weights ``R`` supplied each period by the weight
assigner. Constraints (Eq. 10): every intermediate frequency stays inside
``[floor, f_max]``, where floors include the SLO-derived lower bounds.

The cost is an exact convex quadratic in ``D``:

    V(D) = D' H D + 2 b' D + const
    H = Ap' Q Ap + sum_m C_m' R C_m
    b = e * Ap' Q 1 + sum_m C_m' R g0

where ``Ap`` stacks the prediction rows ``a_i = A S_i`` (``S_i`` sums the
first ``min(i, M)`` moves), ``e = p(k) - P_s`` and ``g0 = f(k) - f_min``.
Two solvers are provided:

* ``"slsqp"`` — :func:`scipy.optimize.minimize` with analytic gradients and
  the linear inequality constraints, exactly as the paper implements it;
* ``"analytic"`` — the closed-form unconstrained minimizer with the first
  move clipped into the box (the offline/online split the paper cites from
  the multi-parametric literature [32]); orders of magnitude faster and
  ablated against SLSQP in the benchmarks.

Because the unconstrained minimizer is linear in ``(e, g0)``,
:func:`unconstrained_gains` exposes the feedback gains used by the
stability analysis of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..errors import ConfigurationError, SolverError

__all__ = ["MpcConfig", "MpcSolution", "MimoPowerMpc", "unconstrained_gains"]


@dataclass(frozen=True)
class MpcConfig:
    """Horizon and solver configuration (paper defaults: P=8, M=2).

    ``reference_lambda`` implements the *reference trajectory* the paper
    lists among the controller's components (Section 4.3): instead of
    demanding ``p = P_s`` at every prediction step, the controller tracks an
    exponential approach ``r(k+i) = P_s + lambda^i (p(k) - P_s)``. The
    closed-loop error mode then sits near ``lambda``: 0 recovers the
    deadbeat-like behaviour (maximum noise amplification), values around
    0.4-0.6 trade one or two extra settling periods for substantially less
    chasing of measurement noise.
    """

    prediction_horizon: int = 8
    control_horizon: int = 2
    q_weight: float = 1.0
    reference_lambda: float = 0.5
    solver: str = "slsqp"
    max_step_mhz: float | None = None
    regularization: float = 1e-9
    slsqp_maxiter: int = 120

    def __post_init__(self):
        if self.control_horizon < 1:
            raise ConfigurationError("control_horizon must be >= 1")
        if self.prediction_horizon < self.control_horizon:
            raise ConfigurationError("prediction_horizon must be >= control_horizon")
        if self.q_weight <= 0:
            raise ConfigurationError("q_weight must be positive")
        if not 0.0 <= self.reference_lambda < 1.0:
            raise ConfigurationError("reference_lambda must lie in [0, 1)")
        if self.solver not in ("slsqp", "analytic"):
            raise ConfigurationError("solver must be 'slsqp' or 'analytic'")
        if self.max_step_mhz is not None and self.max_step_mhz <= 0:
            raise ConfigurationError("max_step_mhz must be positive or None")
        if self.regularization < 0:
            raise ConfigurationError("regularization must be >= 0")


@dataclass
class MpcSolution:
    """Result of one MPC solve."""

    d0_mhz: np.ndarray
    trajectory_mhz: np.ndarray  # shape (M, N)
    cost: float
    solver: str
    converged: bool
    n_iterations: int


def _prediction_matrix(a: np.ndarray, p_horizon: int, m_horizon: int) -> np.ndarray:
    """Stack rows ``a_i = A S_i`` into ``Ap`` of shape ``(P, N*M)``.

    Move ``m`` contributes to prediction step ``i`` iff ``m < i``; the block
    structure is a broadcast of that mask against ``a``.
    """
    n = a.shape[0]
    mask = np.arange(m_horizon)[None, :] < np.arange(1, p_horizon + 1)[:, None]
    blocks = mask[:, :, None] * a[None, None, :]  # (P, M, N)
    return blocks.reshape(p_horizon, n * m_horizon)


def _penalty_hessian(r: np.ndarray, m_horizon: int) -> np.ndarray:
    """``sum_m C_m' R C_m`` — block (j, k) is ``R * (M - max(j, k))``."""
    n = r.shape[0]
    j = np.arange(m_horizon)
    counts = m_horizon - np.maximum(j[:, None], j[None, :])  # (M, M), all >= 1
    blocks = counts[:, None, :, None] * np.diag(r)[None, :, None, :]
    return blocks.reshape(n * m_horizon, n * m_horizon)


def _penalty_linear_map(r: np.ndarray, m_horizon: int) -> np.ndarray:
    """``sum_m C_m' R`` as an ``(N*M, N)`` matrix acting on ``g0``."""
    n = r.shape[0]
    counts = m_horizon - np.arange(m_horizon)  # number of m >= j
    blocks = counts[:, None, None] * np.diag(r)[None, :, :]
    return blocks.reshape(n * m_horizon, n)


class MimoPowerMpc:
    """The CapGPU MPC solver for a fixed channel count and configuration.

    One instance is reused across control periods; per-period data (error,
    frequencies, penalty weights, floors) arrive through :meth:`solve`.
    """

    #: Assembled-matrix cache entries kept before a full clear (an adapting
    #: gain estimate produces a fresh key every period; bound the memory).
    _CACHE_LIMIT = 64

    def __init__(self, n_channels: int, config: MpcConfig = MpcConfig()):
        if n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        self.n = int(n_channels)
        self.config = config
        # Constants of the (n, config) pair, hoisted out of the solve path.
        i_steps = np.arange(1, config.prediction_horizon + 1)
        self._ref_scale = 1.0 - config.reference_lambda**i_steps
        self._reg_eye = config.regularization * np.eye(
            self.n * config.control_horizon
        )
        self._ineq_jac = self._constant_ineq_jacobian()
        # (a, r) -> (H, Ap, q_row, P_map); see _assemble.
        self._cache: dict[tuple[bytes, bytes], tuple] = {}

    def _constant_ineq_jacobian(self) -> np.ndarray:
        """Jacobian of the SLSQP box inequalities (``d cum_m / d d_j = I``
        for ``j <= m``) — constant for a fixed (n, M), built once."""
        n, m_hor = self.n, self.config.control_horizon
        jac_rows = []
        for mm in range(m_hor):
            block = np.zeros((n, n * m_hor))
            for j in range(mm + 1):
                block[:, j * n:(j + 1) * n] = np.eye(n)
            jac_rows.append(block)
        cum_jac = np.vstack(jac_rows)  # (M*N, M*N)
        return np.vstack([cum_jac, -cum_jac])

    # -- quadratic-form assembly -------------------------------------------------

    def _assemble(
        self, a: np.ndarray, r: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Build (H, Ap, q_row, P_map) for gains ``a`` and penalties ``r``.

        Results are cached per ``(a, r)`` value: horizons and weights live in
        the frozen config, so the matrices only change when the gains or the
        per-channel penalties do — under the default (non-adapting) gain
        model that is once per run, not once per solve. Cached arrays are
        marked read-only; solver code never mutates them.
        """
        key = (a.tobytes(), r.tobytes())
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        cfg = self.config
        ap = _prediction_matrix(a, cfg.prediction_horizon, cfg.control_horizon)
        h = cfg.q_weight * (ap.T @ ap) + _penalty_hessian(r, cfg.control_horizon)
        h += self._reg_eye
        # Reference trajectory: the tracked residual at step i is
        # (1 - lambda^i) * e + a_i . D, so the error enters b scaled per row.
        q_row = cfg.q_weight * (self._ref_scale @ ap)  # Ap' Q (1 - lambda^i)
        p_map = _penalty_linear_map(r, cfg.control_horizon)
        for arr in (h, ap, q_row, p_map):
            arr.setflags(write=False)
        if len(self._cache) >= self._CACHE_LIMIT:
            self._cache.clear()
        entry = (h, ap, q_row, p_map)
        self._cache[key] = entry
        return entry

    # -- checkpointing ---------------------------------------------------------

    def __repro_getstate__(self) -> dict:
        """Checkpoint projection (see :mod:`repro.checkpoint.state`).

        Everything except the cache is a construction-time constant, and
        the cached matrices are pure functions of their ``(a, r)`` keys —
        so a checkpoint stores only the keys, in insertion order, and
        restore replays :meth:`_assemble` to rebuild byte-identical
        (read-only) entries. This keeps write-protected arrays out of the
        generic in-place restore path.
        """
        return {"cache_keys": list(self._cache.keys())}

    def __repro_setstate__(self, state: dict) -> None:
        self._cache.clear()
        for key_a, key_r in state["cache_keys"]:
            self._assemble(
                np.frombuffer(key_a, dtype=np.float64),
                np.frombuffer(key_r, dtype=np.float64),
            )

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        error_w: float,
        f_now_mhz: np.ndarray,
        a_w_per_mhz: np.ndarray,
        r_weights: np.ndarray,
        floors_mhz: np.ndarray,
        f_max_mhz: np.ndarray,
    ) -> MpcSolution:
        """Solve one period's MPC problem.

        Parameters
        ----------
        error_w:
            ``p(k) - P_s`` (note sign: positive = over budget).
        f_now_mhz:
            Current frequency command vector ``f(k)``.
        a_w_per_mhz:
            Identified channel gains ``A``.
        r_weights:
            Per-channel control-penalty weights from the weight assigner.
        floors_mhz / f_max_mhz:
            Box bounds on every intermediate frequency (floors include SLO
            lower bounds).
        """
        n, cfg = self.n, self.config
        for name, arr in (
            ("f_now_mhz", f_now_mhz), ("a_w_per_mhz", a_w_per_mhz),
            ("r_weights", r_weights), ("floors_mhz", floors_mhz),
            ("f_max_mhz", f_max_mhz),
        ):
            if np.asarray(arr).shape != (n,):
                raise ConfigurationError(f"{name} must have shape ({n},)")
        if np.any(floors_mhz > f_max_mhz + 1e-9):
            raise ConfigurationError("floors exceed maxima — infeasible box")

        a = np.asarray(a_w_per_mhz, dtype=np.float64)
        r = np.asarray(r_weights, dtype=np.float64)
        g0 = np.asarray(f_now_mhz, dtype=np.float64) - np.asarray(floors_mhz)
        h, ap, q_row, p_map = self._assemble(a, r)
        b = error_w * q_row + p_map @ g0

        d_unc = np.linalg.solve(h, -b)
        if cfg.solver == "analytic":
            d = self._clip_trajectory(d_unc, f_now_mhz, floors_mhz, f_max_mhz)
            cost = float(d @ h @ d + 2 * b @ d)
            return self._solution(d, cost, "analytic", True, 0)
        return self._solve_slsqp(h, b, d_unc, f_now_mhz, floors_mhz, f_max_mhz)

    # -- solvers -----------------------------------------------------------------

    def _cumulative(self, d_flat: np.ndarray) -> np.ndarray:
        """Cumulative frequency offsets after each move, shape (M, N)."""
        traj = d_flat.reshape(self.config.control_horizon, self.n)
        return np.cumsum(traj, axis=0)

    def _clip_trajectory(
        self,
        d_flat: np.ndarray,
        f_now: np.ndarray,
        floors: np.ndarray,
        f_max: np.ndarray,
    ) -> np.ndarray:
        """Project the unconstrained trajectory into the box, move by move."""
        cfg = self.config
        traj = d_flat.reshape(cfg.control_horizon, self.n).copy()
        f = f_now.astype(np.float64).copy()
        for m in range(cfg.control_horizon):
            step = traj[m]
            if cfg.max_step_mhz is not None:
                np.clip(step, -cfg.max_step_mhz, cfg.max_step_mhz, out=step)
            target = np.clip(f + step, floors, f_max)
            traj[m] = target - f
            f = target
        return traj.ravel()

    def _solve_slsqp(
        self,
        h: np.ndarray,
        b: np.ndarray,
        d_start: np.ndarray,
        f_now: np.ndarray,
        floors: np.ndarray,
        f_max: np.ndarray,
    ) -> MpcSolution:
        cfg = self.config
        n, m_hor = self.n, cfg.control_horizon

        def cost(d):
            return float(d @ h @ d + 2.0 * b @ d)

        def grad(d):
            return 2.0 * (h @ d + b)

        # Inequalities g(D) >= 0: for each move m, f_now + cum_m within box.
        def ineq(d):
            cum = self._cumulative(d)  # (M, N)
            f_traj = f_now[None, :] + cum
            return np.concatenate([
                (f_traj - floors[None, :]).ravel(),
                (f_max[None, :] - f_traj).ravel(),
            ])

        # Jacobian of the inequalities is constant for a fixed (n, M);
        # hoisted to __init__.
        ineq_jac = self._ineq_jac

        bounds = None
        if cfg.max_step_mhz is not None:
            bounds = [(-cfg.max_step_mhz, cfg.max_step_mhz)] * (n * m_hor)

        x0 = self._clip_trajectory(d_start, f_now, floors, f_max)
        res = minimize(
            cost,
            x0=x0,
            jac=grad,
            method="SLSQP",
            bounds=bounds,
            constraints=[{"type": "ineq", "fun": ineq, "jac": lambda d: ineq_jac}],
            options={"maxiter": cfg.slsqp_maxiter, "ftol": 1e-9},
        )
        if not np.all(np.isfinite(res.x)):
            raise SolverError(f"SLSQP returned non-finite trajectory: {res.message}")
        d = self._clip_trajectory(res.x, f_now, floors, f_max)  # enforce box exactly
        return self._solution(d, float(res.fun), "slsqp", bool(res.success),
                              int(res.get("nit", 0)))

    def _solution(
        self, d_flat: np.ndarray, cost: float, solver: str, converged: bool, nit: int
    ) -> MpcSolution:
        traj = d_flat.reshape(self.config.control_horizon, self.n)
        return MpcSolution(
            d0_mhz=traj[0].copy(),
            trajectory_mhz=traj.copy(),
            cost=cost,
            solver=solver,
            converged=converged,
            n_iterations=nit,
        )


def unconstrained_gains(
    a_w_per_mhz: np.ndarray,
    r_weights: np.ndarray,
    config: MpcConfig = MpcConfig(),
) -> tuple[np.ndarray, np.ndarray]:
    """Linear feedback gains of the unconstrained MPC (Section 4.4).

    The unconstrained minimizer is ``D* = -H^{-1} (e * Ap'Q1 + P_map g0)``;
    its first move is therefore linear in the tracking error and the
    frequency offset::

        d(k) = -K_e * e(k) - K_f * (f(k) - f_min)

    Returns ``(K_e, K_f)`` with shapes ``(N,)`` and ``(N, N)``.
    """
    a = np.asarray(a_w_per_mhz, dtype=np.float64)
    r = np.asarray(r_weights, dtype=np.float64)
    if a.ndim != 1 or a.shape != r.shape:
        raise ConfigurationError("a_w_per_mhz and r_weights must be aligned 1-D")
    n = a.shape[0]
    mpc = MimoPowerMpc(n, config)
    h, ap, q_row, p_map = mpc._assemble(a, r)
    h_inv = np.linalg.inv(h)
    k_e_full = h_inv @ q_row
    k_f_full = h_inv @ p_map
    return k_e_full[:n].copy(), k_f_full[:n, :].copy()
