"""High-level CapGPU assembly: identification -> models -> controller.

The façade used by experiments and examples. Given a scenario simulation it
performs the paper's offline phase (system identification of the power
model, Eq. 3-5; optionally fitting the per-task latency models, Eq. 8) and
wires up the :class:`~repro.core.controller.CapGpuController` with weight
assignment and SLO management. It also derives the subsystem gains the
baseline controllers need for pole placement, so every strategy in a
comparison works from the *same* identified model — as in the paper, where
all control-theoretic baselines share the identification step.
"""

from __future__ import annotations

import numpy as np

from ..control.watchdog import SafeModeWatchdog, WatchdogConfig
from ..errors import ConfigurationError
from ..sim.engine import ServerSimulation
from ..sysid.identifier import identify_latency_model, identify_power_model
from ..sysid.least_squares import PowerModelFit
from .controller import CapGpuController
from .mpc import MpcConfig
from .slo import SloManager, TaskLatencyModel
from .weights import WeightAssigner

__all__ = ["build_capgpu", "slo_manager_from_sim", "group_gains"]


def group_gains(
    model: PowerModelFit,
    cpu_channels: tuple[int, ...],
    gpu_channels: tuple[int, ...],
) -> tuple[float, float]:
    """Aggregate (CPU, GPU) gains for the baselines' pole placement.

    A shared frequency command moving a whole group sees the *sum* of that
    group's identified per-channel gains.
    """
    a = model.a_w_per_mhz
    cpu_gain = float(np.sum(a[list(cpu_channels)])) if cpu_channels else 0.0
    gpu_gain = float(np.sum(a[list(gpu_channels)])) if gpu_channels else 0.0
    return cpu_gain, gpu_gain


def slo_manager_from_sim(
    sim: ServerSimulation,
    latency_from: str = "spec",
    ident_sim: ServerSimulation | None = None,
    strict: bool = False,
    headroom: float = 0.9,
) -> SloManager:
    """Build the SLO manager for a scenario's GPU tasks.

    ``latency_from="spec"`` uses the workload specs' (e_min, gamma) directly
    (the deployment case where the operator profiled the model offline);
    ``"fit"`` runs the Fig. 2(b) clock sweep on ``ident_sim`` and uses the
    fitted parameters — closer to the paper's methodology, and what the
    controller would have on unknown workloads.
    """
    if latency_from not in ("spec", "fit"):
        raise ConfigurationError("latency_from must be 'spec' or 'fit'")
    task_models: dict[int, TaskLatencyModel] = {}
    for g, pipe in enumerate(sim.pipelines):
        if pipe is None:
            continue
        chan = sim.gpu_channels[g]
        if latency_from == "spec":
            task_models[chan] = TaskLatencyModel.from_spec(pipe.spec)
        else:
            if ident_sim is None:
                raise ConfigurationError("latency_from='fit' requires ident_sim")
            fit, _, _ = identify_latency_model(ident_sim, g)
            task_models[chan] = TaskLatencyModel.from_fit(fit)
    return SloManager(task_models, strict=strict, headroom=headroom)


def build_capgpu(
    sim: ServerSimulation,
    model: PowerModelFit | None = None,
    ident_sim: ServerSimulation | None = None,
    mpc_config: MpcConfig = MpcConfig(),
    weights: WeightAssigner | None = None,
    with_slo: bool = True,
    latency_from: str = "spec",
    online_adaptation: bool = False,
    points_per_channel: int = 6,
    watchdog: WatchdogConfig | bool | None = None,
):
    """Assemble a CapGPU controller for scenario ``sim``.

    Parameters
    ----------
    sim:
        The scenario the controller will run on (provides structure: channel
        layout, task specs).
    model:
        Pre-identified power model. If ``None``, identification runs on
        ``ident_sim`` (which must then be a *separate* instance of the same
        scenario, so the target run starts from a clean state).
    ident_sim:
        Scenario instance to burn for system identification.
    mpc_config / weights / online_adaptation:
        Controller knobs (see :class:`CapGpuController`).
    with_slo:
        Attach the SLO manager (Eq. 10b-c). Without it CapGPU is a pure
        power tracker.
    latency_from:
        ``"spec"`` or ``"fit"`` (see :func:`slo_manager_from_sim`).
    points_per_channel:
        Excitation points per channel for identification.
    watchdog:
        ``True`` (default policy) or a :class:`WatchdogConfig` wraps the
        controller in a :class:`SafeModeWatchdog` — the graceful-degradation
        backstop that steps to minimum frequencies after sustained cap
        violations and hands control back once the loop re-converges. The
        CapGPU strategy is then reachable as ``controller.inner``.
    """
    if model is None:
        if ident_sim is None:
            raise ConfigurationError("provide either a model or an ident_sim")
        dataset = identify_power_model(
            ident_sim, points_per_channel=points_per_channel
        )
        model = dataset.fit
    if model.n_channels != sim.server.n_channels:
        raise ConfigurationError(
            f"model has {model.n_channels} channels, scenario has "
            f"{sim.server.n_channels}"
        )
    slo_mgr = (
        slo_manager_from_sim(sim, latency_from=latency_from, ident_sim=ident_sim)
        if with_slo
        else None
    )
    controller = CapGpuController(
        model=model,
        mpc_config=mpc_config,
        weights=weights,
        slo_manager=slo_mgr,
        online_adaptation=online_adaptation,
    )
    if watchdog:
        cfg = watchdog if isinstance(watchdog, WatchdogConfig) else WatchdogConfig()
        return SafeModeWatchdog(controller, cfg)
    return controller
