"""Closed-loop stability analysis under model mismatch (Section 4.4).

The paper argues stability as follows: the unconstrained finite-horizon MPC
is a *linear* control law, so substituting it into the *actual* plant
(whose gains ``A' = g o A`` deviate from the identified ``A`` by unknown
factors ``g``) yields a linear closed loop whose poles decide convergence.

With the law ``d(k) = -K_e e(k) - K_f (f(k) - f_min)`` from
:func:`repro.core.mpc.unconstrained_gains` and the true plant
``e(k+1) = e(k) + A' d(k)``, the composite state ``x = [e; f - f_min]``
evolves as::

    x(k+1) = M x(k),    M = [[1 - A'K_e,  -A' K_f ],
                            [   -K_e  ,  I - K_f ]]

``M`` always carries **one structural eigenvalue at exactly 1**: the fixed
points of the loop form a one-dimensional manifold (every state with
``d = 0``, i.e. ``K_e e + K_f (f - f_min) = 0``) — the loop converges *to a
point on that manifold*, not to the origin. Convergence therefore requires
every **other** eigenvalue to lie strictly inside the unit circle. The
dominant non-structural mode is the error mode, whose pole is (to first
order) the paper's scalar pole ``1 - sum_i g_i A_i K_e,i``.

On the manifold ``K_e e* = -K_f (f* - f_min)``; because the control-penalty
weights ``R`` are orders of magnitude below the tracking weight ``Q``, the
residual error ``e*`` is negligible (validated empirically in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .mpc import MpcConfig, unconstrained_gains

__all__ = [
    "closed_loop_matrix",
    "non_structural_radius",
    "error_mode_pole",
    "is_stable",
    "GainSweepResult",
    "stable_gain_range",
]

#: Tolerance for recognizing the structural unit eigenvalue.
_UNIT_TOL = 1e-6


def closed_loop_matrix(
    a_true: np.ndarray, k_e: np.ndarray, k_f: np.ndarray
) -> np.ndarray:
    """Composite closed-loop matrix for true gains ``a_true``."""
    a = np.asarray(a_true, dtype=np.float64)
    k_e = np.asarray(k_e, dtype=np.float64)
    k_f = np.asarray(k_f, dtype=np.float64)
    n = a.shape[0]
    if k_e.shape != (n,) or k_f.shape != (n, n):
        raise ConfigurationError("gain shapes inconsistent with channel count")
    m = np.zeros((n + 1, n + 1))
    m[0, 0] = 1.0 - a @ k_e
    m[0, 1:] = -(a @ k_f)
    m[1:, 0] = -k_e
    m[1:, 1:] = np.eye(n) - k_f
    return m


def non_structural_radius(matrix: np.ndarray) -> float:
    """Largest eigenvalue magnitude excluding one structural unit eigenvalue.

    Exactly one eigenvalue within ``_UNIT_TOL`` of 1 is discounted (the
    equilibrium manifold); if none is found — e.g. mismatch shifted it —
    the plain spectral radius is returned, which is conservative.
    """
    mags = np.sort(np.abs(np.linalg.eigvals(matrix)))[::-1]
    near_unit = np.where(np.abs(mags - 1.0) <= _UNIT_TOL)[0]
    if near_unit.size == 0:
        return float(mags[0])
    drop = int(near_unit[0])  # discount a single unit eigenvalue
    kept = np.delete(mags, drop)
    return float(kept[0]) if kept.size else 0.0


def error_mode_pole(
    a_nominal: np.ndarray,
    gains: np.ndarray,
    r_weights: np.ndarray,
    config: MpcConfig = MpcConfig(),
) -> float:
    """The paper's scalar pole ``1 - sum_i g_i A_i K_e,i``.

    First-order location of the power-error mode under mismatch ``g``;
    matches the exact eigenvalue when the control penalty is small.
    """
    a_nom = np.asarray(a_nominal, dtype=np.float64)
    g = np.asarray(gains, dtype=np.float64)
    if g.shape != a_nom.shape:
        raise ConfigurationError("gains must match the channel count")
    k_e, _ = unconstrained_gains(a_nom, r_weights, config)
    return float(1.0 - (a_nom * g) @ k_e)


def is_stable(
    a_nominal: np.ndarray,
    gains: np.ndarray,
    r_weights: np.ndarray,
    config: MpcConfig = MpcConfig(),
    margin: float = 1e-7,
) -> bool:
    """True if the mismatched closed loop converges to its equilibrium manifold.

    ``a_nominal`` is the model the controller was designed with; ``gains``
    are the per-channel true/nominal mismatch factors ``g_i``.
    """
    a_nom = np.asarray(a_nominal, dtype=np.float64)
    g = np.asarray(gains, dtype=np.float64)
    if g.shape != a_nom.shape:
        raise ConfigurationError("gains must match the channel count")
    k_e, k_f = unconstrained_gains(a_nom, r_weights, config)
    m = closed_loop_matrix(a_nom * g, k_e, k_f)
    return non_structural_radius(m) < 1.0 - margin


@dataclass(frozen=True)
class GainSweepResult:
    """Outcome of a scalar gain-mismatch sweep (``A' = g * A``)."""

    g_values: np.ndarray
    radii: np.ndarray  # non-structural spectral radius at each g

    @property
    def stable_mask(self) -> np.ndarray:
        return self.radii < 1.0

    def stable_interval(self) -> tuple[float, float]:
        """Largest contiguous stable interval containing g = 1.

        This is the "derived bound" of Section 4.4: the closed loop is
        guaranteed stable for any uniform gain variation inside it.
        Raises if the nominal design itself (g = 1) is unstable.
        """
        idx_one = int(np.argmin(np.abs(self.g_values - 1.0)))
        if not self.stable_mask[idx_one]:
            raise ConfigurationError("nominal closed loop is unstable")
        lo = idx_one
        while lo > 0 and self.stable_mask[lo - 1]:
            lo -= 1
        hi = idx_one
        while hi < len(self.g_values) - 1 and self.stable_mask[hi + 1]:
            hi += 1
        return float(self.g_values[lo]), float(self.g_values[hi])


def stable_gain_range(
    a_nominal: np.ndarray,
    r_weights: np.ndarray,
    config: MpcConfig = MpcConfig(),
    g_min: float = 0.05,
    g_max: float = 6.0,
    n_points: int = 240,
) -> GainSweepResult:
    """Sweep a scalar mismatch ``A' = g * A`` and record closed-loop radii.

    The paper's bound-derivation procedure made executable: the returned
    :meth:`GainSweepResult.stable_interval` is the range of uniform gain
    variation for which the controller provably converges.
    """
    if g_min <= 0 or g_max <= g_min:
        raise ConfigurationError("need 0 < g_min < g_max")
    a_nom = np.asarray(a_nominal, dtype=np.float64)
    k_e, k_f = unconstrained_gains(a_nom, r_weights, config)
    gs = np.linspace(g_min, g_max, n_points)
    radii = np.empty_like(gs)
    for i, g in enumerate(gs):
        radii[i] = non_structural_radius(closed_loop_matrix(a_nom * g, k_e, k_f))
    return GainSweepResult(g_values=gs, radii=radii)
