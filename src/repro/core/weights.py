"""Throughput-driven weight assignment (the paper's core performance idea).

Section 1/4.3: CapGPU "monitors the inference throughput of each GPU and the
CPU in real time and gives higher weights to CPU/GPU with higher throughput,
so that they can run at higher frequencies", implemented "by normalizing and
inverting their throughput" inside the control penalty of Eq. 9.

Eq. 9's second term penalizes ``||f - f_min||^2_R`` — distance *above* the
minimum frequency. A device is free to run fast exactly when its penalty
weight ``R_j`` is **small**. So the narrative "weight" (priority ``w_j``,
the normalized throughput) and the cost-function weight ``R_j`` are
inverses: busy device -> high ``w_j`` -> small ``R_j`` -> keeps frequency;
idle device -> low ``w_j`` -> large ``R_j`` -> throttled first. This module
computes ``R_j`` from the monitors' normalized throughputs.

Two mappings are provided (ablated in ``benchmarks/test_bench_ablation.py``):

* ``"inverse"`` (default, the paper's wording): ``R_j ~ 1 / (w_j + eps)``,
  renormalized so the mean penalty equals ``r_scale`` — renormalization
  keeps the MPC Hessian's conditioning independent of absolute throughput;
* ``"uniform"``: all ``R_j = r_scale`` (weight assignment disabled; this is
  the ablation arm that shows where CapGPU's throughput edge comes from).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..control.base import ControlObservation
from ..units import require_positive

__all__ = ["WeightAssigner"]


class WeightAssigner:
    """Maps normalized throughputs to control-penalty weights ``R``.

    Parameters
    ----------
    r_scale:
        Mean penalty magnitude. Units are (W^2 / MHz^2) relative to a unit
        tracking weight Q; small values (default 5e-5) keep the power-
        tracking objective dominant while still shaping the frequency
        distribution across devices.
    eps:
        Floor added to normalized throughput before inversion, bounding the
        penalty ratio between the busiest and idlest device to
        ``(1 + eps) / eps``.
    mode:
        ``"inverse"`` or ``"uniform"`` (see module docstring).
    """

    def __init__(self, r_scale: float = 5e-5, eps: float = 0.1, mode: str = "inverse"):
        self.r_scale = require_positive(r_scale, "r_scale")
        self.eps = require_positive(eps, "eps")
        if mode not in ("inverse", "uniform"):
            raise ConfigurationError(f"mode must be 'inverse' or 'uniform', got {mode!r}")
        self.mode = mode

    def priorities(self, obs: ControlObservation) -> np.ndarray:
        """Narrative weights ``w_j``: normalized throughput, clipped to [0, 1]."""
        return np.clip(obs.throughput_norm, 0.0, 1.0)

    def penalty_weights(self, obs: ControlObservation) -> np.ndarray:
        """Per-channel ``R_j`` for Eq. 9's control penalty."""
        n = obs.n_channels
        if self.mode == "uniform":
            return np.full(n, self.r_scale)
        w = self.priorities(obs)
        raw = 1.0 / (w + self.eps)
        # Renormalize to mean r_scale so conditioning is load-independent.
        return self.r_scale * raw / raw.mean()
