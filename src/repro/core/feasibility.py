"""Set-point feasibility checks (the Section 4.4 assumption, executable).

The paper assumes "there exists at least one combination of CPU and GPU
frequency levels that achieves p(k) = P_s"; when none exists, no frequency
controller can enforce the cap and other mechanisms (memory throttling,
admission control) must engage. This module predicts the achievable power
interval from the *identified* model — which is what a deployed controller
actually knows — and classifies set points against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InfeasibleSetPointError
from ..sysid.least_squares import PowerModelFit

__all__ = ["predicted_power_range", "FeasibilityReport", "check_set_point"]


def predicted_power_range(
    model: PowerModelFit, f_min_mhz: np.ndarray, f_max_mhz: np.ndarray
) -> tuple[float, float]:
    """Model-predicted achievable (min, max) power over the frequency box.

    With non-negative identified gains the extremes sit at the box corners;
    negative gains (possible from noisy identification) are handled by
    picking the minimizing/maximizing corner per channel.
    """
    f_min = np.asarray(f_min_mhz, dtype=np.float64)
    f_max = np.asarray(f_max_mhz, dtype=np.float64)
    if f_min.shape != f_max.shape or f_min.shape != model.a_w_per_mhz.shape:
        raise ConfigurationError("frequency bounds must match the model channels")
    if np.any(f_min > f_max):
        raise ConfigurationError("f_min exceeds f_max on some channel")
    a = model.a_w_per_mhz
    lo = float(np.where(a >= 0, f_min, f_max) @ a + model.c_w)
    hi = float(np.where(a >= 0, f_max, f_min) @ a + model.c_w)
    return lo, hi


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a set-point feasibility check."""

    set_point_w: float
    p_min_w: float
    p_max_w: float
    feasible: bool
    margin_w: float

    @property
    def headroom_w(self) -> float:
        """Distance from the set point to the nearest envelope edge
        (negative when infeasible)."""
        if self.set_point_w < self.p_min_w:
            return self.set_point_w - self.p_min_w
        if self.set_point_w > self.p_max_w:
            return self.p_max_w - self.set_point_w
        return min(self.set_point_w - self.p_min_w, self.p_max_w - self.set_point_w)


def check_set_point(
    model: PowerModelFit,
    f_min_mhz: np.ndarray,
    f_max_mhz: np.ndarray,
    set_point_w: float,
    margin_w: float = 0.0,
    raise_on_infeasible: bool = False,
) -> FeasibilityReport:
    """Classify ``set_point_w`` against the model-predicted envelope.

    ``margin_w`` shrinks the envelope on both sides (require the set point
    to be reachable with room for disturbances, not just on the boundary).
    """
    if margin_w < 0:
        raise ConfigurationError("margin_w must be >= 0")
    lo, hi = predicted_power_range(model, f_min_mhz, f_max_mhz)
    feasible = (lo + margin_w) <= set_point_w <= (hi - margin_w)
    if not feasible and raise_on_infeasible:
        raise InfeasibleSetPointError(set_point_w, lo, hi)
    return FeasibilityReport(
        set_point_w=float(set_point_w),
        p_min_w=lo,
        p_max_w=hi,
        feasible=bool(feasible),
        margin_w=float(margin_w),
    )
