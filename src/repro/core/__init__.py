"""CapGPU core: the MIMO MPC power-capping framework (the paper's contribution).

Components map to the paper's Section 4:

* :class:`MimoPowerMpc` — the constrained MPC of Eq. 9-10 (Section 4.3);
* :class:`WeightAssigner` — throughput-driven weight assignment;
* :class:`SloManager` — latency SLOs as frequency floors (Eq. 10b-c);
* :class:`CapGpuController` — the closed-loop strategy of Figure 1;
* :mod:`repro.core.stability` — the Section 4.4 mismatch analysis;
* :func:`build_capgpu` — identification-to-controller assembly.
"""

from .capgpu import build_capgpu, group_gains, slo_manager_from_sim
from .controller import CapGpuController
from .feasibility import FeasibilityReport, check_set_point, predicted_power_range
from .mpc import MimoPowerMpc, MpcConfig, MpcSolution, unconstrained_gains
from .slo import SloManager, TaskLatencyModel
from .stability import (
    GainSweepResult,
    closed_loop_matrix,
    error_mode_pole,
    is_stable,
    non_structural_radius,
    stable_gain_range,
)
from .weights import WeightAssigner

__all__ = [
    "CapGpuController",
    "MimoPowerMpc",
    "MpcConfig",
    "MpcSolution",
    "unconstrained_gains",
    "SloManager",
    "TaskLatencyModel",
    "WeightAssigner",
    "build_capgpu",
    "group_gains",
    "check_set_point",
    "predicted_power_range",
    "FeasibilityReport",
    "slo_manager_from_sim",
    "closed_loop_matrix",
    "non_structural_radius",
    "error_mode_pole",
    "is_stable",
    "stable_gain_range",
    "GainSweepResult",
]
