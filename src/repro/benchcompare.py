"""Benchmark regression harness: emit, load, and diff bench JSON files.

The bench suite (``pytest benchmarks/ --benchmark-only``) regenerates every
paper artifact; with ``--bench-json-dir`` its conftest writes one
``BENCH_<sha>.json`` per session recording, per bench test, the wall time and
the headline accuracy metrics filed in ``benchmark.extra_info``. This module
owns that file's schema and the comparison logic behind
``repro bench-compare``: diff a candidate file against a committed baseline
and exit nonzero when a wall-time or metric drift crosses the configured
thresholds.

Wall times are hardware-dependent — CI passes a loose ``--wall-threshold``
when comparing across machines — while metrics are seeded and deterministic,
so tight metric thresholds are meaningful everywhere.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from .atomicio import atomic_write_text
from .errors import ExperimentError

__all__ = [
    "BENCH_SCHEMA",
    "bench_payload",
    "write_bench_json",
    "load_bench",
    "resolve_bench_path",
    "ComparisonRow",
    "BenchComparison",
    "compare_bench",
    "git_sha",
]

BENCH_SCHEMA = 1


def git_sha(repo_root: str | Path | None = None, default: str = "nosha") -> str:
    """Short git SHA of ``repo_root`` (cwd by default), or ``default``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def bench_payload(sha: str, entries: dict) -> dict:
    """Assemble the on-disk payload for a bench session.

    ``entries`` maps a bench name (test id) to
    ``{"wall_s": float, "metrics": {name: number}}``.
    """
    return {
        "schema": BENCH_SCHEMA,
        "sha": sha,
        "created_unix": time.time(),
        "entries": {
            name: {
                "wall_s": float(rec["wall_s"]),
                "metrics": dict(rec.get("metrics", {})),
            }
            for name, rec in sorted(entries.items())
        },
    }


def write_bench_json(directory: str | Path, sha: str, entries: dict) -> Path:
    """Write ``BENCH_<sha>.json`` into ``directory`` and return its path."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{sha}.json"
    atomic_write_text(path, json.dumps(bench_payload(sha, entries), indent=2, sort_keys=True))
    return path


def resolve_bench_path(path: str | Path) -> Path:
    """Accept a bench file or a directory holding ``BENCH_*.json`` files.

    Given a directory (the shape of a CI artifact download), picks the most
    recently modified ``BENCH_*.json`` inside it.
    """
    p = Path(path)
    if p.is_dir():
        candidates = sorted(p.glob("BENCH_*.json"), key=lambda f: f.stat().st_mtime)
        if not candidates:
            raise ExperimentError(f"no BENCH_*.json files in directory {p}")
        return candidates[-1]
    return p


def load_bench(path: str | Path) -> dict:
    """Load and validate one bench JSON file."""
    resolved = resolve_bench_path(path)
    try:
        payload = json.loads(resolved.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ExperimentError(f"bench file not found: {resolved}") from None
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"bench file {resolved} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise ExperimentError(
            f"bench file {resolved} has unsupported schema "
            f"{payload.get('schema')!r} (expected {BENCH_SCHEMA})"
        )
    if not isinstance(payload.get("entries"), dict):
        raise ExperimentError(f"bench file {resolved} has no 'entries' mapping")
    return payload


@dataclass(frozen=True)
class ComparisonRow:
    """One compared quantity: a bench's wall time or one of its metrics."""

    bench: str
    quantity: str  # "wall_s" or "metric:<name>"
    baseline: float
    candidate: float
    rel_change: float
    regressed: bool


@dataclass
class BenchComparison:
    """Result of diffing a candidate bench file against a baseline."""

    rows: list[ComparisonRow] = field(default_factory=list)
    missing_in_candidate: list[str] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    wall_threshold: float = 0.0
    metric_threshold: float = 0.0

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench-compare: {len(self.rows)} quantities, "
            f"wall threshold +{self.wall_threshold:.0%}, "
            f"metric threshold ±{self.metric_threshold:.0%}",
        ]
        for row in self.rows:
            if not row.regressed and abs(row.rel_change) < 1e-12:
                continue
            marker = "REGRESSION" if row.regressed else "ok"
            lines.append(
                f"  [{marker:>10s}] {row.bench} {row.quantity}: "
                f"{row.baseline:.6g} -> {row.candidate:.6g} "
                f"({row.rel_change:+.1%})"
            )
        if self.missing_in_candidate:
            lines.append(
                f"  missing in candidate: {', '.join(self.missing_in_candidate)}"
            )
        if self.missing_in_baseline:
            lines.append(
                f"  new benches (not in baseline): "
                f"{', '.join(self.missing_in_baseline)}"
            )
        n = len(self.regressions)
        lines.append("PASS: no regressions" if not n else f"FAIL: {n} regression(s)")
        return "\n".join(lines)


def _rel_change(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def compare_bench(
    baseline: dict,
    candidate: dict,
    wall_threshold: float = 0.20,
    metric_threshold: float = 0.05,
) -> BenchComparison:
    """Diff two bench payloads.

    A *wall-time* regression is a candidate slower than
    ``baseline * (1 + wall_threshold)`` — getting faster never fails. A
    *metric* regression is a relative drift beyond ``metric_threshold`` in
    either direction: the benches record accuracy-style headline numbers
    whose direction of "better" varies, and any unexplained drift in a
    seeded, deterministic pipeline is a change worth failing on.
    """
    if wall_threshold < 0 or metric_threshold < 0:
        raise ExperimentError("thresholds must be >= 0")
    cmp = BenchComparison(
        wall_threshold=wall_threshold, metric_threshold=metric_threshold
    )
    base_entries = baseline["entries"]
    cand_entries = candidate["entries"]
    common = set(base_entries) & set(cand_entries)
    if (base_entries or cand_entries) and not common:
        # Disjoint key sets mean the two files benchmark different things
        # (renamed suite, wrong artifact, stale baseline) — comparing zero
        # quantities would vacuously PASS, so refuse instead.
        raise ExperimentError(
            "bench files share no bench keys — comparing them would check "
            "nothing. Baseline keys: "
            f"{sorted(base_entries) or '(none)'}; candidate keys: "
            f"{sorted(cand_entries) or '(none)'}. Regenerate the baseline "
            "with the current suite (see benchmarks/README note in README.md)."
        )
    cmp.missing_in_candidate = sorted(set(base_entries) - common)
    cmp.missing_in_baseline = sorted(set(cand_entries) - common)
    for name in sorted(common):
        base, cand = base_entries[name], cand_entries[name]
        for role, rec in (("baseline", base), ("candidate", cand)):
            if "wall_s" not in rec:
                raise ExperimentError(
                    f"{role} entry {name!r} has no 'wall_s' field — the file "
                    "was not produced by the bench suite's conftest "
                    "(pytest benchmarks/ --benchmark-only with "
                    "--bench-json-dir)"
                )
        wall_rel = _rel_change(base["wall_s"], cand["wall_s"])
        cmp.rows.append(ComparisonRow(
            bench=name,
            quantity="wall_s",
            baseline=float(base["wall_s"]),
            candidate=float(cand["wall_s"]),
            rel_change=wall_rel,
            regressed=wall_rel > wall_threshold,
        ))
        base_metrics = base.get("metrics", {})
        cand_metrics = cand.get("metrics", {})
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            b, c = base_metrics[metric], cand_metrics[metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            rel = _rel_change(float(b), float(c))
            cmp.rows.append(ComparisonRow(
                bench=name,
                quantity=f"metric:{metric}",
                baseline=float(b),
                candidate=float(c),
                rel_change=rel,
                regressed=abs(rel) > metric_threshold,
            ))
    return cmp
