"""Benchmark regression harness: emit, load, and diff bench JSON files.

The bench suite (``pytest benchmarks/ --benchmark-only``) regenerates every
paper artifact; with ``--bench-json-dir`` its conftest writes one
``BENCH_<sha>.json`` per session recording, per bench test, the wall time and
the headline accuracy metrics filed in ``benchmark.extra_info``. This module
owns that file's schema and the comparison logic behind
``repro bench-compare``: diff a candidate file against a committed baseline
and exit nonzero when a wall-time or metric drift crosses the configured
thresholds.

Schema 2 tracks **per-engine baseline namespaces**: the payload's
``engines`` mapping holds one independent entry set per execution engine
(``reference`` — bit-identical ground truth — and ``fast`` — the
relaxed-semantics engine of :mod:`repro.fast`), so the two engines' wall
times and metrics are gated separately and a fast-engine speedup can never
mask a reference regression (or vice versa). Schema-1 files load as the
``reference`` namespace, so committed baselines keep working.

Wall times are hardware-dependent — CI passes a loose ``--wall-threshold``
when comparing across machines — while metrics are seeded and deterministic,
so tight metric thresholds are meaningful everywhere.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from .atomicio import atomic_write_text
from .errors import ExperimentError

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_ENGINE",
    "bench_payload",
    "write_bench_json",
    "load_bench",
    "resolve_bench_path",
    "ComparisonRow",
    "BenchComparison",
    "compare_bench",
    "git_sha",
]

BENCH_SCHEMA = 2

#: The namespace schema-1 files (and engine-less writers) land in.
DEFAULT_ENGINE = "reference"


def git_sha(repo_root: str | Path | None = None, default: str = "nosha") -> str:
    """Short git SHA of ``repo_root`` (cwd by default), or ``default``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def _normalized_entries(entries: dict) -> dict:
    return {
        name: {
            "wall_s": float(rec["wall_s"]),
            "metrics": dict(rec.get("metrics", {})),
        }
        for name, rec in sorted(entries.items())
    }


def bench_payload(
    sha: str, entries: dict | None = None, *, engines: dict | None = None
) -> dict:
    """Assemble the on-disk payload for a bench session.

    Pass either ``entries`` (bench name -> ``{"wall_s": ..., "metrics":
    {...}}``; filed under the ``reference`` namespace) or ``engines``
    (engine name -> entries mapping) — exactly one.
    """
    if (entries is None) == (engines is None):
        raise ExperimentError("bench_payload takes exactly one of entries/engines")
    if engines is None:
        engines = {DEFAULT_ENGINE: entries}
    return {
        "schema": BENCH_SCHEMA,
        "sha": sha,
        "created_unix": time.time(),
        "engines": {
            engine: {"entries": _normalized_entries(engine_entries)}
            for engine, engine_entries in sorted(engines.items())
        },
    }


def write_bench_json(
    directory: str | Path,
    sha: str,
    entries: dict | None = None,
    *,
    engines: dict | None = None,
) -> Path:
    """Write ``BENCH_<sha>.json`` into ``directory`` and return its path."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{sha}.json"
    payload = bench_payload(sha, entries, engines=engines)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))
    return path


def resolve_bench_path(path: str | Path) -> Path:
    """Accept a bench file or a directory holding ``BENCH_*.json`` files.

    Given a directory (the shape of a CI artifact download), picks the most
    recently modified ``BENCH_*.json`` inside it.
    """
    p = Path(path)
    if p.is_dir():
        candidates = sorted(p.glob("BENCH_*.json"), key=lambda f: f.stat().st_mtime)
        if not candidates:
            raise ExperimentError(f"no BENCH_*.json files in directory {p}")
        return candidates[-1]
    return p


def load_bench(path: str | Path) -> dict:
    """Load and validate one bench JSON file (schema 1 or 2).

    Schema-1 files — a flat ``entries`` mapping — normalize to schema 2
    with their entries under the ``reference`` engine namespace.
    """
    resolved = resolve_bench_path(path)
    try:
        payload = json.loads(resolved.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ExperimentError(f"bench file not found: {resolved}") from None
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"bench file {resolved} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") not in (1, BENCH_SCHEMA):
        raise ExperimentError(
            f"bench file {resolved} has unsupported schema "
            f"{payload.get('schema') if isinstance(payload, dict) else payload!r} "
            f"(expected 1 or {BENCH_SCHEMA})"
        )
    if payload["schema"] == 1:
        if not isinstance(payload.get("entries"), dict):
            raise ExperimentError(f"bench file {resolved} has no 'entries' mapping")
        return {
            "schema": BENCH_SCHEMA,
            "sha": payload.get("sha", "nosha"),
            "created_unix": payload.get("created_unix", 0.0),
            "engines": {DEFAULT_ENGINE: {"entries": payload["entries"]}},
        }
    engines = payload.get("engines")
    if not isinstance(engines, dict) or not all(
        isinstance(ns, dict) and isinstance(ns.get("entries"), dict)
        for ns in engines.values()
    ):
        raise ExperimentError(
            f"bench file {resolved} has no 'engines' namespace mapping "
            "(engine name -> {'entries': {...}})"
        )
    return payload


@dataclass(frozen=True)
class ComparisonRow:
    """One compared quantity: a bench's wall time or one of its metrics.

    ``bench`` carries the engine namespace as an ``engine::`` prefix for
    every namespace except ``reference`` (whose names stay bare, matching
    schema-1 output).
    """

    bench: str
    quantity: str  # "wall_s" or "metric:<name>"
    baseline: float
    candidate: float
    rel_change: float
    regressed: bool


@dataclass
class BenchComparison:
    """Result of diffing a candidate bench file against a baseline."""

    rows: list[ComparisonRow] = field(default_factory=list)
    missing_in_candidate: list[str] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    wall_threshold: float = 0.0
    metric_threshold: float = 0.0

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench-compare: {len(self.rows)} quantities, "
            f"wall threshold +{self.wall_threshold:.0%}, "
            f"metric threshold ±{self.metric_threshold:.0%}",
        ]
        for row in self.rows:
            if not row.regressed and abs(row.rel_change) < 1e-12:
                continue
            marker = "REGRESSION" if row.regressed else "ok"
            lines.append(
                f"  [{marker:>10s}] {row.bench} {row.quantity}: "
                f"{row.baseline:.6g} -> {row.candidate:.6g} "
                f"({row.rel_change:+.1%})"
            )
        if self.missing_in_candidate:
            lines.append(
                f"  missing in candidate: {', '.join(self.missing_in_candidate)}"
            )
        if self.missing_in_baseline:
            lines.append(
                f"  new benches (not in baseline): "
                f"{', '.join(self.missing_in_baseline)}"
            )
        n = len(self.regressions)
        lines.append("PASS: no regressions" if not n else f"FAIL: {n} regression(s)")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The comparison as a GitHub-flavored markdown table.

        ``repro bench-compare --summary-md`` appends this to a file — in
        CI, ``$GITHUB_STEP_SUMMARY``, so the per-engine wall/metric deltas
        show on the workflow run page without downloading artifacts.
        """
        n = len(self.regressions)
        verdict = "**PASS** — no regressions" if not n else f"**FAIL** — {n} regression(s)"
        lines = [
            "### bench-compare",
            "",
            f"{len(self.rows)} quantities, wall threshold "
            f"+{self.wall_threshold:.0%}, metric threshold "
            f"±{self.metric_threshold:.0%}: {verdict}",
            "",
            "| status | bench | quantity | baseline | candidate | change |",
            "| --- | --- | --- | ---: | ---: | ---: |",
        ]
        for row in self.rows:
            marker = "REGRESSION" if row.regressed else "ok"
            lines.append(
                f"| {marker} | {row.bench} | {row.quantity} | "
                f"{row.baseline:.6g} | {row.candidate:.6g} | "
                f"{row.rel_change:+.1%} |"
            )
        if self.missing_in_candidate:
            lines += ["", f"Missing in candidate: {', '.join(self.missing_in_candidate)}"]
        if self.missing_in_baseline:
            lines += [
                "",
                f"New benches (not in baseline): {', '.join(self.missing_in_baseline)}",
            ]
        return "\n".join(lines)


def _rel_change(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def _engines_of(payload: dict) -> dict:
    """Engine -> entries for a loaded payload (schema-1 shapes tolerated)."""
    if "engines" in payload:
        return {
            engine: dict(ns.get("entries", {}))
            for engine, ns in payload["engines"].items()
        }
    return {DEFAULT_ENGINE: dict(payload.get("entries", {}))}


def _qualified(engine: str, name: str) -> str:
    return name if engine == DEFAULT_ENGINE else f"{engine}::{name}"


def _disjoint_message(engines: list[str], base_engines: dict, cand_engines: dict) -> str:
    """Per-engine-namespace key listing for the disjoint-keys refusal."""
    parts = ["bench files share no bench keys — comparing them would check nothing."]
    for engine in engines:
        base_keys = ", ".join(sorted(base_engines.get(engine, {}))) or "(none)"
        cand_keys = ", ".join(sorted(cand_engines.get(engine, {}))) or "(none)"
        parts.append(
            f"[{engine}] baseline-only keys: {base_keys}; "
            f"candidate-only keys: {cand_keys}."
        )
    parts.append(
        "Regenerate the baseline with the current suite (see benchmarks/"
        "README note in README.md)."
    )
    return " ".join(parts)


def compare_bench(
    baseline: dict,
    candidate: dict,
    wall_threshold: float = 0.20,
    metric_threshold: float = 0.05,
    engine: str | None = None,
) -> BenchComparison:
    """Diff two bench payloads, per engine namespace.

    A *wall-time* regression is a candidate slower than
    ``baseline * (1 + wall_threshold)`` — getting faster never fails. A
    *metric* regression is a relative drift beyond ``metric_threshold`` in
    either direction: the benches record accuracy-style headline numbers
    whose direction of "better" varies, and any unexplained drift in a
    seeded, deterministic pipeline is a change worth failing on.

    Each engine namespace compares independently — a ``fast``-engine
    speedup can never offset a ``reference`` regression. Pass ``engine`` to
    restrict the comparison to one namespace (CI runs one gate per engine
    with different wall thresholds); the default compares every namespace
    present in either file, reporting namespaces absent from one side
    through the missing lists.
    """
    if wall_threshold < 0 or metric_threshold < 0:
        raise ExperimentError("thresholds must be >= 0")
    cmp = BenchComparison(
        wall_threshold=wall_threshold, metric_threshold=metric_threshold
    )
    base_engines = _engines_of(baseline)
    cand_engines = _engines_of(candidate)
    if engine is not None:
        for role, engines in (("baseline", base_engines), ("candidate", cand_engines)):
            if engine not in engines:
                raise ExperimentError(
                    f"engine namespace {engine!r} missing from the {role} "
                    f"bench file; it has: {sorted(engines) or '(none)'}"
                )
        compared = [engine]
    else:
        compared = sorted(set(base_engines) | set(cand_engines))

    pairs: list[tuple[str, str, dict, dict]] = []
    any_entries = False
    any_common = False
    for eng in compared:
        base_entries = base_engines.get(eng, {})
        cand_entries = cand_engines.get(eng, {})
        any_entries = any_entries or bool(base_entries) or bool(cand_entries)
        common = set(base_entries) & set(cand_entries)
        any_common = any_common or bool(common)
        cmp.missing_in_candidate.extend(
            _qualified(eng, n) for n in sorted(set(base_entries) - common)
        )
        cmp.missing_in_baseline.extend(
            _qualified(eng, n) for n in sorted(set(cand_entries) - common)
        )
        pairs.extend(
            (eng, name, base_entries[name], cand_entries[name])
            for name in sorted(common)
        )
    if any_entries and not any_common:
        # Fully disjoint key sets mean the two files benchmark different
        # things (renamed suite, wrong artifact, stale baseline) — comparing
        # zero quantities would vacuously PASS, so refuse instead, naming
        # the unmatched keys per engine namespace.
        raise ExperimentError(_disjoint_message(compared, base_engines, cand_engines))
    cmp.missing_in_candidate.sort()
    cmp.missing_in_baseline.sort()

    for eng, name, base, cand in pairs:
        label = _qualified(eng, name)
        for role, rec in (("baseline", base), ("candidate", cand)):
            if "wall_s" not in rec:
                raise ExperimentError(
                    f"{role} entry {label!r} has no 'wall_s' field — the file "
                    "was not produced by the bench suite's conftest "
                    "(pytest benchmarks/ --benchmark-only with "
                    "--bench-json-dir)"
                )
        wall_rel = _rel_change(base["wall_s"], cand["wall_s"])
        cmp.rows.append(ComparisonRow(
            bench=label,
            quantity="wall_s",
            baseline=float(base["wall_s"]),
            candidate=float(cand["wall_s"]),
            rel_change=wall_rel,
            regressed=wall_rel > wall_threshold,
        ))
        base_metrics = base.get("metrics", {})
        cand_metrics = cand.get("metrics", {})
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            b, c = base_metrics[metric], cand_metrics[metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            rel = _rel_change(float(b), float(c))
            cmp.rows.append(ComparisonRow(
                bench=label,
                quantity=f"metric:{metric}",
                baseline=float(b),
                candidate=float(c),
                rel_change=rel,
                regressed=abs(rel) > metric_threshold,
            ))
    return cmp
