"""Unit conversions and validation helpers.

Internal convention of the whole package:

* frequencies are **MHz** (``float``) — matches ``nvidia-smi`` output and
  keeps CPU (1000-2400) and GPU (435-1350) knobs on comparable scales, which
  conditions the MPC Hessian far better than mixing GHz and MHz;
* power is **watts**;
* energy is **joules** (RAPL exposes microjoules; the adapter converts);
* time is **seconds**.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import TYPE_CHECKING

from .errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only; keeps runtime numpy-free
    import numpy as np
    import numpy.typing as npt

__all__ = [
    "MHZ_PER_GHZ",
    "ghz_to_mhz",
    "mhz_to_ghz",
    "watts_to_milliwatts",
    "milliwatts_to_watts",
    "joules_to_microjoules",
    "microjoules_to_joules",
    "microjoules_to_joules_array",
    "joules_to_kilojoules",
    "kilojoules_to_joules",
    "seconds_to_milliseconds",
    "milliseconds_to_seconds",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_monotonic",
]

MHZ_PER_GHZ = 1000.0


def ghz_to_mhz(ghz: float) -> float:
    """Convert gigahertz to megahertz."""
    return float(ghz) * MHZ_PER_GHZ


def mhz_to_ghz(mhz: float) -> float:
    """Convert megahertz to gigahertz."""
    return float(mhz) / MHZ_PER_GHZ


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts (NVML reports milliwatts)."""
    return float(watts) * 1e3


def milliwatts_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return float(mw) / 1e3


def joules_to_microjoules(j: float) -> float:
    """Convert joules to microjoules (RAPL counts microjoules)."""
    return float(j) * 1e6


def microjoules_to_joules(uj: float) -> float:
    """Convert microjoules to joules."""
    return float(uj) / 1e6


def microjoules_to_joules_array(uj: npt.NDArray[np.int64]) -> npt.NDArray[np.float64]:
    """Elementwise :func:`microjoules_to_joules` for fleet-axis counters.

    Same division as the scalar converter, so vectorized RAPL windows stay
    bit-identical to the per-server path.
    """
    result: npt.NDArray[np.float64] = uj / 1e6
    return result


def joules_to_kilojoules(j: float) -> float:
    """Convert joules to kilojoules (efficiency metrics report work/kJ)."""
    return float(j) / 1e3


def kilojoules_to_joules(kj: float) -> float:
    """Convert kilojoules to joules."""
    return float(kj) * 1e3


def seconds_to_milliseconds(s: float) -> float:
    """Convert seconds to milliseconds (controller timings report ms)."""
    return float(s) * 1e3


def milliseconds_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(ms) / 1e3


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return v


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    v = float(value)
    if not math.isfinite(v) or v < 0.0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def require_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Validate that ``lo <= value <= hi``."""
    v = float(value)
    if not math.isfinite(v) or v < lo or v > hi:
        raise ConfigurationError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return v


def require_monotonic(values: Iterable[float], name: str) -> list[float]:
    """Validate that ``values`` is non-empty and strictly increasing."""
    out = [float(v) for v in values]
    if not out:
        raise ConfigurationError(f"{name} must be non-empty")
    for a, b in zip(out, out[1:]):
        if not b > a:
            raise ConfigurationError(f"{name} must be strictly increasing, got {out!r}")
    return out
