"""Checkpoint blob format: versioned, schema-checked, digest-verified.

A checkpoint on disk is::

    REPROCKPT1\\n
    <sha256 hex of the pickled body>\\n
    <pickled body bytes>

The body is a plain dict (``format``/``schema_version``/``repro_version``
headers, a human-inspectable ``summary``, and the tagged ``state`` tree
produced by :mod:`repro.checkpoint.state`). The digest line lets ``load``
reject corruption before unpickling; writes go through
:func:`repro.atomicio.atomic_write_bytes`, so a crash mid-save leaves the
previous checkpoint intact rather than a torn file.

Pickle is used only as a byte-exact container for the already-sanitized
tagged tree (primitives, lists, dicts, bytes) — never for live objects,
which is what makes blobs loadable across process restarts.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from .._version import __version__
from ..atomicio import atomic_write_bytes
from ..errors import CheckpointError

__all__ = [
    "FORMAT",
    "SCHEMA_VERSION",
    "MAGIC",
    "build_blob",
    "validate_blob",
    "save_blob",
    "load_blob",
]

FORMAT = "repro-checkpoint"
SCHEMA_VERSION = 1
MAGIC = b"REPROCKPT1"

_REQUIRED_KEYS = ("format", "schema_version", "repro_version", "created", "summary", "state")


def build_blob(state: dict, created: dict, summary: dict) -> dict:
    """Assemble a schema-complete checkpoint body."""
    return {
        "format": FORMAT,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "created": dict(created),
        "summary": dict(summary),
        "state": state,
    }


def validate_blob(blob: object) -> dict:
    """Check the blob against the schema; returns it typed as a dict."""
    if not isinstance(blob, dict):
        raise CheckpointError(f"checkpoint body is {type(blob).__name__}, expected dict")
    missing = [key for key in _REQUIRED_KEYS if key not in blob]
    if missing:
        raise CheckpointError(f"checkpoint body missing keys: {', '.join(missing)}")
    if blob["format"] != FORMAT:
        raise CheckpointError(f"not a repro checkpoint (format={blob['format']!r})")
    if blob["schema_version"] != SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint schema version {blob['schema_version']!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if not isinstance(blob["state"], dict):
        raise CheckpointError("checkpoint state tree is not a dict")
    return blob


def save_blob(path: str | Path, blob: dict) -> Path:
    """Validate and atomically write ``blob`` to ``path``."""
    validate_blob(blob)
    body = pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).hexdigest().encode("ascii")
    return atomic_write_bytes(path, MAGIC + b"\n" + digest + b"\n" + body)


def load_blob(path: str | Path) -> dict:
    """Read, digest-verify, and schema-check a checkpoint file."""
    raw = Path(path).read_bytes()
    magic, _, rest = raw.partition(b"\n")
    if magic != MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    digest, _, body = rest.partition(b"\n")
    actual = hashlib.sha256(body).hexdigest().encode("ascii")
    if digest != actual:
        raise CheckpointError(f"{path}: checkpoint digest mismatch (file corrupt)")
    try:
        blob = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"{path}: checkpoint body does not unpickle: {exc}") from exc
    return validate_blob(blob)
