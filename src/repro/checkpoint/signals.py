"""Cooperative SIGINT/SIGTERM shutdown for checkpointed runs.

Signal handlers must not do real work — flushing a checkpoint involves
fsync and object-graph capture, neither of which is async-signal-safe to
run from an arbitrary bytecode boundary. So the handler only sets a flag;
the run loops (``run_checkpointed``, ``run_sweep``) poll it at their
natural boundaries (engine chunk, job completion), flush a final
checkpoint/journal entry there, and the CLI exits with the conventional
``128 + signum`` code (130 for SIGINT, 143 for SIGTERM) after printing a
structured shutdown event.

A second signal while the first is being honoured raises
``KeyboardInterrupt`` — the operator's escape hatch if the final flush
itself wedges.
"""

from __future__ import annotations

import signal

__all__ = [
    "ShutdownFlag",
    "CheckpointInterrupt",
    "install_signal_handlers",
    "shutdown_event",
]


class CheckpointInterrupt(Exception):
    """A checkpointed run stopped at a boundary to honour a shutdown signal.

    Carries the final checkpoint/journal state so the caller (the CLI) can
    report where the run can be resumed from. Deliberately *not* a
    :class:`~repro.errors.ReproError`: blanket ``except ReproError``
    recovery paths must not swallow an operator's Ctrl-C.
    """

    def __init__(self, signum: int, checkpoint_path=None):
        self.signum = int(signum)
        self.checkpoint_path = checkpoint_path
        super().__init__(f"interrupted by {signal.Signals(signum).name}")

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class ShutdownFlag:
    """Latched shutdown request, settable from a signal handler."""

    def __init__(self):
        self.signum: int | None = None

    def set(self, signum: int) -> None:
        self.signum = int(signum)

    def __bool__(self) -> bool:
        return self.signum is not None

    @property
    def exit_code(self) -> int:
        """Conventional shell exit code (130 SIGINT, 143 SIGTERM)."""
        if self.signum is None:
            raise ValueError("shutdown flag was never set")
        return 128 + self.signum


def install_signal_handlers(flag: ShutdownFlag) -> dict[int, object]:
    """Route SIGINT/SIGTERM into ``flag``; returns the previous handlers.

    The first signal latches the flag so the run can wind down at the next
    checkpoint boundary; a second one raises ``KeyboardInterrupt``
    immediately. Restore the returned handlers with ``signal.signal`` when
    the guarded section ends (the CLI process just exits instead).
    """

    def handler(signum, frame):
        if flag:
            raise KeyboardInterrupt
        flag.set(signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, handler)
    return previous


def shutdown_event(signum: int, checkpoint: str | None = None) -> dict:
    """Structured shutdown record for journals / stderr event streams."""
    event = {
        "event": "shutdown",
        "signal": signal.Signals(signum).name,
        "signum": int(signum),
        "exit_code": 128 + int(signum),
    }
    if checkpoint is not None:
        event["checkpoint"] = str(checkpoint)
    return event
