"""Generic object-graph capture and in-place restore.

The checkpoint subsystem needs to freeze a live simulation — engine,
controller, event schedule and everything they transitively own — and later
rebuild *exactly* that state inside freshly constructed objects, such that
resuming the run produces bit-identical results. Pickling the objects
wholesale would fail on the callables they hold (strategy factories,
callback events) and would silently break the aliasing invariants the
vectorized engine depends on (device state views into the server's stacked
banks, samplers sharing their owner's generator). Instead, state is
captured as a *tagged tree* of pure data and restored **in place**:

* every mutable node (ndarray, list, dict, set, deque, object) is assigned
  a node id on first visit; later visits capture as ``{"__ref__": id}`` so
  aliasing is preserved exactly;
* restore walks the same tree against an existing object graph (the freshly
  constructed run) and mutates it in place wherever types line up —
  ``arr[...] = data`` for same-shape arrays, ``list[:] = items``,
  recursion into attribute values — falling back to reconstruction via
  ``cls.__new__`` only where no compatible counterpart exists;
* callables, modules and classes are captured as ``__skip__`` markers and
  left untouched on restore (fresh construction supplies them);
* ``numpy.random.Generator`` state round-trips through the bit generator's
  exact state dict, so random streams continue as if never interrupted.

Classes may customize their captured state with the
``__repro_getstate__()`` / ``__repro_setstate__(state)`` protocol (the MPC
uses it to snapshot matrix-cache *keys* and replay the assembly on
restore instead of serializing the read-only cached matrices).

Attribute and set iteration orders are made deterministic (sorted), so
capturing the same state twice yields equal trees — the property the
snapshot/restore round-trip tests are built on.
"""

from __future__ import annotations

import importlib
from collections import deque
from enum import Enum
from types import BuiltinFunctionType, FunctionType, MethodType, ModuleType

import numpy as np

from ..errors import CheckpointError

__all__ = ["capture", "restore", "count_rng_streams"]

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


def _qualify(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(name: str) -> type:
    module_name, _, qualname = name.partition(":")
    try:
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise CheckpointError(f"cannot resolve checkpointed class {name!r}: {exc}") from exc
    if not isinstance(obj, type):
        raise CheckpointError(f"checkpointed class {name!r} resolved to a non-class")
    return obj


def _is_frozen_dataclass(obj) -> bool:
    params = getattr(type(obj), "__dataclass_params__", None)
    return params is not None and params.frozen


def _state_items(obj) -> list[tuple[str, object]]:
    """The (attr, value) storage of ``obj``: ``__slots__`` plus ``__dict__``.

    Sorted by attribute name so capture order — and therefore the placement
    of ``__ref__`` nodes — is deterministic.
    """
    items: dict[str, object] = {}
    for cls in type(obj).__mro__:
        slots = cls.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__"):
                continue
            if hasattr(obj, name):
                items[name] = getattr(obj, name)
    items.update(getattr(obj, "__dict__", {}))
    return sorted(items.items())


class _Capture:
    """One capture pass: node-id assignment plus alias memoization."""

    def __init__(self):
        self._ids: dict[int, int] = {}
        self._keepalive: list[object] = []
        self._counter = 0

    def _node_id(self, obj) -> tuple[int, bool]:
        """(node id, first visit?) for an aliasable object."""
        key = id(obj)
        known = self._ids.get(key)
        if known is not None:
            return known, False
        self._counter += 1
        self._ids[key] = self._counter
        self._keepalive.append(obj)
        return self._counter, True

    def capture(self, obj):
        if isinstance(obj, _PRIMITIVES):
            return obj
        if isinstance(obj, np.generic):
            return {"__npval__": [str(obj.dtype), obj.tobytes()]}
        if isinstance(obj, np.ndarray):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            return {
                "__nd__": {
                    "#": nid,
                    "dtype": str(obj.dtype),
                    "shape": list(obj.shape),
                    "data": obj.tobytes(),
                }
            }
        if isinstance(obj, np.random.Generator):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            return {
                "__rng__": {
                    "#": nid,
                    "bitgen": type(obj.bit_generator).__name__,
                    "state": self.capture(obj.bit_generator.state),
                }
            }
        if isinstance(obj, tuple):
            return {"__tuple__": [self.capture(v) for v in obj]}
        if isinstance(obj, list):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            return {"__list__": {"#": nid, "items": [self.capture(v) for v in obj]}}
        if isinstance(obj, dict):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            return {
                "__dict__": {
                    "#": nid,
                    "items": [[self.capture(k), self.capture(v)] for k, v in obj.items()],
                }
            }
        if isinstance(obj, deque):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            return {
                "__deque__": {
                    "#": nid,
                    "maxlen": obj.maxlen,
                    "items": [self.capture(v) for v in obj],
                }
            }
        if isinstance(obj, (set, frozenset)):
            nid, first = self._node_id(obj)
            if not first:
                return {"__ref__": nid}
            try:
                ordered = sorted(obj)
            except TypeError:
                ordered = sorted(obj, key=repr)
            return {
                "__set__": {
                    "#": nid,
                    "frozen": isinstance(obj, frozenset),
                    "items": [self.capture(v) for v in ordered],
                }
            }
        if isinstance(obj, Enum):
            return {"__enum__": {"cls": _qualify(type(obj)), "name": obj.name}}
        if isinstance(
            obj, (FunctionType, BuiltinFunctionType, MethodType, ModuleType, type)
        ):
            return {"__skip__": getattr(obj, "__qualname__", None) or repr(obj)}
        if _is_frozen_dataclass(obj):
            # Immutable value objects (configs): captured by fields,
            # reconstructed fresh on restore — no aliasing to preserve.
            return {
                "__frozen__": {
                    "cls": _qualify(type(obj)),
                    "state": [[k, self.capture(v)] for k, v in _state_items(obj)],
                }
            }
        nid, first = self._node_id(obj)
        if not first:
            return {"__ref__": nid}
        node: dict = {"#": nid, "cls": _qualify(type(obj))}
        getstate = getattr(obj, "__repro_getstate__", None)
        if getstate is not None:
            node["custom"] = self.capture(getstate())
        else:
            node["state"] = [[k, self.capture(v)] for k, v in _state_items(obj)]
        return {"__obj__": node}


def capture(*objects):
    """Capture one shared-memo tagged tree per object; returns a list.

    All objects share a single alias memo, so cross-object references (a
    controller holding the engine's model arrays) restore to the *same*
    object on the other side.
    """
    cap = _Capture()
    return [cap.capture(obj) for obj in objects]


class _Restore:
    """One restore pass: node-id -> restored-object memo."""

    def __init__(self):
        self._memo: dict[int, object] = {}

    def restore(self, tag, existing):
        if isinstance(tag, _PRIMITIVES):
            return tag
        if not isinstance(tag, dict):
            raise CheckpointError(f"malformed checkpoint node: {tag!r}")
        if "__ref__" in tag:
            nid = tag["__ref__"]
            if nid not in self._memo:
                raise CheckpointError(f"dangling checkpoint reference #{nid}")
            return self._memo[nid]
        if "__npval__" in tag:
            dtype, data = tag["__npval__"]
            return np.frombuffer(data, dtype=np.dtype(dtype))[0]
        if "__nd__" in tag:
            return self._restore_array(tag["__nd__"], existing)
        if "__rng__" in tag:
            return self._restore_rng(tag["__rng__"], existing)
        if "__tuple__" in tag:
            return self._restore_tuple(tag["__tuple__"], existing)
        if "__list__" in tag:
            return self._restore_list(tag["__list__"], existing)
        if "__dict__" in tag:
            return self._restore_dict(tag["__dict__"], existing)
        if "__deque__" in tag:
            return self._restore_deque(tag["__deque__"], existing)
        if "__set__" in tag:
            return self._restore_set(tag["__set__"], existing)
        if "__enum__" in tag:
            info = tag["__enum__"]
            cls = _resolve_class(info["cls"])
            return cls[info["name"]]
        if "__skip__" in tag:
            return existing
        if "__frozen__" in tag:
            return self._restore_frozen(tag["__frozen__"], existing)
        if "__obj__" in tag:
            return self._restore_object(tag["__obj__"], existing)
        raise CheckpointError(f"unknown checkpoint tag: {sorted(tag)!r}")

    def _restore_array(self, node, existing):
        data = np.frombuffer(node["data"], dtype=np.dtype(node["dtype"]))
        arr = data.reshape(tuple(node["shape"]))
        if (
            isinstance(existing, np.ndarray)
            and existing.shape == arr.shape
            and existing.dtype == arr.dtype
            and existing.flags.writeable
        ):
            existing[...] = arr
            self._memo[node["#"]] = existing
            return existing
        fresh = arr.copy()
        self._memo[node["#"]] = fresh
        return fresh

    def _restore_rng(self, node, existing):
        state = self.restore(node["state"], None)
        if (
            isinstance(existing, np.random.Generator)
            and type(existing.bit_generator).__name__ == node["bitgen"]
        ):
            gen = existing
        else:
            bitgen_cls = getattr(np.random, node["bitgen"], None)
            if bitgen_cls is None:
                raise CheckpointError(f"unknown bit generator {node['bitgen']!r}")
            gen = np.random.Generator(bitgen_cls())
        gen.bit_generator.state = state
        self._memo[node["#"]] = gen
        return gen

    def _restore_tuple(self, items, existing):
        counterparts: tuple = ()
        if isinstance(existing, tuple) and len(existing) == len(items):
            counterparts = existing
        restored = [
            self.restore(t, counterparts[i] if counterparts else None)
            for i, t in enumerate(items)
        ]
        if counterparts and all(r is e for r, e in zip(restored, counterparts)):
            return existing
        return tuple(restored)

    def _restore_list(self, node, existing):
        items = node["items"]
        target = existing if isinstance(existing, list) else []
        self._memo[node["#"]] = target
        paired = len(target) == len(items)
        restored = [
            self.restore(t, target[i] if paired else None)
            for i, t in enumerate(items)
        ]
        target[:] = restored
        return target

    def _restore_dict(self, node, existing):
        target = existing if isinstance(existing, dict) else {}
        self._memo[node["#"]] = target
        pairs = []
        for k_tag, v_tag in node["items"]:
            key = self.restore(k_tag, None)
            counterpart = target.get(key) if isinstance(existing, dict) else None
            pairs.append((key, self.restore(v_tag, counterpart)))
        target.clear()
        target.update(pairs)
        return target

    def _restore_deque(self, node, existing):
        items = node["items"]
        if isinstance(existing, deque) and existing.maxlen == node["maxlen"]:
            target = existing
        else:
            target = deque(maxlen=node["maxlen"])
        self._memo[node["#"]] = target
        paired = len(target) == len(items)
        restored = [
            self.restore(t, target[i] if paired else None)
            for i, t in enumerate(items)
        ]
        target.clear()
        target.extend(restored)
        return target

    def _restore_set(self, node, existing):
        items = [self.restore(t, None) for t in node["items"]]
        if node["frozen"]:
            fresh = frozenset(items)
            self._memo[node["#"]] = fresh
            return fresh
        target = existing if isinstance(existing, set) else set()
        self._memo[node["#"]] = target
        target.clear()
        target.update(items)
        return target

    def _restore_frozen(self, node, existing):
        cls = _resolve_class(node["cls"])
        inst = cls.__new__(cls)
        for attr, tag in node["state"]:
            value = self.restore(tag, getattr(existing, attr, None))
            object.__setattr__(inst, attr, value)
        return inst

    def _restore_object(self, node, existing):
        cls = _resolve_class(node["cls"])
        if type(existing) is cls:
            target = existing
        else:
            target = cls.__new__(cls)
        self._memo[node["#"]] = target
        if "custom" in node:
            setstate = getattr(target, "__repro_setstate__", None)
            if setstate is None:
                raise CheckpointError(
                    f"{node['cls']} was checkpointed with __repro_getstate__ but "
                    "has no __repro_setstate__"
                )
            setstate(self.restore(node["custom"], None))
            return target
        for attr, tag in node["state"]:
            current = getattr(target, attr, None)
            value = self.restore(tag, current)
            if value is not current or not hasattr(target, attr):
                setattr(target, attr, value)
        return target


def restore(tags, existing_objects):
    """Restore trees from :func:`capture` into ``existing_objects`` in place.

    ``tags`` and ``existing_objects`` must align pairwise with the capture
    call. Returns the restored objects (identical to the existing ones
    wherever types matched — which they always do for a correctly
    reconstructed run).
    """
    if len(tags) != len(existing_objects):
        raise CheckpointError(
            f"{len(tags)} state trees but {len(existing_objects)} target objects"
        )
    rest = _Restore()
    return [rest.restore(tag, obj) for tag, obj in zip(tags, existing_objects)]


def count_rng_streams(tag) -> int:
    """Number of distinct random-generator states inside a captured tree."""
    count = 0
    stack = [tag]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            if "__rng__" in node:
                count += 1
                stack.append(node["__rng__"]["state"])
            else:
                stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
    return count
