"""Append-only write-ahead journal for sweep resume.

A journalled sweep directory contains two files:

``manifest.json``
    Written once, atomically, when the sweep starts: the exact arguments
    the job list was built from (experiment ids, root seed, replicates,
    set points, extra params) plus the ordered job keys. ``--resume``
    re-derives the job list from these arguments — per-job seeds come out
    identical because :func:`repro.runner.derive_replicate_seed` is a pure
    function of them — and cross-checks the keys against the manifest.

``journal.jsonl``
    The WAL proper: one JSON object per line, appended with per-line
    flush + fsync. Entry kinds:

    * ``job_started`` — written *before* a job is dispatched, so a resume
      can distinguish never-started jobs from crashed-in-flight ones;
    * ``job_done`` / ``job_failed`` — terminal outcomes, carrying the full
      serialized :class:`~repro.runner.JobRecord`;
    * ``shutdown`` — a structured signal-shutdown marker.

    Appends cannot use temp-file+rename (that would rewrite the whole log
    per job), so crash safety comes from the append-only discipline
    instead: a torn final line is detected by its failure to decode and
    simply ignored on replay — the job it described re-runs.

Replay keeps the *last* terminal entry per job key. Jobs with a terminal
entry are skipped on resume (``failed`` included — a recorded failure is a
result; re-running only the crashed remainder keeps resume cheap and
deterministic); jobs that were started but never finished re-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..atomicio import atomic_write_json, fsync_file
from ..errors import CheckpointError

__all__ = ["SweepJournal", "JournalReplay", "MANIFEST_NAME", "JOURNAL_NAME"]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

_MANIFEST_FORMAT = "repro-sweep-journal"
_MANIFEST_SCHEMA = 1

#: Journal entry kinds with a terminal job outcome attached.
_TERMINAL_KINDS = ("job_done", "job_failed")


@dataclass
class JournalReplay:
    """What a journal says already happened.

    ``completed`` maps job key -> the serialized record of its last
    terminal entry; ``in_flight`` holds keys that have a ``job_started``
    entry but no terminal one (crashed mid-job); ``shutdowns`` collects
    structured shutdown events; ``torn_lines`` counts undecodable lines
    (at most the final line after a crash mid-append).
    """

    completed: dict[str, dict] = field(default_factory=dict)
    in_flight: list[str] = field(default_factory=list)
    shutdowns: list[dict] = field(default_factory=list)
    torn_lines: int = 0


class SweepJournal:
    """One sweep's durable manifest + WAL, rooted at a directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.journal_path = self.directory / JOURNAL_NAME
        self._fh = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        *,
        experiments: list[str],
        seed: int,
        replicates: int,
        set_points_w: list[float] | None,
        extra_params: dict | None,
        job_keys: list[str],
    ) -> "SweepJournal":
        """Start a fresh journalled sweep (refuses to clobber an old one)."""
        journal = cls(directory)
        if journal.manifest_path.exists():
            raise CheckpointError(
                f"{journal.manifest_path} already exists — resume it with "
                f"--resume, or point --journal-dir at a fresh directory"
            )
        journal.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            journal.manifest_path,
            {
                "format": _MANIFEST_FORMAT,
                "schema_version": _MANIFEST_SCHEMA,
                "experiments": list(experiments),
                "seed": int(seed),
                "replicates": int(replicates),
                "set_points_w": None if set_points_w is None else list(set_points_w),
                "extra_params": dict(extra_params or {}),
                "job_keys": list(job_keys),
            },
        )
        return journal

    @classmethod
    def open(cls, directory: str | Path) -> "SweepJournal":
        """Attach to an existing journalled sweep for resume."""
        journal = cls(directory)
        journal.manifest()  # validates existence + schema
        return journal

    def manifest(self) -> dict:
        """The validated sweep manifest."""
        if not self.manifest_path.exists():
            raise CheckpointError(f"no sweep manifest at {self.manifest_path}")
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{self.manifest_path} is not valid JSON: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != _MANIFEST_FORMAT:
            raise CheckpointError(f"{self.manifest_path} is not a sweep manifest")
        if manifest.get("schema_version") != _MANIFEST_SCHEMA:
            raise CheckpointError(
                f"unsupported sweep manifest schema "
                f"{manifest.get('schema_version')!r} (this build reads "
                f"{_MANIFEST_SCHEMA})"
            )
        return manifest

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def append(self, entry: dict) -> None:
        """Durably append one WAL entry (flush + fsync before returning)."""
        if self._fh is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fsync_file(self._fh)

    def job_started(self, job_key: str, attempt: int) -> None:
        self.append({"kind": "job_started", "key": job_key, "attempt": int(attempt)})

    def job_done(self, record_dict: dict) -> None:
        self.append({"kind": "job_done", "key": record_dict["key"], "record": record_dict})

    def job_failed(self, record_dict: dict) -> None:
        self.append({"kind": "job_failed", "key": record_dict["key"], "record": record_dict})

    def shutdown(self, event: dict) -> None:
        self.append({"kind": "shutdown", **event})

    # -- replay ------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Reconstruct completion state from the WAL (tolerating torn tails)."""
        replay = JournalReplay()
        if not self.journal_path.exists():
            return replay
        started: dict[str, int] = {}
        with open(self.journal_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves (at most) one torn trailing
                    # line; the job it described simply re-runs.
                    replay.torn_lines += 1
                    continue
                kind = entry.get("kind")
                if kind == "job_started":
                    started[entry["key"]] = entry.get("attempt", 1)
                elif kind in _TERMINAL_KINDS:
                    record = entry.get("record")
                    if isinstance(record, dict) and "key" in record:
                        replay.completed[record["key"]] = record
                elif kind == "shutdown":
                    replay.shutdowns.append(entry)
        replay.in_flight = [key for key in started if key not in replay.completed]
        return replay
