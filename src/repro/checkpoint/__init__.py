"""Crash-safe checkpoint/resume for experiments and sweeps.

Long CapGPU evaluation runs must survive the process dying — OOM-killed
workers, preempted nodes, operator Ctrl-C — without losing determinism.
This package provides the three layers that make that possible:

:mod:`~repro.checkpoint.state` / :mod:`~repro.checkpoint.blob` /
:mod:`~repro.checkpoint.engine`
    Object-graph capture into versioned, digest-verified state blobs, and
    in-place restore with **bit-identical** continuation: restore-then-run
    produces the same digests as an uninterrupted run.

:mod:`~repro.checkpoint.journal`
    An append-only write-ahead journal for sweeps: per-job terminal
    records plus ``job_started`` markers, replayed by
    ``repro sweep --resume`` to skip completed jobs and re-run only the
    remainder with their original spawned seeds.

:mod:`~repro.checkpoint.signals`
    Cooperative SIGINT/SIGTERM handling: latch a flag in the handler,
    flush a final checkpoint at the next safe boundary, exit 130/143.
"""

from .blob import build_blob, load_blob, save_blob, validate_blob
from .engine import capture_run_state, restore_run_state
from .journal import JOURNAL_NAME, MANIFEST_NAME, JournalReplay, SweepJournal
from .signals import (
    CheckpointInterrupt,
    ShutdownFlag,
    install_signal_handlers,
    shutdown_event,
)
from .state import capture, restore

__all__ = [
    "build_blob",
    "load_blob",
    "save_blob",
    "validate_blob",
    "capture_run_state",
    "restore_run_state",
    "SweepJournal",
    "JournalReplay",
    "MANIFEST_NAME",
    "JOURNAL_NAME",
    "CheckpointInterrupt",
    "ShutdownFlag",
    "install_signal_handlers",
    "shutdown_event",
    "capture",
    "restore",
]
