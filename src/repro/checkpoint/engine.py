"""Capture/restore glue between the simulation engine and checkpoint blobs.

The three live roots of a run — the :class:`~repro.sim.engine.ServerSimulation`,
the controller stack (possibly a watchdog wrapping the real controller), and
the :class:`~repro.sim.events.EventSchedule` — are captured into **one**
tagged tree with a shared alias memo. That single-memo property is load
bearing: the event schedule's fired-set, a controller's view of model
arrays, and the engine's device banks must all land back on the *same*
objects after restore, or a resumed run would silently diverge (events
re-firing, controllers mutating copies).

``capture_run_state`` also distills a human-inspectable ``summary`` —
degradation-ladder freshness, actuator targets, safe-mode status, MPC
matrix-cache keys, RNG stream count — so ``repro`` tooling (and a worried
operator with ``python -m pickle``) can see what a checkpoint contains
without reconstructing a run.
"""

from __future__ import annotations

from ..errors import CheckpointError
from .blob import build_blob, validate_blob
from .state import capture, count_rng_streams, restore

__all__ = ["capture_run_state", "restore_run_state"]


def _unwrap_controller(controller):
    """The innermost controller of a (possibly watchdog-wrapped) stack."""
    seen = set()
    while controller is not None and id(controller) not in seen:
        seen.add(id(controller))
        inner = getattr(controller, "inner", None)
        if inner is None:
            return controller
        controller = inner
    return controller


def _mpc_cache_keys(controller) -> list[str]:
    inner = _unwrap_controller(controller)
    mpc = getattr(inner, "mpc", None)
    cache = getattr(mpc, "_cache", None)
    if not cache:
        return []
    return [f"{ka.hex()}:{kr.hex()}" for ka, kr in cache]


def _summary(sim, controller, events) -> dict:
    actuator = getattr(sim, "actuator", None)
    targets = actuator.targets() if hasattr(actuator, "targets") else None
    summary = {
        "period_index": int(sim.period_index),
        "time_s": float(sim.time_s),
        "stale_periods": int(getattr(sim, "_stale_periods", 0)),
        "last_good_power_w": getattr(sim, "_last_good_power_w", None),
        "freeze_run": int(getattr(sim, "_freeze_run", 0)),
        "last_meter_seq": getattr(sim, "_last_meter_seq", None),
        "safe_mode": bool(getattr(sim, "_safe_mode_flag", False)),
        "actuator_targets_mhz": (
            None if targets is None else [float(t) for t in targets]
        ),
        "mpc_cache_keys": _mpc_cache_keys(controller),
        "has_controller": controller is not None,
        "has_events": events is not None,
    }
    if controller is not None and hasattr(controller, "in_safe_mode"):
        summary["watchdog_safe_mode"] = bool(controller.in_safe_mode)
    return summary


def capture_run_state(sim, controller=None, events=None) -> dict:
    """Freeze a run into a schema-complete checkpoint blob.

    ``controller`` and ``events`` must be the exact objects the run loop is
    using (pass ``None`` for whichever does not exist); they are captured in
    the same alias memo as the engine so shared state restores shared.
    """
    tags = capture(sim, controller, events)
    state = {"engine": tags[0], "controller": tags[1], "events": tags[2]}
    summary = _summary(sim, controller, events)
    summary["rng_streams"] = count_rng_streams(state)
    created = {"period_index": int(sim.period_index), "time_s": float(sim.time_s)}
    return build_blob(state, created, summary)


def restore_run_state(blob: dict, sim, controller=None, events=None):
    """Load a blob into freshly constructed run objects, in place.

    The targets must be built the same way as the checkpointed run (same
    scenario, same controller factory, same event list) — restore then
    overwrites their state so the run continues bit-identically. Presence
    must match: a blob captured with a controller cannot be restored
    without one, and vice versa.
    """
    validate_blob(blob)
    state = blob["state"]
    for name, target in (("controller", controller), ("events", events)):
        captured = state[name] is not None
        if captured != (target is not None):
            raise CheckpointError(
                f"checkpoint was taken {'with' if captured else 'without'} a "
                f"{name} but restore was called {'without' if captured else 'with'} one"
            )
    tags = [state["engine"]]
    targets = [sim]
    if controller is not None:
        tags.append(state["controller"])
        targets.append(controller)
    if events is not None:
        tags.append(state["events"])
        targets.append(events)
    restored = restore(tags, targets)
    if restored[0] is not sim:
        raise CheckpointError(
            "engine state did not restore in place — the target simulation "
            "does not match the checkpointed run"
        )
    return sim
