"""Simulated IPMI/BMC chassis telemetry (read-only).

Production power-capping agents (IBM's Active Energy Manager, Dynamo's node
agents) read chassis state from the baseboard management controller. This
read-only view complements the ACPI meter with the sensors a BMC exposes:
inlet/device temperatures, fan speed, PSU load, and a sensor-record dump in
`ipmitool sensor`-like rows. It never feeds the control loop in the paper's
design — it exists for operator dashboards and the thermal extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TelemetryError
from ..hardware.server import GpuServer

__all__ = ["SensorReading", "SimulatedIpmi"]


@dataclass(frozen=True)
class SensorReading:
    """One BMC sensor row."""

    name: str
    value: float
    unit: str

    def render(self) -> str:
        """`ipmitool sensor`-style line."""
        return f"{self.name:<24s}| {self.value:10.2f} | {self.unit}"


class SimulatedIpmi:
    """BMC sensor surface over a simulated server.

    Parameters
    ----------
    server:
        The plant. Temperatures require the server's thermal extension
        (``thermal=True``); without it temperature queries raise
        :class:`TelemetryError`, mirroring a board without those sensors.
    psu_rating_w:
        Nameplate PSU capacity, for the load-fraction sensor.
    """

    def __init__(self, server: GpuServer, psu_rating_w: float = 1600.0):
        if psu_rating_w <= 0:
            raise TelemetryError("psu_rating_w must be positive")
        self._server = server
        self.psu_rating_w = float(psu_rating_w)

    # -- individual sensors ---------------------------------------------------

    def psu_load_fraction(self) -> float:
        """Current draw over nameplate capacity."""
        return self._server.total_power_w() / self.psu_rating_w

    def fan_speed_fraction(self) -> float:
        return self._server.fan.speed

    def fan_power_w(self) -> float:
        return self._server.fan.power_w()

    def inlet_temp_c(self) -> float:
        """Ambient/inlet temperature (needs the thermal extension)."""
        nodes = self._server.thermal_nodes
        if nodes is None:
            raise TelemetryError("server built without thermal=True")
        return nodes[0].t_ambient

    def device_temps_c(self) -> list[float]:
        """Junction temperature per device, channel order."""
        nodes = self._server.thermal_nodes
        if nodes is None:
            raise TelemetryError("server built without thermal=True")
        return [n.temperature_c for n in nodes]

    def hottest_device_c(self) -> float:
        return max(self.device_temps_c())

    # -- full dump -------------------------------------------------------------

    def sensor_records(self) -> list[SensorReading]:
        """All available sensors (temperatures only with thermal enabled)."""
        records = [
            SensorReading("Sys Power", self._server.total_power_w(), "Watts"),
            SensorReading("CPU Power", self._server.cpu_power_w(), "Watts"),
            SensorReading("GPU Power", self._server.gpu_power_w(), "Watts"),
            SensorReading("PSU Load", 100.0 * self.psu_load_fraction(), "percent"),
            SensorReading("Fan Speed", 100.0 * self.fan_speed_fraction(), "percent"),
        ]
        if self._server.thermal_nodes is not None:
            records.append(SensorReading("Inlet Temp", self.inlet_temp_c(), "degrees C"))
            for ref, temp in zip(self._server.channels, self.device_temps_c()):
                records.append(SensorReading(f"{ref.name} Temp", temp, "degrees C"))
        return records

    def render(self) -> str:
        """`ipmitool sensor`-like text dump."""
        return "\n".join(r.render() for r in self.sensor_records())
