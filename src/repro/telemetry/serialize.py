"""Trace serialization: CSV (human) and NPZ (lossless) round trips.

Experiment traces are the primary artifact of a run; these helpers let the
CLI and users persist and reload them without any extra dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from ..atomicio import atomic_path
from ..errors import ConfigurationError
from .trace import Trace

__all__ = ["trace_to_csv", "trace_from_csv", "save_trace_npz", "load_trace_npz"]


def trace_to_csv(trace: Trace) -> str:
    """Render a trace as CSV text (header = channel names)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(trace.channels)
    data = trace.as_array()
    for row in data:
        writer.writerow([repr(float(v)) for v in row])
    return buf.getvalue()


def trace_from_csv(text: str) -> Trace:
    """Parse CSV text produced by :func:`trace_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ConfigurationError("empty CSV") from None
    trace = Trace(header)
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(header):
            raise ConfigurationError(
                f"line {lineno}: {len(row)} cells, expected {len(header)}"
            )
        trace.append(**{name: float(v) for name, v in zip(header, row)})
    return trace


def save_trace_npz(trace: Trace, path: str | Path) -> Path:
    """Save a trace to a compressed ``.npz`` (lossless float64, atomic)."""
    path = Path(path)
    if path.suffix != ".npz":
        # np.savez appends .npz when the suffix is missing; resolve the real
        # destination up front so the atomic rename targets it directly.
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {name: trace[name].copy() for name in trace.channels}
    with atomic_path(path) as tmp:
        # Channel order must survive the round trip.
        np.savez_compressed(tmp, __channels__=np.array(trace.channels), **arrays)  # repro-lint: disable=REP107 -- writes atomic_path's temp file, renamed over the destination on exit
    return path


def load_trace_npz(path: str | Path) -> Trace:
    """Load a trace saved by :func:`save_trace_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "__channels__" not in data:
            raise ConfigurationError(f"{path} is not a saved trace")
        channels = [str(c) for c in data["__channels__"]]
        trace = Trace(channels)
        columns = {name: data[name] for name in channels}
        n = len(columns[channels[0]]) if channels else 0
        for i in range(n):
            trace.append(**{name: float(columns[name][i]) for name in channels})
    return trace
