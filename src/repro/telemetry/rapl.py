"""Simulated Intel RAPL energy counters.

The CPU-side loop of the CPU+GPU split-budget baseline measures CPU package
power the way production power-capping agents do: by differencing the RAPL
``energy_uj`` counter over a window. We reproduce the counter's quirks:

* it counts **microjoules** and is monotonically increasing,
* it wraps around at a platform-specific maximum (``max_energy_range_uj``),
  so naive differencing across a wrap yields a huge negative value — the
  adapter handles the wrap like real readers must.

The counter integrates the simulated CPU package power each tick.
"""

from __future__ import annotations

from ..errors import ConfigurationError, TelemetryError
from ..hardware.server import GpuServer
from ..units import joules_to_microjoules, microjoules_to_joules

__all__ = ["SimulatedRapl", "RaplWindowReader"]

#: Typical ``max_energy_range_uj`` for a Xeon package (~262144 J).
DEFAULT_MAX_ENERGY_RANGE_UJ = 262_143_328_850


class SimulatedRapl:
    """Package-domain RAPL counter backed by the simulated server.

    Parameters
    ----------
    server:
        The simulated plant (all CPU packages are aggregated into one
        package domain, matching the single-host-CPU testbed).
    max_energy_range_uj:
        Counter wrap point.
    """

    def __init__(
        self,
        server: GpuServer,
        max_energy_range_uj: int = DEFAULT_MAX_ENERGY_RANGE_UJ,
    ):
        if max_energy_range_uj <= 0:
            raise ConfigurationError("max_energy_range_uj must be positive")
        self._server = server
        self.max_energy_range_uj = int(max_energy_range_uj)
        self._energy_uj = 0.0

    def accumulate(self, dt_s: float, cpu_power_w: float | None = None) -> None:
        """Integrate the current CPU package power for one tick.

        ``cpu_power_w`` lets the engine pass a package power it already
        computed this tick (``GpuServer.step_all`` stashes one); omitted, the
        counter reads the server itself.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if cpu_power_w is None:
            cpu_power_w = self._server.cpu_power_w()
        self._energy_uj += joules_to_microjoules(cpu_power_w * dt_s)
        self._energy_uj %= self.max_energy_range_uj

    def read_energy_uj(self) -> int:
        """Current counter value in microjoules (``energy_uj`` sysfs file)."""
        return int(self._energy_uj)

    def reset(self) -> None:
        """Zero the counter (module reload / machine reboot)."""
        self._energy_uj = 0.0


class RaplWindowReader:
    """Computes average package power between successive reads, wrap-safe."""

    def __init__(self, rapl: SimulatedRapl):
        self._rapl = rapl
        self._last_uj: int | None = None
        self._last_t: float | None = None

    def start(self, time_s: float) -> None:
        """Anchor the window at ``time_s``."""
        self._last_uj = self._rapl.read_energy_uj()
        self._last_t = float(time_s)

    def read_power_w(self, time_s: float) -> float:
        """Average package power since the previous read, then re-anchor.

        Raises :class:`TelemetryError` if :meth:`start` was never called or
        no time elapsed.
        """
        if self._last_uj is None or self._last_t is None:
            raise TelemetryError("RaplWindowReader.read_power_w before start()")
        dt = float(time_s) - self._last_t
        if dt <= 0:
            raise TelemetryError("RAPL window has zero duration")
        now_uj = self._rapl.read_energy_uj()
        delta_uj = now_uj - self._last_uj
        if delta_uj < 0:  # counter wrapped between reads
            delta_uj += self._rapl.max_energy_range_uj
        self._last_uj = now_uj
        self._last_t = float(time_s)
        return microjoules_to_joules(delta_uj) / dt
