"""Telemetry: power meters, throughput/utilization monitors, NVML/RAPL sims.

Controllers never read the plant's ground truth directly; everything they
observe flows through this package, with realistic sampling, quantization,
noise and counter semantics (see DESIGN.md's substitution table).
"""

from .ipmi import SensorReading, SimulatedIpmi
from .monitors import ThroughputMonitor, UtilizationMonitor
from .nvml import NvmlDeviceHandle, SimulatedNvml
from .power_meter import AcpiPowerMeter, PowerSample
from .rapl import RaplWindowReader, SimulatedRapl
from .serialize import (
    load_trace_npz,
    save_trace_npz,
    trace_from_csv,
    trace_to_csv,
)
from .trace import Trace

__all__ = [
    "AcpiPowerMeter",
    "PowerSample",
    "ThroughputMonitor",
    "UtilizationMonitor",
    "SimulatedNvml",
    "NvmlDeviceHandle",
    "SimulatedRapl",
    "RaplWindowReader",
    "Trace",
    "trace_to_csv",
    "trace_from_csv",
    "save_trace_npz",
    "load_trace_npz",
    "SimulatedIpmi",
    "SensorReading",
]
