"""Simulated NVML (nvidia-smi) management interface.

The paper's baselines read per-GPU power through ``nvidia-smi`` and set
application clocks with ``nvidia-smi -ac <mem>,<core>``. This module exposes
the subset of the pynvml surface those code paths need, backed by the
simulated :class:`~repro.hardware.server.GpuServer`:

* handles per GPU index,
* board power in **milliwatts** (as pynvml reports it), with per-query
  sensor noise,
* current/supported application clocks,
* ``set_applications_clocks(mem, core)`` which snaps to the supported grid
  exactly like the real tool (invalid combinations are rejected).

Baselines use this instead of touching the server object directly, so their
information set matches what they would have on real hardware.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, TelemetryError
from ..hardware.server import GpuServer
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import milliwatts_to_watts, watts_to_milliwatts

__all__ = ["SimulatedNvml", "NvmlDeviceHandle"]


class NvmlDeviceHandle:
    """Opaque handle to one GPU, as returned by ``nvmlDeviceGetHandleByIndex``."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = int(index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NvmlDeviceHandle({self.index})"


class SimulatedNvml:
    """pynvml-workalike bound to a simulated server.

    Parameters
    ----------
    server:
        The simulated plant.
    rng:
        Generator for per-query power-sensor noise.
    power_noise_sigma_w:
        Std of the per-query Gaussian error on board power (the real NVML
        power sensor is noticeably noisy; ~1 W is typical).
    """

    def __init__(
        self,
        server: GpuServer,
        rng: np.random.Generator | None = None,
        power_noise_sigma_w: float = 1.0,
    ):
        self._server = server
        if power_noise_sigma_w < 0:
            raise ConfigurationError("power_noise_sigma_w must be >= 0")
        if power_noise_sigma_w > 0 and rng is None:
            raise ConfigurationError("rng required when power_noise_sigma_w > 0")
        self._rng = rng
        self._sigma = float(power_noise_sigma_w)
        # Per-query sensor noise pre-drawn in blocks; batch draws consume the
        # generator stream identically to scalar draws (bit-identical values).
        self._noise_sampler = (
            BlockSampler(rng, "normal", (0.0, self._sigma))
            if self._sigma > 0 and vectorized_enabled()
            else None
        )
        # Pending application-clock commands, applied by the actuation layer.
        self._pending_clocks: dict[int, float] = {}

    # -- discovery ---------------------------------------------------------

    def device_count(self) -> int:
        """Number of GPUs on the server (``nvmlDeviceGetCount``)."""
        return self._server.n_gpus

    def device_handle_by_index(self, index: int) -> NvmlDeviceHandle:
        """Handle for GPU ``index`` (``nvmlDeviceGetHandleByIndex``)."""
        if not 0 <= index < self._server.n_gpus:
            raise TelemetryError(f"GPU index {index} out of range")
        return NvmlDeviceHandle(index)

    def device_name(self, handle: NvmlDeviceHandle) -> str:
        """Marketing name of the GPU."""
        return self._server.gpus[handle.index].spec.name

    # -- sensors ------------------------------------------------------------

    def power_usage_mw(self, handle: NvmlDeviceHandle) -> float:
        """Instantaneous board power in milliwatts (``nvmlDeviceGetPowerUsage``)."""
        p = self._server.gpu_power_w(handle.index)
        if self._sigma > 0:
            if self._noise_sampler is not None:
                p += self._noise_sampler.next()
            else:
                p += self._rng.normal(0.0, self._sigma)
        return watts_to_milliwatts(max(p, 0.0))

    def total_gpu_power_w(self) -> float:
        """Sum of all boards' power in watts (convenience for GPU-side loops)."""
        total = 0.0
        for i in range(self._server.n_gpus):
            total += milliwatts_to_watts(self.power_usage_mw(self.device_handle_by_index(i)))
        return total

    def utilization_rates(self, handle: NvmlDeviceHandle) -> float:
        """GPU busy fraction in [0, 1] (``nvmlDeviceGetUtilizationRates``)."""
        return self._server.gpus[handle.index].utilization

    def clock_info_mhz(self, handle: NvmlDeviceHandle) -> float:
        """Current graphics clock in MHz (``nvmlDeviceGetClockInfo``)."""
        return self._server.gpus[handle.index].core_clock_mhz

    def supported_graphics_clocks(self, handle: NvmlDeviceHandle) -> list[float]:
        """Supported application core clocks at the fixed memory clock."""
        return list(self._server.gpus[handle.index].domain.levels)

    # -- actuation ------------------------------------------------------------

    def set_applications_clocks(
        self, handle: NvmlDeviceHandle, mem_mhz: float, core_mhz: float
    ) -> float:
        """Request application clocks (``nvidia-smi -ac mem,core``).

        The memory clock must match the board's fixed memory clock (as in the
        paper, which pins memory at 877 MHz). The core clock must be one of
        the supported levels — the real tool rejects off-grid values rather
        than rounding, and so do we. Returns the accepted core clock.

        The command is *staged*: the actuation layer picks it up and applies
        it at the next tick, modelling command latency.
        """
        gpu = self._server.gpus[handle.index]
        if abs(mem_mhz - gpu.memory_clock_mhz) > 1e-6:
            raise ConfigurationError(
                f"unsupported memory clock {mem_mhz} MHz (board uses "
                f"{gpu.memory_clock_mhz} MHz)"
            )
        if not gpu.domain.contains(core_mhz):
            raise ConfigurationError(
                f"unsupported core clock {core_mhz} MHz for {gpu.spec.name}"
            )
        self._pending_clocks[handle.index] = float(core_mhz)
        return float(core_mhz)

    def pop_pending_clock(self, index: int) -> float | None:
        """Actuation-layer hook: take (and clear) the staged clock command."""
        return self._pending_clocks.pop(index, None)
