"""ACPI-style server power meter.

Reproduces the measurement path of Section 5: the testbed exposes a
``power_meter-acpi-0`` device through lm-sensors that samples wall power at
one-second intervals and appends readings to a sysfs file the controller
reads. We model:

* integration — each emitted sample is the *average* instantaneous power over
  the sampling interval (the meter integrates, it does not spot-sample);
* quantization — readings are quantized to the meter's resolution;
* sensor noise — additive Gaussian error per sample;
* a bounded ring buffer of recent samples with monotonically increasing
  sequence numbers, mirroring a file that is appended to and rotated.

The controller's view (``average_over_last``) is exactly what the paper's
controller computes: the mean of the samples that arrived during the last
control period.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ConfigurationError, TelemetryError
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import require_positive

__all__ = ["AcpiPowerMeter", "PowerSample"]


class PowerSample:
    """One emitted meter reading."""

    __slots__ = ("seq", "time_s", "power_w")

    def __init__(self, seq: int, time_s: float, power_w: float):
        self.seq = seq
        self.time_s = time_s
        self.power_w = power_w

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PowerSample(seq={self.seq}, t={self.time_s:.1f}s, {self.power_w:.1f} W)"


class AcpiPowerMeter:
    """Integrating wall-power meter with periodic sample emission.

    Parameters
    ----------
    sample_interval_s:
        Interval between emitted samples (the paper's meter: 1 s).
    resolution_w:
        Quantization step of emitted readings.
    noise_sigma_w:
        Std of additive Gaussian sensor noise per sample.
    rng:
        Random generator for the sensor noise (required if noise > 0).
    buffer_len:
        Ring-buffer capacity (old samples are dropped like a rotated log).
    """

    def __init__(
        self,
        sample_interval_s: float = 1.0,
        resolution_w: float = 0.1,
        noise_sigma_w: float = 1.0,
        rng: np.random.Generator | None = None,
        buffer_len: int = 4096,
    ):
        self.sample_interval_s = require_positive(sample_interval_s, "sample_interval_s")
        self.resolution_w = require_positive(resolution_w, "resolution_w")
        if noise_sigma_w < 0:
            raise ConfigurationError("noise_sigma_w must be >= 0")
        if noise_sigma_w > 0 and rng is None:
            raise ConfigurationError("rng is required when noise_sigma_w > 0")
        self.noise_sigma_w = float(noise_sigma_w)
        self._rng = rng
        # Sensor-noise draws come from a block sampler on the fast path —
        # batch draws consume the generator stream identically to scalar
        # draws, so emitted samples are bit-for-bit unchanged.
        self._noise_sampler = (
            BlockSampler(rng, "normal", (0.0, self.noise_sigma_w))
            if self.noise_sigma_w > 0 and vectorized_enabled()
            else None
        )
        if buffer_len < 1:
            raise ConfigurationError("buffer_len must be >= 1")
        self._buffer: deque[PowerSample] = deque(maxlen=int(buffer_len))
        self._seq = 0
        self._accum_j = 0.0
        self._accum_t = 0.0
        self._time_s = 0.0

    # -- simulation side ------------------------------------------------------

    def accumulate(self, instantaneous_power_w: float, dt_s: float) -> PowerSample | None:
        """Feed one simulation tick of ground-truth power.

        Returns the newly emitted :class:`PowerSample` if the sampling
        interval elapsed during this tick, else ``None``.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        self._accum_j += instantaneous_power_w * dt_s
        self._accum_t += dt_s
        self._time_s += dt_s
        # Emit when a full interval has been integrated. Tick sizes are
        # expected to divide the interval; tolerate float drift.
        if self._accum_t + 1e-9 >= self.sample_interval_s:
            mean_w = self._accum_j / self._accum_t
            if self.noise_sigma_w > 0:
                if self._noise_sampler is not None:
                    mean_w += self._noise_sampler.next()
                else:
                    mean_w += self._rng.normal(0.0, self.noise_sigma_w)
            quantized = round(mean_w / self.resolution_w) * self.resolution_w
            sample = PowerSample(self._seq, self._time_s, float(quantized))
            self._buffer.append(sample)
            self._seq += 1
            self._accum_j = 0.0
            self._accum_t = 0.0
            return sample
        return None

    def reset(self) -> None:
        """Clear the buffer and integration state."""
        self._buffer.clear()
        self._seq = 0
        self._accum_j = 0.0
        self._accum_t = 0.0
        self._time_s = 0.0

    # -- controller side -------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples currently in the buffer."""
        return len(self._buffer)

    @property
    def total_emitted(self) -> int:
        """Total samples emitted since construction/reset."""
        return self._seq

    def latest(self) -> PowerSample:
        """Most recent sample; raises :class:`TelemetryError` when empty."""
        if not self._buffer:
            raise TelemetryError("power meter has produced no samples yet")
        return self._buffer[-1]

    def last_n(self, n: int) -> list[PowerSample]:
        """The most recent ``min(n, available)`` samples, oldest first."""
        if n < 0:
            raise ConfigurationError("n must be >= 0")
        if n == 0:
            return []
        items = list(self._buffer)
        return items[-n:]

    def average_over_last(self, n: int) -> float:
        """Mean power of the last ``n`` samples (the control-period average).

        This is the feedback value ``p(k)`` of the paper's control loop: the
        control period is a multiple of the sampling interval and the
        controller averages the samples that arrived within it.
        """
        samples = self.last_n(n)
        if not samples:
            raise TelemetryError("power meter has produced no samples yet")
        return float(np.mean([s.power_w for s in samples]))

    def samples_since(self, seq: int) -> list[PowerSample]:
        """All buffered samples with sequence number > ``seq``, oldest first."""
        return [s for s in self._buffer if s.seq > seq]

    def render_file(self, n: int = 32) -> str:
        """Render the last ``n`` samples in the lm-sensors text format.

        A fidelity aid: the real controller reads a text file updated by the
        meter. Format: one ``power1_average: <watts>`` line per sample.
        """
        return "\n".join(f"power1_average: {s.power_w:.1f}" for s in self.last_n(n))
