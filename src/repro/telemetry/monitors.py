"""Throughput and utilization monitors.

Section 3.1 of the paper: each GPU's monitor reports average inference
throughput (tasks completed per second) and the CPU monitor reports feature
subsets evaluated per second; each is then *normalized by the maximum
throughput of the respective device*. The normalized values drive the weight
assignment of the CapGPU controller.

Monitors are windowed: producers report event counts (and busy time) per
simulation tick; at the end of each control period the controller reads the
windowed rate and the window resets.
"""

from __future__ import annotations

from ..errors import ConfigurationError, TelemetryError
from ..units import require_positive

__all__ = ["ThroughputMonitor", "UtilizationMonitor"]


class ThroughputMonitor:
    """Windowed event-rate monitor with running-maximum normalization.

    Parameters
    ----------
    name:
        Device/workload label (diagnostics only).
    max_rate_hint:
        Optional prior for the device's maximum achievable rate. The
        normalizer is ``max(max_rate_hint, running max of observed rates)``,
        so normalization works from the first period even before the device
        has demonstrated its peak (and adapts upward if the hint was low).
    """

    def __init__(self, name: str, max_rate_hint: float | None = None):
        self.name = str(name)
        if max_rate_hint is not None:
            require_positive(max_rate_hint, "max_rate_hint")
        self._max_seen = float(max_rate_hint) if max_rate_hint else 0.0
        self._events = 0.0
        self._elapsed = 0.0
        self._last_rate: float | None = None

    def record(self, n_events: float, dt_s: float) -> None:
        """Record ``n_events`` completions over ``dt_s`` seconds of this window."""
        if n_events < 0:
            raise ConfigurationError("n_events must be >= 0")
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        self._events += float(n_events)
        self._elapsed += float(dt_s)

    def read_and_reset(self) -> float:
        """Return the window's mean rate (events/s) and start a new window."""
        if self._elapsed <= 0:
            raise TelemetryError(f"monitor {self.name!r}: empty window")
        rate = self._events / self._elapsed
        self._events = 0.0
        self._elapsed = 0.0
        self._last_rate = rate
        self._max_seen = max(self._max_seen, rate)
        return rate

    @property
    def last_rate(self) -> float:
        """Most recent windowed rate (0.0 before the first window closes)."""
        return 0.0 if self._last_rate is None else self._last_rate

    @property
    def max_rate(self) -> float:
        """Current normalizer (hint or running maximum)."""
        return self._max_seen

    def normalized(self) -> float:
        """Last rate divided by the device maximum, clamped to [0, 1].

        Returns 0.0 before any window has closed (a cold device is treated as
        idle, which makes the controller throttle it first — the safe side).
        """
        if self._last_rate is None or self._max_seen <= 0:
            return 0.0
        return min(self._last_rate / self._max_seen, 1.0)

    def reset(self) -> None:
        """Clear window state (keeps the normalizer hint/running max)."""
        self._events = 0.0
        self._elapsed = 0.0
        self._last_rate = None


class UtilizationMonitor:
    """Windowed busy-fraction monitor (what ``nvidia-smi``'s util column shows).

    Producers report busy time per tick; the monitor returns the mean busy
    fraction over the control period. Used by the fixed-step baseline, which
    selects which component to throttle by *utilization* rather than by
    throughput.
    """

    def __init__(self, name: str):
        self.name = str(name)
        self._busy = 0.0
        self._elapsed = 0.0
        self._last: float | None = None

    def record(self, busy_s: float, dt_s: float) -> None:
        """Record ``busy_s`` seconds of busy time within a ``dt_s`` tick."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if busy_s < 0 or busy_s > dt_s + 1e-9:
            raise ConfigurationError(f"busy_s must lie in [0, dt_s], got {busy_s} vs {dt_s}")
        self._busy += float(busy_s)
        self._elapsed += float(dt_s)

    def read_and_reset(self) -> float:
        """Return the window's mean busy fraction in [0, 1] and reset."""
        if self._elapsed <= 0:
            raise TelemetryError(f"monitor {self.name!r}: empty window")
        util = min(self._busy / self._elapsed, 1.0)
        self._busy = 0.0
        self._elapsed = 0.0
        self._last = util
        return util

    @property
    def last_utilization(self) -> float:
        """Most recent windowed busy fraction (0.0 before first window)."""
        return 0.0 if self._last is None else self._last

    def reset(self) -> None:
        """Clear window state."""
        self._busy = 0.0
        self._elapsed = 0.0
        self._last = None
