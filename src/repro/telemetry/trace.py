"""Preallocated time-series recorder used by the simulator and experiments.

A :class:`Trace` is a set of named float channels sampled on a common index
(one row per control period, or per tick, depending on the producer). Storage
is a single preallocated 2-D ``numpy`` array that doubles on demand, so
recording inside the simulation loop costs one row assignment — no Python
list churn in the hot path (per the HPC guides: preallocate, use views).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Trace"]


class Trace:
    """Append-only table of float channels with O(1) amortized row append.

    Parameters
    ----------
    channels:
        Ordered channel names. Names must be unique and non-empty.
    capacity:
        Initial row capacity (grows geometrically as needed).
    """

    def __init__(self, channels: Iterable[str], capacity: int = 256):
        names = list(channels)
        if not names:
            raise ConfigurationError("Trace requires at least one channel")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate channel names in {names!r}")
        if any(not isinstance(n, str) or not n for n in names):
            raise ConfigurationError("channel names must be non-empty strings")
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._names: tuple[str, ...] = tuple(names)
        self._index: dict[str, int] = {n: i for i, n in enumerate(names)}
        self._data = np.full((int(capacity), len(names)), np.nan, dtype=np.float64)
        self._len = 0

    # -- recording ---------------------------------------------------------

    def append(self, **values: float) -> None:
        """Append one row. Missing channels record as NaN; unknown names raise."""
        unknown = set(values) - set(self._names)
        if unknown:
            raise KeyError(f"unknown trace channels: {sorted(unknown)}")
        if self._len == self._data.shape[0]:
            self._grow()
        row = self._data[self._len]
        row[:] = np.nan
        for name, value in values.items():
            row[self._index[name]] = value
        self._len += 1

    def append_row(self, row: Mapping[str, float]) -> None:
        """Append one row from a mapping (same semantics as :meth:`append`)."""
        self.append(**row)

    def _grow(self) -> None:
        new = np.full((self._data.shape[0] * 2, self._data.shape[1]), np.nan)
        new[: self._len] = self._data[: self._len]
        self._data = new

    # -- access ------------------------------------------------------------

    @property
    def channels(self) -> tuple[str, ...]:
        """Ordered channel names."""
        return self._names

    def __len__(self) -> int:
        return self._len

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> np.ndarray:
        """Return a **view** of one channel's recorded samples."""
        try:
            col = self._index[name]
        except KeyError:
            raise KeyError(
                f"unknown channel {name!r}; available: {list(self._names)}"
            ) from None
        return self._data[: self._len, col]

    def column(self, name: str) -> np.ndarray:
        """Alias of ``trace[name]``."""
        return self[name]

    def tail(self, name: str, n: int) -> np.ndarray:
        """Return a view of the last ``n`` samples of ``name``."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self[name][max(0, self._len - n):]

    def as_array(self) -> np.ndarray:
        """Return a copy of all recorded rows, shape ``(len, n_channels)``."""
        return self._data[: self._len].copy()

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return ``{channel: copy-of-samples}`` for serialization/plotting."""
        return {n: self[n].copy() for n in self._names}

    def last(self, name: str) -> float:
        """Return the most recent sample of ``name``."""
        col = self[name]
        if col.size == 0:
            raise IndexError("trace is empty")
        return float(col[-1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace(rows={self._len}, channels={list(self._names)})"
