"""The :class:`Finding` record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``content`` is the stripped text of the offending physical line; the
    baseline matches on ``(rule, path, content)`` rather than the line
    number, so unrelated edits that merely shift a violation do not
    invalidate baseline entries.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    content: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "content": self.content,
        }
