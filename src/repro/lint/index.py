"""Project-wide symbol index for cross-file rules.

REP302 (call-site unit mismatch), REP401 (controller conformance) and
REP402 (registry conformance) need to see more than one file at a time: the
parameter names of a function defined elsewhere, the abstract surface of a
base class, the names a module imported. The index is built once over every
``.py`` file under the package roots implied by the linted paths, then
shared by all rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .names import build_aliases, dotted_name, resolve_name

__all__ = ["ClassInfo", "FunctionInfo", "ProjectIndex", "module_name_for"]


@dataclass(frozen=True)
class FunctionInfo:
    qualname: str
    params: tuple[str, ...]


@dataclass(frozen=True)
class ClassInfo:
    qualname: str
    bases: tuple[str, ...]
    methods: frozenset[str]
    abstract_methods: frozenset[str]


def module_name_for(path: Path) -> tuple[str, bool]:
    """Dotted module name for ``path`` plus whether it is a package init.

    Walks up while ``__init__.py`` siblings exist, so ``src/repro/sim/engine.py``
    maps to ``repro.sim.engine`` regardless of the checkout location.
    """
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(reversed(parts)), is_package


@dataclass
class ProjectIndex:
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module name -> local alias table (for resolving re-exports).
    module_aliases: dict[str, dict[str, str]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, roots: list[Path]) -> ProjectIndex:
        index = cls()
        seen: set[Path] = set()
        for root in roots:
            files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            for file in files:
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                try:
                    tree = ast.parse(resolved.read_text(encoding="utf-8"))
                except (OSError, SyntaxError):
                    continue  # the engine reports unreadable files itself
                index._index_module(resolved, tree)
        return index

    def _index_module(self, path: Path, tree: ast.Module) -> None:
        module, is_package = module_name_for(path)
        aliases = build_aliases(tree, module, is_package)
        self.module_aliases[module] = aliases
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, aliases, node)

    def _index_function(
        self, module: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        qualname = f"{module}.{node.name}"
        self.functions[qualname] = FunctionInfo(qualname, tuple(params))

    def _index_class(
        self, module: str, aliases: dict[str, str], node: ast.ClassDef
    ) -> None:
        bases = []
        for base in node.bases:
            resolved = resolve_name(base, aliases)
            if resolved is not None:
                bases.append(resolved)
        methods: set[str] = set()
        abstract: set[str] = set()
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.add(item.name)
            for deco in item.decorator_list:
                deco_name = dotted_name(deco)
                if deco_name and deco_name.split(".")[-1] in (
                    "abstractmethod", "abstractproperty",
                ):
                    abstract.add(item.name)
        qualname = f"{module}.{node.name}"
        self.classes[qualname] = ClassInfo(
            qualname, tuple(bases), frozenset(methods), frozenset(abstract)
        )

    # -- queries -----------------------------------------------------------

    def canonical_class(self, name: str, _depth: int = 0) -> str | None:
        """Follow re-export aliases until ``name`` names an indexed class.

        ``repro.control.PowerCappingController`` (imported via the package
        ``__init__``) resolves to ``repro.control.base.PowerCappingController``.
        """
        if _depth > 8 or not name:
            return None
        if name in self.classes:
            return name
        module, _, attr = name.rpartition(".")
        aliases = self.module_aliases.get(module)
        if aliases and attr in aliases and aliases[attr] != name:
            return self.canonical_class(aliases[attr], _depth + 1)
        return None

    def mro_chain(self, qualname: str) -> list[ClassInfo]:
        """Project-local base-class chain of ``qualname`` (cycle-safe)."""
        chain: list[ClassInfo] = []
        queue = [qualname]
        visited: set[str] = set()
        while queue:
            name = queue.pop(0)
            canonical = self.canonical_class(name)
            if canonical is None or canonical in visited:
                continue
            visited.add(canonical)
            info = self.classes[canonical]
            chain.append(info)
            queue.extend(info.bases)
        return chain

    def resolve_function(self, name: str, _depth: int = 0) -> FunctionInfo | None:
        """Find the :class:`FunctionInfo` for a canonical dotted name."""
        if _depth > 8 or not name:
            return None
        if name in self.functions:
            return self.functions[name]
        module, _, attr = name.rpartition(".")
        aliases = self.module_aliases.get(module)
        if aliases and attr in aliases and aliases[attr] != name:
            return self.resolve_function(aliases[attr], _depth + 1)
        return None
