"""Project-wide symbol index for cross-file rules.

REP302 (call-site unit mismatch), REP401 (controller conformance) and
REP402 (registry conformance) need to see more than one file at a time: the
parameter names of a function defined elsewhere, the abstract surface of a
base class, the names a module imported. The index is built once over every
``.py`` file under the package roots implied by the linted paths, then
shared by all rules.

On top of the symbol tables the index derives two whole-program graphs on
demand (both cached per run):

* :class:`ImportGraph` — every import edge between project modules, tagged
  with whether it is module-level or deferred (inside a function) and
  whether it lives under ``if TYPE_CHECKING:``. REP6xx layering and cycle
  detection run over it, and ``repro lint --format dot`` exports it.
* :class:`ProjectCallGraph` — a class-hierarchy-analysis call graph:
  direct calls, constructor calls, ``self.method()`` dispatch (including
  subclass overrides), and method calls through constructor-typed or
  annotation-typed locals and ``self`` attributes. It also records the
  thread/process/async *entrypoints* (``async def``, ``Thread(target=…)``,
  executor ``submit``/``map``, ``run_in_executor`` callables, ``do_*``
  handlers on ``BaseHTTPRequestHandler`` subclasses) that the REP5xx
  concurrency rules walk reachability from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .names import build_aliases, dotted_name, resolve_name

__all__ = [
    "CallRecord",
    "ClassInfo",
    "FunctionInfo",
    "FunctionNode",
    "ImportEdge",
    "ImportGraph",
    "ProjectCallGraph",
    "ProjectIndex",
    "RawImport",
    "module_name_for",
]


@dataclass(frozen=True)
class FunctionInfo:
    qualname: str
    params: tuple[str, ...]


@dataclass(frozen=True)
class ClassInfo:
    qualname: str
    bases: tuple[str, ...]
    methods: frozenset[str]
    abstract_methods: frozenset[str]


@dataclass(frozen=True)
class RawImport:
    """One import statement's target, as an absolute dotted name.

    Relative imports are resolved against the importing module at collection
    time; ``from pkg import name`` records ``pkg.name`` (the graph resolver
    falls back to the longest project-module prefix, so a symbol import
    lands on its defining module).
    """

    target: str
    lineno: int
    #: The import executes inside a function body, not at module import time.
    deferred: bool
    #: The import lives under ``if TYPE_CHECKING:`` (annotations only).
    type_checking: bool


def module_name_for(path: Path) -> tuple[str, bool]:
    """Dotted module name for ``path`` plus whether it is a package init.

    Walks up while ``__init__.py`` siblings exist, so ``src/repro/sim/engine.py``
    maps to ``repro.sim.engine`` regardless of the checkout location.
    """
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(reversed(parts)), is_package


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name is not None and name.split(".")[-1] == "TYPE_CHECKING"


def _collect_raw_imports(
    tree: ast.Module, module: str, is_package: bool
) -> list[RawImport]:
    """Every import in ``tree`` as absolute dotted targets with context flags."""
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    records: list[RawImport] = []

    def record(node: ast.Import | ast.ImportFrom, deferred: bool, tc: bool) -> None:
        if isinstance(node, ast.Import):
            for item in node.names:
                records.append(RawImport(item.name, node.lineno, deferred, tc))
            return
        if node.level:
            base_parts = package_parts[: len(package_parts) - (node.level - 1)]
            base = ".".join(base_parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        else:
            base = node.module or ""
        for item in node.names:
            if item.name == "*":
                target = base
            else:
                target = f"{base}.{item.name}" if base else item.name
            if target:
                records.append(RawImport(target, node.lineno, deferred, tc))

    def visit(node: ast.AST, deferred: bool, tc: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                record(child, deferred, tc)
                continue
            if isinstance(child, ast.If) and _is_type_checking_test(child.test):
                for sub in child.body:
                    visit_stmt(sub, deferred, True)
                for sub in child.orelse:
                    visit_stmt(sub, deferred, tc)
                continue
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            visit(child, child_deferred, tc)

    def visit_stmt(stmt: ast.stmt, deferred: bool, tc: bool) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            record(stmt, deferred, tc)
            return
        stmt_deferred = deferred or isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        visit(stmt, stmt_deferred, tc)

    visit(tree, False, False)
    return records


@dataclass
class ProjectIndex:
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module name -> local alias table (for resolving re-exports).
    module_aliases: dict[str, dict[str, str]] = field(default_factory=dict)
    #: module name -> every import it performs (absolute dotted targets).
    raw_imports: dict[str, list[RawImport]] = field(default_factory=dict)
    #: module name -> parsed AST (kept for the derived graphs).
    module_trees: dict[str, ast.Module] = field(default_factory=dict)
    _import_graph: "ImportGraph | None" = field(default=None, repr=False)
    _call_graph: "ProjectCallGraph | None" = field(default=None, repr=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, roots: list[Path]) -> ProjectIndex:
        index = cls()
        seen: set[Path] = set()
        for root in roots:
            files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            for file in files:
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                try:
                    tree = ast.parse(resolved.read_text(encoding="utf-8"))
                except (OSError, SyntaxError):
                    continue  # the engine reports unreadable files itself
                index._index_module(resolved, tree)
        return index

    def _index_module(self, path: Path, tree: ast.Module) -> None:
        module, is_package = module_name_for(path)
        aliases = build_aliases(tree, module, is_package)
        self.module_aliases[module] = aliases
        self.raw_imports[module] = _collect_raw_imports(tree, module, is_package)
        self.module_trees[module] = tree
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, aliases, node)

    def _index_function(
        self, module: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        qualname = f"{module}.{node.name}"
        self.functions[qualname] = FunctionInfo(qualname, tuple(params))

    def _index_class(
        self, module: str, aliases: dict[str, str], node: ast.ClassDef
    ) -> None:
        bases = []
        for base in node.bases:
            resolved = resolve_name(base, aliases)
            if resolved is not None:
                bases.append(resolved)
        methods: set[str] = set()
        abstract: set[str] = set()
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.add(item.name)
            for deco in item.decorator_list:
                deco_name = dotted_name(deco)
                if deco_name and deco_name.split(".")[-1] in (
                    "abstractmethod", "abstractproperty",
                ):
                    abstract.add(item.name)
        qualname = f"{module}.{node.name}"
        self.classes[qualname] = ClassInfo(
            qualname, tuple(bases), frozenset(methods), frozenset(abstract)
        )

    # -- queries -----------------------------------------------------------

    def canonical_class(self, name: str, _depth: int = 0) -> str | None:
        """Follow re-export aliases until ``name`` names an indexed class.

        ``repro.control.PowerCappingController`` (imported via the package
        ``__init__``) resolves to ``repro.control.base.PowerCappingController``.
        """
        if _depth > 8 or not name:
            return None
        if name in self.classes:
            return name
        module, _, attr = name.rpartition(".")
        aliases = self.module_aliases.get(module)
        if aliases and attr in aliases and aliases[attr] != name:
            return self.canonical_class(aliases[attr], _depth + 1)
        return None

    def mro_chain(self, qualname: str) -> list[ClassInfo]:
        """Project-local base-class chain of ``qualname`` (cycle-safe)."""
        chain: list[ClassInfo] = []
        queue = [qualname]
        visited: set[str] = set()
        while queue:
            name = queue.pop(0)
            canonical = self.canonical_class(name)
            if canonical is None or canonical in visited:
                continue
            visited.add(canonical)
            info = self.classes[canonical]
            chain.append(info)
            queue.extend(info.bases)
        return chain

    def resolve_function(self, name: str, _depth: int = 0) -> FunctionInfo | None:
        """Find the :class:`FunctionInfo` for a canonical dotted name."""
        if _depth > 8 or not name:
            return None
        if name in self.functions:
            return self.functions[name]
        module, _, attr = name.rpartition(".")
        aliases = self.module_aliases.get(module)
        if aliases and attr in aliases and aliases[attr] != name:
            return self.resolve_function(aliases[attr], _depth + 1)
        return None

    # -- derived graphs (cached per run) -----------------------------------

    def import_graph(self) -> "ImportGraph":
        if self._import_graph is None:
            self._import_graph = ImportGraph.build(self)
        return self._import_graph

    def call_graph(self) -> "ProjectCallGraph":
        if self._call_graph is None:
            self._call_graph = ProjectCallGraph.build(self)
        return self._call_graph


# -- the import graph ------------------------------------------------------


@dataclass(frozen=True)
class ImportEdge:
    source: str
    target: str
    lineno: int
    deferred: bool
    type_checking: bool


def _project_prefix(name: str, known: frozenset[str]) -> str | None:
    """The longest prefix of dotted ``name`` that is a project module."""
    parts = name.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix in known:
            return prefix
    return None


@dataclass
class ImportGraph:
    """Project-module import edges, module-level vs deferred, cycle-aware."""

    modules: tuple[str, ...]
    edges: tuple[ImportEdge, ...]
    _cycles: "tuple[tuple[str, ...], ...] | None" = field(default=None, repr=False)

    @classmethod
    def build(cls, index: ProjectIndex) -> "ImportGraph":
        modules = tuple(sorted(index.module_aliases))
        known = frozenset(modules)
        edges: list[ImportEdge] = []
        for module in modules:
            seen: set[tuple[str, int, bool, bool]] = set()
            for raw in index.raw_imports.get(module, []):
                target = _project_prefix(raw.target, known)
                if target is None or target == module:
                    continue
                key = (target, raw.lineno, raw.deferred, raw.type_checking)
                if key in seen:
                    continue
                seen.add(key)
                edges.append(
                    ImportEdge(
                        module, target, raw.lineno, raw.deferred, raw.type_checking
                    )
                )
        edges.sort(key=lambda e: (e.source, e.lineno, e.target))
        return cls(modules, tuple(edges))

    def edges_from(self, module: str) -> tuple[ImportEdge, ...]:
        return tuple(e for e in self.edges if e.source == module)

    def module_level_adjacency(self) -> dict[str, tuple[str, ...]]:
        """Import-time edges only (no deferred, no ``TYPE_CHECKING`` edges)."""
        adjacency: dict[str, set[str]] = {m: set() for m in self.modules}
        for edge in self.edges:
            if not edge.deferred and not edge.type_checking:
                adjacency[edge.source].add(edge.target)
        return {m: tuple(sorted(t)) for m, t in adjacency.items()}

    def cycles(self) -> tuple[tuple[str, ...], ...]:
        """Import-time strongly connected components of size > 1 (sorted).

        Deferred imports break cycles at runtime and are excluded, matching
        how the interpreter actually loads the modules.
        """
        if self._cycles is not None:
            return self._cycles
        adjacency = self.module_level_adjacency()
        # Iterative Tarjan: deterministic over the sorted module order.
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[tuple[str, ...]] = []
        counter = 0
        for root in self.modules:
            if root in index_of:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                children = adjacency.get(node, ())
                recursed = False
                for i in range(child_i, len(children)):
                    child = children[i]
                    if child not in index_of:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index_of[child])
                if recursed:
                    continue
                if low[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in adjacency.get(node, ()):
                        sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        self._cycles = tuple(sorted(sccs))
        return self._cycles

    def cycle_of(self, module: str) -> tuple[str, ...] | None:
        for component in self.cycles():
            if module in component:
                return component
        return None

    def to_dot(self, contract: object = None) -> str:
        """GraphViz export; layer clusters when a contract is provided.

        ``contract`` duck-types :class:`repro.lint.layers.LayerContract`
        (kept loose to avoid an import cycle inside the lint package).
        """
        lines = [
            "digraph repro_imports {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10, fontname="monospace"];',
        ]
        clustered: set[str] = set()
        layers = getattr(contract, "layers", ()) if contract is not None else ()
        for i, layer in enumerate(layers):
            members = sorted(
                m
                for m in self.modules
                if getattr(contract, "layer_of", lambda _m: None)(m) is layer
            )
            if not members:
                continue
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f'    label="{layer.name}";')
            for member in members:
                lines.append(f'    "{member}";')
                clustered.add(member)
            lines.append("  }")
        for module in self.modules:
            if module not in clustered:
                lines.append(f'  "{module}";')
        seen: set[tuple[str, str, bool]] = set()
        for edge in self.edges:
            if edge.type_checking:
                continue
            key = (edge.source, edge.target, edge.deferred)
            if key in seen:
                continue
            seen.add(key)
            style = " [style=dashed]" if edge.deferred else ""
            lines.append(f'  "{edge.source}" -> "{edge.target}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


# -- the call graph --------------------------------------------------------


@dataclass(frozen=True)
class CallRecord:
    """One call expression inside a function body, partially resolved."""

    lineno: int
    col: int
    #: Project function/method qualnames this call may dispatch to (CHA).
    targets: tuple[str, ...] = ()
    #: Resolved dotted name when the callee is not a project symbol.
    external: str | None = None
    #: Bare attribute name when the receiver's type is unknown.
    attr: str | None = None


@dataclass(frozen=True)
class FunctionNode:
    """One project function or method with its outgoing calls."""

    qualname: str
    module: str
    lineno: int
    is_async: bool
    is_generator: bool
    calls: tuple[CallRecord, ...]


_THREAD_FACTORIES = frozenset({"threading.Thread", "multiprocessing.Process"})
_EXECUTOR_CLASSES = {
    "concurrent.futures.ProcessPoolExecutor": "worker",
    "concurrent.futures.process.ProcessPoolExecutor": "worker",
    "concurrent.futures.ThreadPoolExecutor": "thread",
    "concurrent.futures.thread.ThreadPoolExecutor": "thread",
}
_HTTP_HANDLER_BASES = frozenset(
    {"http.server.BaseHTTPRequestHandler", "http.server.SimpleHTTPRequestHandler"}
)


class _FunctionScanner:
    """Resolve one function body into call records and entrypoint targets."""

    def __init__(
        self,
        graph: "ProjectCallGraph",
        index: ProjectIndex,
        module: str,
        aliases: dict[str, str],
        class_qual: str | None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.module = module
        self.aliases = aliases
        self.class_qual = class_qual
        #: local name -> project class qualname (constructor/annotation typed)
        self.local_classes: dict[str, str] = {}
        #: local name -> external dotted type ("concurrent.futures.ProcessPoolExecutor")
        self.local_external: dict[str, str] = {}
        self.calls: list[CallRecord] = []
        #: (target qualname, kind) references handed to threads/executors.
        self.spawned: list[tuple[str, str]] = []

    # -- typing helpers ----------------------------------------------------

    def _canonical_class(self, name: str) -> str | None:
        """Resolve a (possibly module-local bare) name to a project class."""
        cls = self.index.canonical_class(name)
        if cls is None and "." not in name:
            cls = self.index.canonical_class(f"{self.module}.{name}")
        return cls

    def _class_of_expr(self, node: ast.expr) -> str | None:
        """Project class qualname an expression statically evaluates to."""
        if isinstance(node, ast.Call):
            resolved = resolve_name(node.func, self.aliases)
            if resolved is not None:
                return self._canonical_class(resolved)
            return None
        resolved = resolve_name(node, self.aliases)
        if resolved is not None:
            return self._canonical_class(resolved)
        return None

    def _external_of_expr(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):
            resolved = resolve_name(node.func, self.aliases)
            if resolved is not None and self._canonical_class(resolved) is None:
                return resolved
        return None

    def bind_local(self, name: str, value: ast.expr) -> None:
        cls = self._class_of_expr(value)
        if cls is not None:
            self.local_classes[name] = cls
            return
        external = self._external_of_expr(value)
        if external is not None:
            self.local_external[name] = external

    def bind_annotation(self, name: str, annotation: ast.expr | None) -> None:
        if annotation is None:
            return
        target: ast.expr = annotation
        if isinstance(target, ast.Constant) and isinstance(target.value, str):
            try:
                target = ast.parse(target.value, mode="eval").body
            except SyntaxError:
                return
        resolved = resolve_name(target, self.aliases)
        if resolved is None:
            return
        cls = self._canonical_class(resolved)
        if cls is not None:
            self.local_classes[name] = cls
        else:
            self.local_external[name] = resolved

    def _method_targets(self, class_qual: str, method: str) -> tuple[str, ...]:
        """The defining method plus subclass overrides (CHA dispatch set)."""
        targets: list[str] = []
        for info in self.index.mro_chain(class_qual):
            if method in info.methods:
                targets.append(f"{info.qualname}.{method}")
                break
        for sub in self.graph.subclasses_of(class_qual):
            if method in self.index.classes[sub].methods:
                name = f"{sub}.{method}"
                if name not in targets:
                    targets.append(name)
        return tuple(targets)

    def _targets_for_name(self, resolved: str) -> tuple[str, ...]:
        """Project dispatch targets for a resolved dotted (or bare) name."""
        candidates = [resolved]
        if "." not in resolved:
            candidates.append(f"{self.module}.{resolved}")
        for name in candidates:
            info = self.index.resolve_function(name)
            if info is not None:
                return (info.qualname,)
            cls = self.index.canonical_class(name)
            if cls is not None:
                init = self._method_targets(cls, "__init__")
                return init if init else (cls,)
            head, _, attr = name.rpartition(".")
            head_cls = self.index.canonical_class(head) if head else None
            if head_cls is not None:
                targets = self._method_targets(head_cls, attr)
                if targets:
                    return targets
        return ()

    def resolve_reference(self, node: ast.expr) -> tuple[str, ...]:
        """Project qualnames a non-call reference (callback) points at."""
        if isinstance(node, ast.Attribute):
            receiver_cls = self._receiver_class(node.value)
            if receiver_cls is not None:
                targets = self._method_targets(receiver_cls, node.attr)
                if targets:
                    return targets
        resolved = resolve_name(node, self.aliases)
        if resolved is not None:
            return self._targets_for_name(resolved)
        return ()

    def _receiver_class(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.class_qual is not None:
                return self.class_qual
            return self.local_classes.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_qual is not None
        ):
            return self.graph.attr_class(self.class_qual, node.attr)
        return None

    # -- the walk ----------------------------------------------------------

    def scan(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.bind_annotation(arg.arg, arg.annotation)
        for stmt in fn.body:
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.bind_local(target.id, node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            self.bind_annotation(node.target.id, node.annotation)
            if node.value is not None:
                self.bind_local(node.target.id, node.value)
        elif isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    self.bind_local(item.optional_vars.id, item.context_expr)
        elif isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            # Nested function bodies count as part of this function: their
            # calls run when the closure runs, which (for the REP5xx rules)
            # is attributed to the defining scope.
            self._walk(child)

    def _record_call(self, node: ast.Call) -> None:
        self._detect_spawn(node)
        # Receiver typing first: ``service.feed_line(...)`` on a
        # constructor/annotation-typed local must dispatch into the
        # project class, not fall through to a dotted "external" name.
        if isinstance(node.func, ast.Attribute):
            receiver_cls = self._receiver_class(node.func.value)
            if receiver_cls is not None:
                targets = self._method_targets(receiver_cls, node.func.attr)
                if targets:
                    self.calls.append(
                        CallRecord(node.lineno, node.col_offset, targets=targets)
                    )
                    return
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        resolved = resolve_name(node.func, self.aliases)
        if resolved is not None:
            targets = self._targets_for_name(resolved)
            if targets:
                self.calls.append(
                    CallRecord(node.lineno, node.col_offset, targets=targets)
                )
                return
            # Unresolvable receivers keep the bare attribute too, so rules
            # matching attribute names (``.read_text``) still see them.
            self.calls.append(
                CallRecord(node.lineno, node.col_offset, external=resolved, attr=attr)
            )
            return
        if attr is not None:
            self.calls.append(CallRecord(node.lineno, node.col_offset, attr=attr))

    def _detect_spawn(self, node: ast.Call) -> None:
        """Record callables handed to threads, processes, and executors."""
        resolved = resolve_name(node.func, self.aliases)
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        # Thread(target=fn) / Process(target=fn) — including via a
        # multiprocessing context object (ctx.Process(target=fn)).
        if resolved in _THREAD_FACTORIES or attr in ("Thread", "Process"):
            kind = "worker" if (resolved or attr or "").endswith("Process") else "thread"
            for kw in node.keywords:
                if kw.arg == "target":
                    for target in self.resolve_reference(kw.value):
                        self.spawned.append((target, kind))
            return
        # loop.run_in_executor(executor, fn, *args) / asyncio.to_thread(fn, …)
        if attr == "run_in_executor" and len(node.args) >= 2:
            for target in self.resolve_reference(node.args[1]):
                self.spawned.append((target, "thread"))
            return
        if resolved == "asyncio.to_thread" and node.args:
            for target in self.resolve_reference(node.args[0]):
                self.spawned.append((target, "thread"))
            return
        # pool.submit(fn, *args) / pool.map(fn, it) on a typed executor.
        if attr in ("submit", "map") and node.args:
            receiver = node.func.value if isinstance(node.func, ast.Attribute) else None
            external = (
                self.local_external.get(receiver.id)
                if isinstance(receiver, ast.Name)
                else None
            )
            kind = _EXECUTOR_CLASSES.get(external or "")
            if kind is not None:
                for target in self.resolve_reference(node.args[0]):
                    self.spawned.append((target, kind))


def _contains_yield(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for generator functions (nested defs excluded)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@dataclass
class ProjectCallGraph:
    """CHA call graph over every indexed function, with entrypoint registry."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)
    #: (qualname, kind) pairs; kind in {"async", "thread", "worker"}.
    entrypoints: tuple[tuple[str, str], ...] = ()
    _subclasses: dict[str, tuple[str, ...]] = field(default_factory=dict, repr=False)
    _attr_types: dict[str, dict[str, str]] = field(default_factory=dict, repr=False)
    _reachable: "frozenset[str] | None" = field(default=None, repr=False)

    def subclasses_of(self, class_qual: str) -> tuple[str, ...]:
        return self._subclasses.get(class_qual, ())

    def attr_class(self, class_qual: str, attr: str) -> str | None:
        """The project class ``self.<attr>`` holds, inferred from the body."""
        return self._attr_types.get(class_qual, {}).get(attr)

    @classmethod
    def build(cls, index: ProjectIndex) -> "ProjectCallGraph":
        graph = cls()
        graph._build_hierarchy(index)
        entrypoints: list[tuple[str, str]] = []
        for module in sorted(index.module_trees):
            tree = index.module_trees[module]
            aliases = index.module_aliases[module]
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph._add_function(
                        index, module, aliases, None, node, entrypoints
                    )
                elif isinstance(node, ast.ClassDef):
                    class_qual = f"{module}.{node.name}"
                    handler = graph._is_http_handler(index, class_qual)
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            qual = graph._add_function(
                                index, module, aliases, class_qual, item, entrypoints
                            )
                            if handler and item.name.startswith("do_"):
                                entrypoints.append((qual, "thread"))
        graph.entrypoints = tuple(sorted(set(entrypoints)))
        return graph

    def _build_hierarchy(self, index: ProjectIndex) -> None:
        subclasses: dict[str, set[str]] = {}
        for qual, info in index.classes.items():
            module = qual.rpartition(".")[0]
            for base in info.bases:
                canonical = index.canonical_class(base)
                if canonical is None and "." not in base:
                    # Bare base name: a class defined in the same module.
                    canonical = index.canonical_class(f"{module}.{base}")
                if canonical is not None:
                    subclasses.setdefault(canonical, set()).add(qual)
        # Transitive closure so CHA dispatch sees indirect subclasses too.
        changed = True
        while changed:
            changed = False
            for base, subs in subclasses.items():
                extra: set[str] = set()
                for sub in subs:
                    extra |= subclasses.get(sub, set())
                if not extra <= subs:
                    subs |= extra
                    changed = True
        self._subclasses = {b: tuple(sorted(s)) for b, s in subclasses.items()}
        # self.<attr> types from constructor/annotation assignments.
        for module, tree in index.module_trees.items():
            aliases = index.module_aliases[module]
            for node in tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                class_qual = f"{module}.{node.name}"
                attr_types: dict[str, str] = {}
                for item in ast.walk(node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    annotation: ast.expr | None = None
                    if isinstance(item, ast.Assign) and len(item.targets) == 1:
                        target, value = item.targets[0], item.value
                    elif isinstance(item, ast.AnnAssign):
                        target, value = item.target, item.value
                        annotation = item.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    resolved: str | None = None
                    if isinstance(value, ast.Call):
                        name = resolve_name(value.func, aliases)
                        if name is not None:
                            resolved = index.canonical_class(name)
                    if resolved is None and annotation is not None:
                        name = resolve_name(annotation, aliases)
                        if name is not None:
                            resolved = index.canonical_class(name)
                    if resolved is not None and target.attr not in attr_types:
                        attr_types[target.attr] = resolved
                if attr_types:
                    self._attr_types[class_qual] = attr_types

    def _is_http_handler(self, index: ProjectIndex, class_qual: str) -> bool:
        for info in index.mro_chain(class_qual):
            if any(base in _HTTP_HANDLER_BASES for base in info.bases):
                return True
        return False

    def _add_function(
        self,
        index: ProjectIndex,
        module: str,
        aliases: dict[str, str],
        class_qual: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        entrypoints: list[tuple[str, str]],
    ) -> str:
        qualname = (
            f"{class_qual}.{node.name}" if class_qual else f"{module}.{node.name}"
        )
        scanner = _FunctionScanner(self, index, module, aliases, class_qual)
        scanner.scan(node)
        self.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=module,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            is_generator=_contains_yield(node),
            calls=tuple(scanner.calls),
        )
        if isinstance(node, ast.AsyncFunctionDef):
            entrypoints.append((qualname, "async"))
        entrypoints.extend(scanner.spawned)
        return qualname

    def reachable_from_entrypoints(self) -> frozenset[str]:
        """Every function reachable (transitively) from any entrypoint."""
        if self._reachable is not None:
            return self._reachable
        seen: set[str] = set()
        queue = [q for q, _kind in self.entrypoints if q in self.functions]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            node = self.functions.get(qual)
            if node is None:
                continue
            for record in node.calls:
                for target in record.targets:
                    if target not in seen and target in self.functions:
                        queue.append(target)
        self._reachable = frozenset(seen)
        return self._reachable

    def entrypoint_kinds(self, qualname: str) -> tuple[str, ...]:
        return tuple(
            sorted({kind for qual, kind in self.entrypoints if qual == qualname})
        )
