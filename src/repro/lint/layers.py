"""The declared architecture-layer contract behind the REP6xx rules.

The contract lives in ``pyproject.toml``::

    [tool.repro-lint]
    stdlib-only = ["repro.lint"]

    [[tool.repro-lint.layers]]
    name = "kernel"
    modules = ["repro.units", "repro.errors", "repro.rng"]

    [[tool.repro-lint.layers]]
    name = "platform"
    modules = ["repro.telemetry", "repro.control"]

Layers are ordered lowest-first; a module may import same-layer or
lower-layer modules, never higher ones. Module entries are prefixes:
``repro.control`` covers ``repro.control.base`` and every other
submodule. Modules not matched by any prefix are unconstrained (the
root ``repro`` package and ``__main__`` stay unlisted on purpose).

``stdlib-only`` modules may import only the standard library and other
project modules — a third-party import (numpy from ``repro.lint``) is a
REP603 finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Layer",
    "LayerContract",
    "LayerContractError",
    "discover_layer_contract",
    "load_layer_contract",
]


class LayerContractError(ValueError):
    """The contract itself is malformed or references unknown modules."""


@dataclass(frozen=True)
class Layer:
    name: str
    #: Module-name prefixes; ``repro.control`` also covers submodules.
    modules: tuple[str, ...]


@dataclass(frozen=True)
class LayerContract:
    """Ordered layers (lowest first) plus the stdlib-only module set."""

    layers: tuple[Layer, ...]
    stdlib_only: tuple[str, ...] = ()
    source: Path | None = None

    def _matches(self, module: str, prefix: str) -> bool:
        return module == prefix or module.startswith(prefix + ".")

    def layer_index_of(self, module: str) -> int | None:
        """Index of the layer owning ``module`` (longest prefix wins)."""
        best: tuple[int, int] | None = None  # (prefix length, layer index)
        for i, layer in enumerate(self.layers):
            for prefix in layer.modules:
                if self._matches(module, prefix):
                    key = (len(prefix), i)
                    if best is None or key > best:
                        best = key
        return None if best is None else best[1]

    def layer_of(self, module: str) -> Layer | None:
        index = self.layer_index_of(module)
        return None if index is None else self.layers[index]

    def is_stdlib_only(self, module: str) -> bool:
        return any(self._matches(module, prefix) for prefix in self.stdlib_only)

    def validate_against(self, known_modules: frozenset[str]) -> None:
        """Every declared prefix must match at least one indexed module."""

        def known(prefix: str) -> bool:
            return any(self._matches(module, prefix) for module in known_modules)

        unknown = [
            prefix
            for layer in self.layers
            for prefix in layer.modules
            if not known(prefix)
        ]
        unknown += [prefix for prefix in self.stdlib_only if not known(prefix)]
        if unknown:
            where = f" in {self.source}" if self.source else ""
            raise LayerContractError(
                "layer contract%s names modules that do not exist: %s"
                % (where, ", ".join(sorted(set(unknown))))
            )


def _parse_contract(data: object, source: Path) -> LayerContract | None:
    if not isinstance(data, dict):
        return None
    section = data.get("tool", {})
    section = section.get("repro-lint", {}) if isinstance(section, dict) else {}
    if not isinstance(section, dict) or (
        "layers" not in section and "stdlib-only" not in section
    ):
        return None
    raw_layers = section.get("layers", [])
    if not isinstance(raw_layers, list):
        raise LayerContractError(f"{source}: [tool.repro-lint] layers must be a list")
    layers: list[Layer] = []
    for entry in raw_layers:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("name"), str)
            or not isinstance(entry.get("modules"), list)
            or not all(isinstance(m, str) and m for m in entry["modules"])
        ):
            raise LayerContractError(
                f"{source}: each [[tool.repro-lint.layers]] entry needs a "
                "string 'name' and a non-empty string list 'modules'"
            )
        layers.append(Layer(entry["name"], tuple(entry["modules"])))
    raw_stdlib = section.get("stdlib-only", [])
    if not isinstance(raw_stdlib, list) or not all(
        isinstance(m, str) and m for m in raw_stdlib
    ):
        raise LayerContractError(
            f"{source}: [tool.repro-lint] stdlib-only must be a string list"
        )
    return LayerContract(tuple(layers), tuple(raw_stdlib), source)


def load_layer_contract(path: Path) -> LayerContract | None:
    """Parse the ``[tool.repro-lint]`` contract out of a pyproject file.

    Returns ``None`` when the file has no contract section; raises
    :class:`LayerContractError` on a present-but-malformed one.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py<3.11: layering checks skip
        return None
    try:
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    except OSError:
        return None
    except tomllib.TOMLDecodeError as exc:
        raise LayerContractError(f"{path}: invalid TOML: {exc}") from exc
    return _parse_contract(data, path)


def discover_layer_contract(roots: list[Path]) -> LayerContract | None:
    """Walk up from the first linted root to the nearest contract.

    Starting at the package root of the first path (so fixture packages
    under ``tests/`` find their own ``pyproject.toml``, not the repo's),
    each ancestor is probed for a ``pyproject.toml`` with a
    ``[tool.repro-lint]`` section; the first hit wins.
    """
    for root in roots:
        base = root.resolve()
        if base.is_file():
            base = base.parent
        for candidate in (base, *base.parents):
            pyproject = candidate / "pyproject.toml"
            if pyproject.is_file():
                contract = load_layer_contract(pyproject)
                if contract is not None:
                    return contract
        break  # only the first root anchors discovery
    return None
