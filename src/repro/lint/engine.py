"""The lint engine: file discovery, rule dispatch, suppression filtering.

``run_lint`` is the single entry point used by the CLI and the tests: it
indexes the packages containing the requested paths, runs every selected
rule over every requested file, filters suppressed findings, and counts
``# type: ignore`` comments for the strict-typing budget gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .context import ModuleContext, iter_scoped
from .findings import Finding
from .index import ProjectIndex, module_name_for
from .layers import LayerContract
from .names import build_aliases
from .rules import ALL_RULES, Rule
from .suppress import collect_suppressions

__all__ = [
    "LintConfig",
    "LintResult",
    "LintUsageError",
    "discover_files",
    "run_lint",
]

_TYPE_IGNORE = re.compile(r"#\s*type:\s*ignore\b")


class LintUsageError(Exception):
    """The engine was invoked unusably (bad path, unknown rule selection)."""


def _default_known_units() -> dict[str, str]:
    # Hardware frequency-domain bounds are MHz by package convention
    # (see units.py and hardware/device.py); the names carry no suffix.
    return {"f_max": "mhz", "f_min": "mhz"}


def _default_sanctioned_modules() -> dict[str, tuple[str, ...]]:
    # The fast engine is *allowed* to relax float semantics (fused and
    # batched reductions, factorization reuse); its correctness gate is
    # the statistical-equivalence suite (repro.equiv), not bitwise rules.
    return {"repro.fast": ("REP2",)}


@dataclass(frozen=True)
class LintConfig:
    """Project policy the rules consult (defaults match this repository)."""

    #: Modules whose wall-clock reads are timing infrastructure, excluded
    #: from digests by construction (see runner.TIMING_KEYS).
    wallclock_exempt: tuple[str, ...] = (
        "repro.benchcompare", "repro.cli", "repro.lint", "repro.perf",
        "repro.profiling", "repro.report", "repro.runner",
    )
    #: The deterministic-RNG implementation itself.
    rng_impl_modules: tuple[str, ...] = ("repro.rng",)
    #: The unit-converter implementation itself.
    units_impl_modules: tuple[str, ...] = ("repro.units",)
    registry_modules: tuple[str, ...] = ("repro.experiments.registry",)
    registry_names: tuple[str, ...] = ("EXPERIMENTS",)
    #: The atomic-write implementation itself (REP107's sanctioned sink).
    atomicio_exempt: tuple[str, ...] = ("repro.atomicio",)
    controller_base: str = "repro.control.base.PowerCappingController"
    #: Unsuffixed names with a conventional unit.
    known_name_units: dict[str, str] = field(default_factory=_default_known_units)
    #: Rule-id prefixes to run (empty = all rules).
    select: tuple[str, ...] = ()
    #: Module prefixes sanctioned to violate specific rule families.
    #: Unlike ``# repro: noqa`` suppressions (per-line, baseline-audited),
    #: a sanction is a *policy* statement: every module under the prefix
    #: may trigger the listed rule-id prefixes by design.
    sanctioned_modules: dict[str, tuple[str, ...]] = field(
        default_factory=_default_sanctioned_modules
    )
    #: Declared architecture layers (REP601/REP603); ``None`` disables the
    #: contract-backed checks. The CLI discovers it from the nearest
    #: ``pyproject.toml`` with a ``[tool.repro-lint]`` section.
    layer_contract: LayerContract | None = None

    def sanctioned_rules_for(self, module: str) -> tuple[str, ...]:
        """Rule-id prefixes waived for ``module`` (package-prefix match)."""
        waived: list[str] = []
        for prefix, tokens in self.sanctioned_modules.items():
            for token in tokens:
                if not re.match(r"^REP\d{0,3}$", token):
                    raise LintUsageError(
                        f"invalid sanctioned rule selector {token!r} "
                        f"for module prefix {prefix!r}"
                    )
            if module == prefix or module.startswith(prefix + "."):
                waived.extend(tokens)
        return tuple(waived)

    def active_rules(self) -> tuple[Rule, ...]:
        if not self.select:
            return ALL_RULES
        for token in self.select:
            if not re.match(r"^REP\d{0,3}$", token):
                raise LintUsageError(f"invalid rule selector {token!r}")
            if not any(rule.id.startswith(token) for rule in ALL_RULES):
                raise LintUsageError(f"rule selector {token!r} matches no rules")
        return tuple(
            rule
            for rule in ALL_RULES
            if any(rule.id.startswith(token) for token in self.select)
        )


@dataclass
class LintResult:
    """Everything one engine run produced (pre-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: (path, line) of every type-ignore comment seen.
    type_ignores: list[tuple[str, int]] = field(default_factory=list)


def _package_root(path: Path) -> Path:
    """Topmost directory of the package containing ``path`` (for indexing)."""
    parent = path if path.is_dir() else path.parent
    while (parent / "__init__.py").exists() and (
        parent.parent / "__init__.py"
    ).exists():
        parent = parent.parent
    if (parent / "__init__.py").exists():
        return parent
    return path if path.is_dir() else path.parent


def _collect_set_names(tree: ast.Module) -> dict[ast.AST, set[str]]:
    """Names assigned a set literal/call, per enclosing scope."""

    def is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return is_set_expr(node.left) or is_set_expr(node.right)
        return False

    names: dict[ast.AST, set[str]] = {}
    for scope, node in iter_scoped(tree):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and value is not None
            and is_set_expr(value)
        ):
            names.setdefault(scope, set()).add(target.id)
    return names


def _display_path(path: Path) -> str:
    """Path as reported in findings and matched by the baseline (posix)."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_file(
    path: Path, index: ProjectIndex, config: LintConfig
) -> tuple[list[Finding], list[tuple[str, int]]]:
    """Lint one file; returns (findings, type-ignore locations)."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="REP000",
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
                content="",
            )
        ], []

    module, is_package = module_name_for(path)
    ctx = ModuleContext(
        path=display,
        module=module,
        tree=tree,
        lines=source.splitlines(),
        aliases=build_aliases(tree, module, is_package),
        index=index,
        config=config,
        set_names=_collect_set_names(tree),
    )
    suppressions = collect_suppressions(source, display)
    sanctioned = config.sanctioned_rules_for(module)
    findings: list[Finding] = list(suppressions.errors)
    for rule in config.active_rules():
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding.rule, finding.line):
                continue
            if any(finding.rule.startswith(tok) for tok in sanctioned):
                continue
            findings.append(finding)

    ignores = [
        (display, tok.start[0])
        for tok in tokenize.generate_tokens(io.StringIO(source).readline)
        if tok.type == tokenize.COMMENT and _TYPE_IGNORE.search(tok.string)
    ]
    return findings, ignores


def discover_files(paths: list[str | Path]) -> tuple[list[Path], list[Path]]:
    """Expand ``paths`` into (unique lintable files, package index roots)."""
    files: list[Path] = []
    roots: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintUsageError(f"no such file or directory: {path}")
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintUsageError(f"not a python file: {path}")
        roots.append(_package_root(path))

    seen: set[Path] = set()
    unique_files = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique_files.append(file)
    return unique_files, roots


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
    restrict: set[Path] | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) under ``config``.

    Raises :class:`LintUsageError` for nonexistent paths or invalid rule
    selections; per-file syntax errors become ``REP000`` findings instead,
    so one broken file cannot mask findings elsewhere.

    ``restrict`` (resolved paths) limits which files are *checked* —
    the cross-file index and its derived import/call graphs still cover
    the whole program, so ``--changed`` scoping never weakens the
    whole-program rules, it only narrows where findings are reported.
    """
    config = config or LintConfig()
    config.active_rules()  # validate the selection eagerly
    config.sanctioned_rules_for("")  # validate the sanction tokens eagerly
    unique_files, roots = discover_files(paths)

    index = ProjectIndex.build(sorted(set(r.resolve() for r in roots)))
    if config.layer_contract is not None:
        try:
            config.layer_contract.validate_against(
                frozenset(index.module_aliases)
            )
        except ValueError as exc:
            raise LintUsageError(str(exc)) from exc
    if restrict is not None:
        unique_files = [f for f in unique_files if f.resolve() in restrict]
    result = LintResult()
    for file in unique_files:
        findings, ignores = lint_file(file, index, config)
        result.findings.extend(findings)
        result.type_ignores.extend(ignores)
        result.files_checked += 1
    # Fully deterministic ordering — (path, line, col, rule) — so json
    # output and baselines diff cleanly across runs and platforms.
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
