"""Per-module analysis context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .names import resolve_name, unit_of_identifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from .engine import LintConfig
    from .index import ProjectIndex

__all__ = ["ModuleContext", "iter_scoped"]


def iter_scoped(tree: ast.Module) -> "list[tuple[ast.AST, ast.AST]]":
    """Flatten ``tree`` into ``(scope, node)`` pairs.

    ``scope`` is the nearest enclosing function (or the module itself) —
    the granularity at which local set-valued names are tracked.
    """
    pairs: list[tuple[ast.AST, ast.AST]] = []
    stack: list[tuple[ast.AST, ast.AST]] = [(tree, tree)]
    while stack:
        scope, node = stack.pop()
        pairs.append((scope, node))
        child_scope = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            else scope
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child_scope, child))
    return pairs

#: Builtins that pass their iterable argument through order-sensitively.
_ORDER_PASSTHROUGH = frozenset({"enumerate", "reversed", "map", "filter", "zip"})

#: Set-producing binary operators (union/intersection/difference/symdiff).
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    path: str
    module: str
    tree: ast.Module
    lines: list[str]
    aliases: dict[str, str]
    index: "ProjectIndex"
    config: "LintConfig"
    #: function-scope names statically known to hold sets (see engine).
    set_names: dict[ast.AST, set[str]] = field(default_factory=dict)

    # -- generic helpers ---------------------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        return resolve_name(node, self.aliases)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_modules(self, prefixes: tuple[str, ...]) -> bool:
        """True when this module is one of ``prefixes`` or nested under one."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    # -- unordered-container inference ------------------------------------

    def is_unordered(self, node: ast.expr, scope: ast.AST | None = None) -> bool:
        """True when ``node`` statically evaluates to a hash-ordered container.

        Recognises set literals/comprehensions, ``set()``/``frozenset()``
        calls, set-algebra expressions over those, order-preserving builtins
        wrapping one (``enumerate(set(...))``), and local names the engine
        pre-scanned as set-valued in ``scope``. ``sorted(...)`` launders the
        order and is never unordered.
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_unordered(node.left, scope) or self.is_unordered(
                node.right, scope
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in ("set", "frozenset"):
                return True
            if name in _ORDER_PASSTHROUGH:
                return any(self.is_unordered(arg, scope) for arg in node.args)
            return False
        if isinstance(node, ast.Name) and scope is not None:
            return node.id in self.set_names.get(scope, set())
        return False

    # -- unit inference ----------------------------------------------------

    def unit_of(self, node: ast.expr) -> str | None:
        """The physical unit ``node`` carries, inferred from naming.

        Handles suffixed names (``power_w``), suffixed attributes
        (``self.energy_uj``), calls to suffixed functions
        (``power_usage_mw(...)``), and the configured known-attribute table
        (``domain.f_max`` is MHz by package convention).
        """
        if isinstance(node, ast.Name):
            unit = unit_of_identifier(node.id)
            if unit is None:
                unit = self.config.known_name_units.get(node.id)
            return unit
        if isinstance(node, ast.Attribute):
            unit = unit_of_identifier(node.attr)
            if unit is None:
                unit = self.config.known_name_units.get(node.attr)
            return unit
        if isinstance(node, ast.Call):
            return self.unit_of(node.func)
        return None
