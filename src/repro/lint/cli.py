"""``repro lint`` command implementation.

Exit codes follow the ``bench-compare`` convention:

* ``0`` — clean (no non-baselined findings, budgets respected);
* ``1`` — findings (new violations, stale baseline entries, or a
  ``# type: ignore`` count above the budget);
* ``2`` — usage error (bad path, bad selector, unreadable baseline): the
  check could not run, which CI must distinguish from "ran and failed".
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .baseline import Baseline, BaselineFormatError, load_baseline, write_baseline
from .engine import LintConfig, LintUsageError, discover_files, run_lint
from .index import ProjectIndex
from .layers import LayerContractError, discover_layer_contract
from .rules import ALL_RULES

__all__ = ["add_lint_arguments", "run_lint_cli"]

DEFAULT_BASELINE = ".repro-lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of triaged findings (default: {DEFAULT_BASELINE} "
             "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="triage: write all current findings to the baseline file "
             "(keeps existing justifications) and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids or prefixes to run, e.g. REP1,REP303",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "dot"), default="text",
        help="output format (default text); 'dot' emits the project import "
             "graph (GraphViz) instead of findings",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="only report findings in files changed vs the given git ref "
             "(default HEAD) plus untracked files; cross-file indexes are "
             "still built whole-program",
    )
    parser.add_argument(
        "--max-type-ignores", type=int, default=None, metavar="N",
        help="fail when more than N '# type: ignore' comments exist "
             "(the strict-typing budget; default: not checked)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _changed_files(base: str) -> set[Path]:
    """Resolved paths of .py files changed vs ``base`` plus untracked ones."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
            detail = f": {exc.stderr.strip()}"
        raise LintUsageError(f"--changed {base}: git failed{detail}") from exc
    names = diff.stdout.splitlines() + untracked.stdout.splitlines()
    return {Path(n).resolve() for n in names if n.endswith(".py")}


def _print_rule_catalogue() -> None:
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.title}")
        doc = (rule.__doc__ or "").strip()
        for line in doc.splitlines()[1:]:
            print(f"    {line.strip()}" if line.strip() else "")
        if rule.hint:
            print(f"    fix: {rule.hint}")
        print()


def run_lint_cli(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rule_catalogue()
        return 0

    select: tuple[str, ...] = ()
    if args.select:
        select = tuple(s.strip() for s in args.select.split(",") if s.strip())
    try:
        contract = discover_layer_contract([Path(p) for p in args.paths])
    except LayerContractError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    config = LintConfig(select=select, layer_contract=contract)

    if args.format == "dot":
        try:
            _files, roots = discover_files(list(args.paths))
            index = ProjectIndex.build(sorted({r.resolve() for r in roots}))
            if contract is not None:
                contract.validate_against(frozenset(index.module_aliases))
        except (LintUsageError, LayerContractError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(index.import_graph().to_dot(contract))
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = Baseline()
    use_baseline = not args.no_baseline and (
        args.baseline is not None or baseline_path.exists()
    )
    try:
        if use_baseline and baseline_path.exists():
            baseline = load_baseline(baseline_path)
        elif use_baseline and args.baseline is not None and not args.write_baseline:
            raise BaselineFormatError(f"baseline file not found: {baseline_path}")
        restrict = _changed_files(args.changed) if args.changed is not None else None
        result = run_lint(list(args.paths), config, restrict=restrict)
    except (LintUsageError, BaselineFormatError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        written = write_baseline(result.findings, baseline_path, previous=baseline)
        print(
            f"wrote {baseline_path} with {len(written.entries)} entr"
            f"{'y' if len(written.entries) == 1 else 'ies'}"
        )
        return 0

    new, baselined, stale = baseline.partition(result.findings)

    over_budget: list[str] = []
    if args.max_type_ignores is not None:
        count = len(result.type_ignores)
        if count > args.max_type_ignores:
            listing = ", ".join(f"{p}:{ln}" for p, ln in result.type_ignores)
            over_budget.append(
                f"type-ignore budget exceeded: {count} > {args.max_type_ignores} "
                f"({listing})"
            )

    if args.format == "json":
        print(json.dumps({
            "files_checked": result.files_checked,
            "findings": [f.to_dict() for f in new],
            "baselined": len(baselined),
            "stale_baseline_entries": [
                {"rule": e.rule, "path": e.path, "content": e.content}
                for e in stale
            ],
            "type_ignores": len(result.type_ignores),
            "budget_errors": over_budget,
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry: {entry.rule} {entry.path} "
                f"{entry.content!r} no longer matches — regenerate with "
                "--write-baseline"
            )
        for message in over_budget:
            print(message)
        summary = (
            f"checked {result.files_checked} files: {len(new)} finding"
            f"{'' if len(new) == 1 else 's'}"
        )
        if baselined:
            summary += f", {len(baselined)} baselined"
        if stale:
            summary += f", {len(stale)} stale baseline entries"
        print(summary)

    return 1 if (new or stale or over_budget) else 0
