"""Baseline files: triage pre-existing findings without ignoring them.

A baseline is a committed JSON file listing findings that predate a rule (or
were reviewed and judged acceptable), each with a human justification. The
engine subtracts baselined findings from its failure count, so new code is
held to the full rule set while legacy debt stays visible and enumerable.

Entries match on ``(rule, path, content)`` — the stripped text of the
offending line — not on line numbers, so unrelated edits above a violation
do not invalidate the baseline. Entries that no longer match anything are
*stale* and fail the run: a baseline must shrink when debt is paid, never
rot. Regenerate with ``repro lint --write-baseline`` (existing
justifications for surviving entries are preserved).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..atomicio import atomic_write_text
from .findings import Finding

__all__ = ["Baseline", "BaselineEntry", "load_baseline", "write_baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    content: str
    justification: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path.replace("\\", "/"), self.content)


class BaselineFormatError(ValueError):
    """The baseline file exists but cannot be parsed."""


@dataclass
class Baseline:
    """In-memory baseline with match bookkeeping."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split ``findings`` into (new, baselined); also return stale entries.

        Each entry absorbs any number of identical-line findings (a
        duplicated violation on two identical lines is one kind of debt),
        but an entry that matches nothing at all is stale.
        """
        by_key = {e.key: e for e in self.entries}
        matched: set[tuple[str, str, str]] = set()
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path.replace("\\", "/"), finding.content)
            if key in by_key:
                matched.add(key)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [e for e in self.entries if e.key not in matched]
        return new, baselined, stale


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; raise :class:`BaselineFormatError` when unusable."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineFormatError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != _FORMAT_VERSION:
        raise BaselineFormatError(
            f"baseline {path} has unsupported format (want version {_FORMAT_VERSION})"
        )
    entries = []
    for item in raw.get("entries", []):
        try:
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    content=str(item["content"]),
                    justification=str(item.get("justification", "")),
                )
            )
        except (TypeError, KeyError) as exc:
            raise BaselineFormatError(
                f"baseline {path} has a malformed entry: {item!r}"
            ) from exc
    return Baseline(entries=entries)


def write_baseline(
    findings: list[Finding], path: str | Path, previous: Baseline | None = None
) -> Baseline:
    """Write a baseline covering ``findings``; keep old justifications.

    Returns the baseline that was written. Entries are deduplicated by key
    and sorted for stable diffs.
    """
    old = {e.key: e for e in previous.entries} if previous else {}
    by_key: dict[tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        entry = BaselineEntry(
            rule=finding.rule,
            path=finding.path.replace("\\", "/"),
            content=finding.content,
            justification="TODO: justify or fix",
        )
        kept = old.get(entry.key)
        if kept is not None:
            entry = kept
        by_key.setdefault(entry.key, entry)
    entries = sorted(by_key.values(), key=lambda e: e.key)
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "content": e.content,
                "justification": e.justification,
            }
            for e in entries
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return Baseline(entries=entries)
