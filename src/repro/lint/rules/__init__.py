"""Rule registry: every ``repro lint`` rule, grouped by family.

Each rule is a singleton with an ``id`` (``REP101``), a one-line ``title``,
a ``hint`` describing the idiomatic fix, and a ``check(ctx)`` generator
yielding :class:`~repro.lint.findings.Finding` records for one module. The
rule's docstring is its catalogue entry (rendered by ``repro lint
--list-rules`` and mirrored in ``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

__all__ = ["ALL_RULES", "Rule", "rule_by_id"]


class Rule:
    """Base class for lint rules (subclasses set id/title/hint)."""

    id: str = "REP000"
    title: str = ""
    hint: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "ModuleContext",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
            content=ctx.line_text(line),
        )


from .api import ControllerConformanceRule, RegistryConformanceRule  # noqa: E402
from .artifacts import AtomicWriteRule  # noqa: E402
from .determinism import (  # noqa: E402
    AmbientEntropyRule,
    HashOrderMaterializationRule,
    NumpyGlobalRngRule,
    StdlibRandomRule,
    UnorderedIterationRule,
    WallClockRule,
)
from .floats import (  # noqa: E402
    FloatEqualityRule,
    UnorderedAccumulationRule,
    UnorderedReductionRule,
)
from .units_rules import (  # noqa: E402
    CallUnitMismatchRule,
    ManualConversionRule,
    MixedUnitArithmeticRule,
)

ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    StdlibRandomRule(),
    NumpyGlobalRngRule(),
    AmbientEntropyRule(),
    UnorderedIterationRule(),
    HashOrderMaterializationRule(),
    AtomicWriteRule(),
    FloatEqualityRule(),
    UnorderedReductionRule(),
    UnorderedAccumulationRule(),
    MixedUnitArithmeticRule(),
    CallUnitMismatchRule(),
    ManualConversionRule(),
    ControllerConformanceRule(),
    RegistryConformanceRule(),
)


def rule_by_id(rule_id: str) -> Rule | None:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    return None
