"""Rule registry: every ``repro lint`` rule, grouped by family.

Each rule is a singleton with an ``id`` (``REP101``), a one-line ``title``,
a ``hint`` describing the idiomatic fix, and a ``check(ctx)`` generator
yielding :class:`~repro.lint.findings.Finding` records for one module. The
rule's docstring is its catalogue entry (rendered by ``repro lint
--list-rules`` and mirrored in ``docs/static-analysis.md``).
"""

from __future__ import annotations

from .api import ControllerConformanceRule, RegistryConformanceRule
from .architecture import (
    ImportCycleRule,
    LayerViolationRule,
    StdlibOnlyRule,
)
from .artifacts import AtomicWriteRule
from .base import Rule
from .concurrency import (
    AsyncBlockingCallRule,
    FireAndForgetTaskRule,
    LockAcrossAwaitRule,
    SharedMemoryLifecycleRule,
    UnlockedSharedStateRule,
    UnpicklableSubmitRule,
)
from .determinism import (
    AmbientEntropyRule,
    HashOrderMaterializationRule,
    NumpyGlobalRngRule,
    StdlibRandomRule,
    UnorderedIterationRule,
    WallClockRule,
)
from .floats import (
    FloatEqualityRule,
    UnorderedAccumulationRule,
    UnorderedReductionRule,
)
from .units_rules import (
    CallUnitMismatchRule,
    ManualConversionRule,
    MixedUnitArithmeticRule,
)

__all__ = ["ALL_RULES", "Rule", "rule_by_id"]

ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    StdlibRandomRule(),
    NumpyGlobalRngRule(),
    AmbientEntropyRule(),
    UnorderedIterationRule(),
    HashOrderMaterializationRule(),
    AtomicWriteRule(),
    FloatEqualityRule(),
    UnorderedReductionRule(),
    UnorderedAccumulationRule(),
    MixedUnitArithmeticRule(),
    CallUnitMismatchRule(),
    ManualConversionRule(),
    ControllerConformanceRule(),
    RegistryConformanceRule(),
    AsyncBlockingCallRule(),
    UnlockedSharedStateRule(),
    LockAcrossAwaitRule(),
    FireAndForgetTaskRule(),
    SharedMemoryLifecycleRule(),
    UnpicklableSubmitRule(),
    LayerViolationRule(),
    ImportCycleRule(),
    StdlibOnlyRule(),
)


def rule_by_id(rule_id: str) -> Rule | None:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    return None
