"""REP1xx — determinism rules.

Digest-relevant modules (everything the simulator, controllers, hardware
models, workloads and experiments execute) must be pure functions of the
root seed: no wall-clock reads, no ambient entropy, no global RNG state,
and no observable iteration over hash-ordered containers. A single stray
``time.time()`` or ``for x in some_set`` silently breaks the bit-identical
digest guarantees PR 2/PR 3 established.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..context import iter_scoped
from ..findings import Finding
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``numpy.random`` attributes that touch the hidden global RandomState or
#: draw from it. Generator/SeedSequence/bit-generator classes are fine.
_NUMPY_GLOBAL_RNG = frozenset({
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "bytes", "choice",
    "shuffle", "permutation", "normal", "uniform", "poisson",
    "exponential", "lognormal", "standard_normal", "binomial", "beta",
    "gamma", "triangular", "pareto", "weibull",
})

_ENTROPY = frozenset({"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"})


class WallClockRule(Rule):
    """REP101: no wall-clock reads in digest-relevant modules.

    Wall-clock timestamps differ between runs by construction; any one that
    feeds a digest-relevant value destroys run-to-run bit-identity. Timing
    *infrastructure* (the sweep runner, profiler, bench harness — whose
    timings are excluded from digests) is exempted by configuration;
    anything else must take time from the simulation clock or suppress with
    a justification explaining why the value cannot reach a digest.
    """

    id = "REP101"
    title = "wall-clock read in digest-relevant module"
    hint = "use the simulation clock (time_s) or repro.rng; timings excluded from digests need an inline justification"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        if ctx.in_modules(ctx.config.wallclock_exempt):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.resolve(node.func)
                if name in _WALL_CLOCK:
                    yield self.finding(ctx, node, f"call to {name}()")


class StdlibRandomRule(Rule):
    """REP102: the stdlib ``random`` module is banned everywhere.

    ``random`` draws from process-global state seeded from OS entropy; even
    a seeded use is invisible to :mod:`repro.rng`'s named-stream spawning,
    so adding one consumer would perturb every other stream. All randomness
    must come from a generator spawned via ``repro.rng.spawn``.
    """

    id = "REP102"
    title = "stdlib random module used"
    hint = "draw from a numpy Generator spawned via repro.rng.spawn(seed, name)"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        yield self.finding(ctx, node, f"import {item.name}")
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(ctx, node, "from random import ...")
            elif isinstance(node, ast.Call):
                name = ctx.resolve(node.func)
                if name is not None and (
                    name == "random" or name.startswith("random.")
                ):
                    yield self.finding(ctx, node, f"call to {name}()")


class NumpyGlobalRngRule(Rule):
    """REP103: no numpy global-RNG state; generators must be seeded.

    ``np.random.seed``/``np.random.normal`` etc. share one hidden
    ``RandomState`` across the whole process — concurrent sweep jobs and
    unrelated components would interleave draws nondeterministically.
    ``default_rng()`` *without* a seed pulls OS entropy. Only
    :mod:`repro.rng` (the stream-spawning implementation) may construct
    generators directly.
    """

    id = "REP103"
    title = "numpy global RNG or unseeded generator"
    hint = "use repro.rng.make_rng/spawn for explicit, named, seeded streams"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        if ctx.in_modules(ctx.config.rng_impl_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None or not name.startswith("numpy.random."):
                continue
            attr = name.rsplit(".", 1)[-1]
            if attr in _NUMPY_GLOBAL_RNG:
                yield self.finding(ctx, node, f"call to {name}() (global RNG state)")
            elif attr == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, "default_rng() without a seed draws OS entropy"
                )


class AmbientEntropyRule(Rule):
    """REP104: no ambient entropy sources.

    ``os.urandom``, ``uuid.uuid1``/``uuid4`` and the ``secrets`` module are
    nondeterministic by design; none of them can appear in a reproducible
    pipeline (deterministic ids should derive from the seed or the job key).
    """

    id = "REP104"
    title = "ambient entropy source"
    hint = "derive identifiers from the root seed or job key instead"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.resolve(node.func)
                if name is not None and (
                    name in _ENTROPY or name.startswith("secrets.")
                ):
                    yield self.finding(ctx, node, f"call to {name}()")


class UnorderedIterationRule(Rule):
    """REP105: no order-observing iteration over sets.

    ``set``/``frozenset`` iteration order depends on insertion history and
    hash seeding of the element type — it is not a stable function of the
    contents. ``for`` loops, list comprehensions and generator expressions
    over a set leak that order into results (accumulation order, trace
    order, serialized order). Wrap the set in ``sorted(...)`` to pick an
    explicit order. Order-insensitive consumption is allowed: set/dict
    comprehensions, and comprehensions fed directly to ``sorted``/``min``/
    ``max``/``any``/``all``/``set``/``frozenset`` (but not ``sum`` — float
    accumulation order is observable, see REP202).
    """

    id = "REP105"
    title = "iteration over unordered set"
    hint = "iterate sorted(the_set) to fix an explicit order"

    #: Consumers whose result does not depend on input order.
    _LAUNDERERS = frozenset({"sorted", "min", "max", "any", "all", "len",
                             "set", "frozenset"})

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        laundered: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._LAUNDERERS
            ):
                for arg in node.args:
                    if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                        laundered.add(arg)
        for scope, node in iter_scoped(ctx.tree):
            if isinstance(node, ast.For):
                if ctx.is_unordered(node.iter, scope):
                    yield self.finding(ctx, node.iter, "for-loop over a set")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if node in laundered:
                    continue
                for gen in node.generators:
                    if ctx.is_unordered(gen.iter, scope):
                        yield self.finding(
                            ctx, gen.iter, "comprehension over a set"
                        )


class HashOrderMaterializationRule(Rule):
    """REP106: no hash-order-dependent materialization of sets.

    ``list(s)``, ``tuple(s)``, ``iter(s)``/``next(iter(s))``,
    ``",".join(s)`` and ``s.pop()`` all expose an arbitrary element order
    (or an arbitrary *element*, for ``pop``). Use ``sorted(s)`` or
    ``min(s)``/``max(s)`` to make the choice explicit.
    """

    id = "REP106"
    title = "hash-order-dependent set materialization"
    hint = "use sorted(the_set) (or min/max for a single element)"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for scope, node in iter_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "iter")
                and len(node.args) == 1
                and ctx.is_unordered(node.args[0], scope)
            ):
                yield self.finding(ctx, node, f"{func.id}() over a set")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and len(node.args) == 1
                and ctx.is_unordered(node.args[0], scope)
            ):
                yield self.finding(ctx, node, "str.join over a set")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and ctx.is_unordered(func.value, scope)
            ):
                yield self.finding(ctx, node, "set.pop() removes an arbitrary element")
