"""The :class:`Rule` base class, below the registry.

Rule modules used to import ``Rule`` from the package ``__init__`` while
the ``__init__`` imported them back for the registry — a module-level
import cycle (REP602, found by self-lint) that only worked because the
registry imports sat at the bottom of the file. The base class now lives
here, under both.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

__all__ = ["Rule"]


class Rule:
    """Base class for lint rules (subclasses set id/title/hint)."""

    id: str = "REP000"
    title: str = ""
    hint: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "ModuleContext",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
            content=ctx.line_text(line),
        )
