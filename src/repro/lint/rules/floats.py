"""REP2xx — float-semantics rules.

Floating-point addition is not associative: the *order* of a reduction is
part of its value. PR 3's vectorized engine is bit-identical to the scalar
one precisely because every reduction order was preserved; these rules ban
the constructs that make reduction order depend on hash seeding, and the
float comparisons that silently depend on representation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..context import iter_scoped
from ..findings import Finding
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

_REDUCTIONS = frozenset({
    "math.fsum",
    "numpy.sum", "numpy.nansum", "numpy.prod", "numpy.cumsum",
    "numpy.mean", "numpy.nanmean", "numpy.std", "numpy.var",
})


class FloatEqualityRule(Rule):
    """REP201: no ``==``/``!=`` against non-zero float literals.

    ``x == 0.9`` compares bit patterns, not values: whether it holds
    depends on how ``x`` was computed, which is exactly the kind of
    representation detail the scalar/vectorized mirrors are allowed to vary
    while keeping *digest-relevant* outputs identical. Compare against
    exact integers, use ``math.isclose``, or restructure around a
    threshold. Exact-zero sentinels (``sigma == 0.0`` meaning "feature
    disabled") are a deliberate idiom and are allowed.
    """

    id = "REP201"
    title = "equality comparison against a float literal"
    hint = "use math.isclose / a threshold; exact-zero sentinels are exempt"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in (node.left, *node.comparators):
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                    and operand.value != 0.0
                ):
                    yield self.finding(
                        ctx, node, f"float-literal equality ({operand.value!r})"
                    )
                    break


class UnorderedReductionRule(Rule):
    """REP202: no float reductions over unordered containers.

    ``sum(a_set)`` (and ``np.sum``/``math.fsum``/``np.mean`` etc. over one)
    accumulates in hash order, so the rounding error — and therefore the
    digest — varies with insertion history and interpreter hash seeding.
    Reduce over ``sorted(the_set)`` instead.
    """

    id = "REP202"
    title = "reduction over an unordered container"
    hint = "reduce over sorted(the_set) to pin the accumulation order"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for scope, node in iter_scoped(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            is_reduction = (
                isinstance(func, ast.Name) and func.id == "sum"
            ) or ctx.resolve(func) in _REDUCTIONS
            if is_reduction and ctx.is_unordered(node.args[0], scope):
                yield self.finding(ctx, node, "reduction over a set")


class UnorderedAccumulationRule(Rule):
    """REP203: no in-place accumulation inside loops over sets.

    A ``total += ...`` (or ``-=``, ``*=``) carried through a ``for`` loop
    over a set accumulates in hash order — same failure as REP202 but
    spelled as a loop. The loop itself is already flagged by REP105; this
    rule pinpoints the accumulating statement so the fix (sort the
    iterable, or restructure into an order-insensitive form) lands on the
    right line.
    """

    id = "REP203"
    title = "in-place accumulation in a loop over a set"
    hint = "iterate sorted(the_set), or collect then reduce in a fixed order"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for scope, node in iter_scoped(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            if not ctx.is_unordered(node.iter, scope):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.AugAssign) and isinstance(
                    inner.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    yield self.finding(
                        ctx, inner, "accumulation order depends on set hashing"
                    )
