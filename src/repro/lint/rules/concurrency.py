"""REP5xx — concurrency safety for the async/thread/worker planes.

These rules consume the :class:`~repro.lint.index.ProjectCallGraph` that
the index derives on demand: which functions are thread/worker/async
entrypoints, what each function calls (with class-hierarchy dispatch),
and therefore what runs concurrently. The single-file REP1xx–4xx rules
cannot see that a blocking write three calls below an ``async def``
stalls the event loop, or that a module-level cache is mutated from a
``ProcessPoolExecutor`` worker — these can.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding
from ..index import CallRecord, ProjectCallGraph
from ..suppress import lock_protocol_on
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

__all__ = [
    "AsyncBlockingCallRule",
    "FireAndForgetTaskRule",
    "LockAcrossAwaitRule",
    "SharedMemoryLifecycleRule",
    "UnpicklableSubmitRule",
    "UnlockedSharedStateRule",
]


#: Dotted call targets that block the calling thread (and with it the loop).
_BLOCKING_EXTERNALS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.fsync",
        "os.fdatasync",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "scipy.optimize.minimize",
        "scipy.optimize.linprog",
        "select.select",
        "sys.stdin.readline",
        "sys.stdin.read",
        "open",
        "input",
    }
)

#: Attribute calls that block even when the receiver's type is unknown.
#: Deliberately conservative: ``.write`` would false-positive on
#: ``asyncio.StreamWriter.write`` (non-blocking), so only the Path I/O
#: helpers that have no async counterpart are listed.
_BLOCKING_ATTRS = frozenset({"read_text", "read_bytes", "write_text", "write_bytes"})

_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "setdefault", "popitem", "add", "discard",
    }
)

_CONTAINER_CALLS = frozenset(
    {
        "dict", "list", "set",
        "collections.OrderedDict", "collections.defaultdict", "collections.deque",
        "collections.Counter",
    }
)

_RNG_BEARING_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "repro.rng.make_rng",
        "repro.rng.spawn",
    }
)

_LOCK_CALLS = frozenset({"threading.Lock", "threading.RLock"})


def _blocking_call_desc(record: CallRecord) -> str | None:
    """Why this call record blocks, or ``None`` when it does not."""
    if record.external is not None and record.external in _BLOCKING_EXTERNALS:
        return record.external
    if record.attr is not None and record.attr in _BLOCKING_ATTRS:
        return f".{record.attr}"
    return None


def _blocking_chain(
    graph: ProjectCallGraph,
    qualname: str,
    memo: dict[str, tuple[str, ...] | None],
) -> tuple[str, ...] | None:
    """A sync call chain from ``qualname`` to a blocking call, if one exists.

    Traverses only synchronous non-generator project functions (calling an
    ``async def`` just builds a coroutine; calling a generator function
    builds a generator — neither runs the body). Returns the chain as
    ``(callee, ..., blocking-desc)`` for the finding message.
    """
    if qualname in memo:
        return memo[qualname]
    memo[qualname] = None  # cycle guard: assume non-blocking while in progress
    node = graph.functions.get(qualname)
    if node is None or node.is_async or node.is_generator:
        return None
    for record in node.calls:
        desc = _blocking_call_desc(record)
        if desc is not None:
            memo[qualname] = (desc,)
            return memo[qualname]
    for record in node.calls:
        for target in record.targets:
            sub = _blocking_chain(graph, target, memo)
            if sub is not None:
                memo[qualname] = (target, *sub)
                return memo[qualname]
    return None


class AsyncBlockingCallRule(Rule):
    """Blocking call reachable inside an ``async def`` body.

    ``time.sleep``, synchronous file/socket I/O, ``subprocess``, and
    SLSQP solves stall the entire event loop — every ingest source and
    signal handler in the service plane stops until the call returns.
    The walk is transitive over the project call graph: a journal
    ``fsync`` three frames below ``feed_line`` is still a finding at the
    async call site.
    """

    id = "REP501"
    title = "blocking call reachable from async code"
    hint = (
        "offload with 'await loop.run_in_executor(None, fn, ...)' (or "
        "asyncio.to_thread), or use the async counterpart (asyncio.sleep, "
        "asyncio.open_connection)"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        graph = ctx.index.call_graph()
        memo: dict[str, tuple[str, ...] | None] = {}
        for node in graph.functions.values():
            if node.module != ctx.module or not node.is_async:
                continue
            short = node.qualname.removeprefix(ctx.module + ".")
            for record in node.calls:
                desc = _blocking_call_desc(record)
                if desc is not None:
                    yield self._at(
                        ctx,
                        record,
                        f"blocking call {desc} inside async '{short}'",
                    )
                    continue
                for target in record.targets:
                    chain = _blocking_chain(graph, target, memo)
                    if chain is not None:
                        via = " -> ".join((target, *chain[:-1]))
                        yield self._at(
                            ctx,
                            record,
                            f"blocking call {chain[-1]} reachable from async "
                            f"'{short}' via {via}",
                        )
                        break

    def _at(self, ctx: "ModuleContext", record: CallRecord, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=record.lineno,
            col=record.col,
            message=message,
            hint=self.hint,
            content=ctx.line_text(record.lineno),
        )


def _module_level_containers(ctx: "ModuleContext") -> dict[str, int]:
    """Module-level mutable-container names -> definition line."""
    containers: dict[str, int] = {}
    for stmt in ctx.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        )
        if not mutable and isinstance(value, ast.Call):
            resolved = ctx.resolve(value.func)
            mutable = resolved in _CONTAINER_CALLS
        if mutable:
            containers[target.id] = stmt.lineno
    return containers


def _module_level_locks(ctx: "ModuleContext") -> set[str]:
    locks: set[str] = set()
    for stmt in ctx.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and ctx.resolve(stmt.value.func) in _LOCK_CALLS
        ):
            locks.add(stmt.targets[0].id)
    return locks


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(class name or None, function node) for every top-level def/method."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, stmt
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt.name, item


class UnlockedSharedStateRule(Rule):
    """Module-level mutable state written from concurrent code without a lock.

    A dict/list/set defined at module scope and mutated inside a function
    that the call graph marks entrypoint-reachable (async task, thread
    target, worker function) is a data race in every plane that shares
    the interpreter. Writes must hold a module-level ``threading.Lock``,
    or the container's definition line must carry a lock-protocol
    annotation: ``# repro-lint: lock-protocol=_MY_LOCK -- reason`` pins
    the exact lock, ``lock-protocol=exempt -- reason`` records why no
    lock is needed (e.g. worker processes never share the mapping).
    """

    id = "REP502"
    title = "unlocked write to module-level mutable state"
    hint = (
        "guard writes with 'with <module-level lock>:' and annotate the "
        "container with '# repro-lint: lock-protocol=<LOCK> -- reason' "
        "(or lock-protocol=exempt when provably single-threaded)"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        containers = _module_level_containers(ctx)
        if not containers:
            return
        locks = _module_level_locks(ctx)
        protocols = {
            name: lock_protocol_on(ctx.line_text(line))
            for name, line in containers.items()
        }
        graph = ctx.index.call_graph()
        reachable = graph.reachable_from_entrypoints()
        for class_name, fn in _iter_functions(ctx.tree):
            qualname = (
                f"{ctx.module}.{class_name}.{fn.name}"
                if class_name
                else f"{ctx.module}.{fn.name}"
            )
            if qualname not in reachable:
                continue
            yield from self._scan_body(ctx, fn, containers, locks, protocols)

    def _scan_body(
        self,
        ctx: "ModuleContext",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        containers: dict[str, int],
        locks: set[str],
        protocols: dict[str, str | None],
    ) -> Iterator[Finding]:
        def walk(node: ast.AST, held: frozenset[str]) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = {
                    item.context_expr.id
                    for item in node.items
                    if isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id in locks
                }
                inner = held | acquired
                for item in node.items:
                    yield from walk(item.context_expr, held)
                for stmt in node.body:
                    yield from walk(stmt, inner)
                return
            written = self._written_container(ctx, node, containers)
            if written is not None:
                name, where = written
                finding = self._verdict(ctx, name, where, held, protocols)
                if finding is not None:
                    yield finding
            for child in ast.iter_child_nodes(node):
                yield from walk(child, held)

        for stmt in fn.body:
            yield from walk(stmt, frozenset())

    def _written_container(
        self, ctx: "ModuleContext", node: ast.AST, containers: dict[str, int]
    ) -> tuple[str, ast.AST] | None:
        def subscript_base(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
                return expr.value.id
            return None

        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = subscript_base(target)
                if base in containers:
                    return base, node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            base = subscript_base(node.target)
            if base in containers:
                return base, node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = subscript_base(target)
                if base in containers:
                    return base, node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in containers
        ):
            return node.func.value.id, node
        return None

    def _verdict(
        self,
        ctx: "ModuleContext",
        name: str,
        node: ast.AST,
        held: frozenset[str],
        protocols: dict[str, str | None],
    ) -> Finding | None:
        protocol = protocols.get(name)
        if protocol == "exempt":
            return None
        if protocol is not None:
            if protocol in held:
                return None
            return self.finding(
                ctx,
                node,
                f"write to '{name}' without holding its declared lock "
                f"'{protocol}'",
            )
        if held:
            return self.finding(
                ctx,
                node,
                f"write to module-level '{name}' is locked but the container "
                "has no lock-protocol annotation; declare "
                f"'# repro-lint: lock-protocol=<LOCK>' on its definition",
            )
        return self.finding(
            ctx,
            node,
            f"module-level '{name}' written from entrypoint-reachable code "
            "without a lock",
        )


def _is_lockish(expr: ast.expr, module_locks: set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in module_locks or "lock" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    if isinstance(expr, ast.Call):
        return _is_lockish(expr.func, module_locks)
    return False


def _contains_await(body: list[ast.stmt]) -> bool:
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Await,)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class LockAcrossAwaitRule(Rule):
    """``threading.Lock`` held across an ``await``.

    A thread lock acquired in a coroutine and held across a suspension
    point blocks every other task (and thread) that needs it for an
    unbounded time — and deadlocks outright if the awaited task needs
    the same lock. Use ``asyncio.Lock`` inside coroutines, or release
    the thread lock before awaiting.
    """

    id = "REP503"
    title = "thread lock held across await"
    hint = "use asyncio.Lock in coroutines, or drop the lock before awaiting"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        module_locks = _module_level_locks(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.With)
                    and any(
                        _is_lockish(item.context_expr, module_locks)
                        for item in inner.items
                    )
                    and _contains_await(inner.body)
                ):
                    yield self.finding(
                        ctx,
                        inner,
                        f"sync lock held across await in async '{node.name}'",
                    )


class FireAndForgetTaskRule(Rule):
    """``asyncio.create_task`` result dropped on the floor.

    A task whose only reference is the loop's weak set can be garbage
    collected mid-flight, and its exceptions surface (if ever) as an
    opaque "exception was never retrieved" log line at shutdown. Keep
    the task handle — append it to a task list that the shutdown path
    awaits, or await it directly.
    """

    id = "REP504"
    title = "fire-and-forget asyncio task"
    hint = "retain the task: tasks.append(asyncio.create_task(...)) and await on teardown"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            resolved = ctx.resolve(call.func)
            attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
            if resolved in ("asyncio.create_task", "asyncio.ensure_future") or attr in (
                "create_task",
                "ensure_future",
            ):
                yield self.finding(
                    ctx,
                    node,
                    "task created without retaining a reference",
                )


class SharedMemoryLifecycleRule(Rule):
    """``SharedMemory`` block without close/unlink on all exit paths.

    A mapped segment that is not closed leaks the mapping for the
    process lifetime; a created segment that is never unlinked leaks the
    OS object past process death (``/dev/shm`` fills up across sweep
    runs). Attach-style locals must ``close()`` in a ``finally``;
    creator-style ``self`` attributes must ``close()`` *and* ``unlink()``
    in the owning class's teardown.
    """

    id = "REP505"
    title = "shared_memory without close/unlink on all paths"
    hint = (
        "wrap attach-side use in try/finally shm.close(); creators must "
        "also shm.unlink() in the owning teardown"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, stmt)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._check_class(ctx, stmt)

    def _is_shm_call(self, ctx: "ModuleContext", node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = ctx.resolve(node.func)
        if resolved in (
            "multiprocessing.shared_memory.SharedMemory",
            "shared_memory.SharedMemory",
        ):
            return True
        return (
            isinstance(node.func, ast.Attribute) and node.func.attr == "SharedMemory"
        )

    def _creates(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )

    def _check_function(
        self, ctx: "ModuleContext", fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        finally_closed: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for call in ast.walk(stmt):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr == "close"
                            and isinstance(call.func.value, ast.Name)
                        ):
                            finally_closed.add(call.func.value.id)
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and self._is_shm_call(ctx, node.value)
            ):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if target.id not in finally_closed:
                    yield self.finding(
                        ctx,
                        node,
                        f"SharedMemory '{target.id}' has no close() in a "
                        "finally block",
                    )
            # self.<attr> assignments are validated at class scope.

    def _check_class(self, ctx: "ModuleContext", cls: ast.ClassDef) -> Iterator[Finding]:
        closed: set[str] = set()
        unlinked: set[str] = set()
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
                and isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
            ):
                (closed if node.func.attr == "close" else unlinked).add(
                    node.func.value.attr
                )
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and self._is_shm_call(ctx, node.value)
            ):
                continue
            attr = node.targets[0].attr
            if attr not in closed:
                yield self.finding(
                    ctx,
                    node,
                    f"SharedMemory 'self.{attr}' is never close()d by "
                    f"'{cls.name}'",
                )
            elif self._creates(node.value) and attr not in unlinked:
                yield self.finding(
                    ctx,
                    node,
                    f"created SharedMemory 'self.{attr}' is never unlink()ed "
                    f"by '{cls.name}'",
                )


class UnpicklableSubmitRule(Rule):
    """Non-picklable or RNG-bearing object handed to a process pool.

    Lambdas and nested functions fail to pickle at submit time; a
    ``numpy.random.Generator`` pickles but silently *forks* the stream —
    the worker advances a copy, the parent's stays put, and the sweep's
    spawned-seed discipline (every worker derives its own child seed) is
    bypassed. Pass module-level functions and plain seeds; reconstruct
    RNGs, files, and locks inside the worker.
    """

    id = "REP506"
    title = "unpicklable/RNG-bearing object submitted to process pool"
    hint = (
        "submit module-level functions with plain-data args; pass seeds, "
        "not Generators (spawned-seed discipline), and reopen files/locks "
        "in the worker"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for _class_name, fn in _iter_functions(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: "ModuleContext", fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        pools: set[str] = set()
        nested: set[str] = set()
        tainted: dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                nested.add(node.name)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and self._is_process_pool(ctx, item.context_expr)
                    ):
                        pools.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if self._is_process_pool(ctx, node.value):
                    pools.add(target.id)
                else:
                    taint = self._taint_of(ctx, node.value)
                    if taint is not None:
                        tainted[target.id] = taint
        if not pools:
            return
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
                and node.args
            ):
                continue
            callee = node.args[0]
            if isinstance(callee, ast.Lambda):
                yield self.finding(
                    ctx, node, "lambda submitted to a process pool cannot pickle"
                )
            elif isinstance(callee, ast.Name) and callee.id in nested:
                yield self.finding(
                    ctx,
                    node,
                    f"nested function '{callee.id}' submitted to a process "
                    "pool cannot pickle",
                )
            for arg in node.args[1:]:
                if isinstance(arg, ast.Name) and arg.id in tainted:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{arg.id}' ({tainted[arg.id]}) crosses the process "
                        "boundary",
                    )

    def _is_process_pool(self, ctx: "ModuleContext", node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and ctx.resolve(node.func)
            in (
                "concurrent.futures.ProcessPoolExecutor",
                "concurrent.futures.process.ProcessPoolExecutor",
            )
        )

    def _taint_of(self, ctx: "ModuleContext", node: ast.expr) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        resolved = ctx.resolve(node.func)
        if resolved in _RNG_BEARING_CALLS:
            return "an RNG stream; pass the seed instead"
        if resolved in _LOCK_CALLS:
            return "a thread lock, which cannot pickle"
        if resolved == "open":
            return "an open file handle, which cannot pickle"
        return None
