"""REP3xx — units-safety rules.

The package-wide convention (:mod:`repro.units`) is MHz / watts / joules /
seconds, with unit-suffixed identifiers (``power_w``, ``dt_s``,
``energy_uj``) marking every departure. These rules read the suffixes back
and flag the two ways unit bugs enter: *mixing* quantities of conflicting
units in one expression or call, and *hand-rolled* power-of-ten conversions
that bypass the named converters (which both documents intent and gives the
linter a single choke point to track).
"""

from __future__ import annotations

import ast
import math
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding
from ..names import UNIT_DIMENSION, unit_of_identifier
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

#: (converter name, source unit, target unit, multiplicative factor).
CONVERTERS: tuple[tuple[str, str, str, float], ...] = (
    ("ghz_to_mhz", "ghz", "mhz", 1e3),
    ("mhz_to_ghz", "mhz", "ghz", 1e-3),
    ("watts_to_milliwatts", "w", "mw", 1e3),
    ("milliwatts_to_watts", "mw", "w", 1e-3),
    ("joules_to_microjoules", "j", "uj", 1e6),
    ("microjoules_to_joules", "uj", "j", 1e-6),
    ("joules_to_kilojoules", "j", "kj", 1e-3),
    ("kilojoules_to_joules", "kj", "j", 1e3),
    ("seconds_to_milliseconds", "s", "ms", 1e3),
    ("milliseconds_to_seconds", "ms", "s", 1e-3),
)

_SCALE_LITERALS = (1e3, 1e6, 1e-3, 1e-6)


def _conflict(a: str | None, b: str | None) -> bool:
    """True when both units are known, same dimension, different unit."""
    return (
        a is not None
        and b is not None
        and a != b
        and UNIT_DIMENSION[a] == UNIT_DIMENSION[b]
    )


class MixedUnitArithmeticRule(Rule):
    """REP301: no additive mixing of conflicting units.

    ``power_w + power_mw`` or ``t_s < timeout_ms`` is dimensionally
    consistent but numerically wrong by orders of magnitude — the classic
    silent unit bug. Addition, subtraction and comparisons require both
    operands in the *same* unit; convert explicitly first. Multiplication
    and division legitimately combine units and are not checked.
    """

    id = "REP301"
    title = "arithmetic mixes conflicting units"
    hint = "convert one operand with the repro.units converters first"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = ctx.unit_of(node.left), ctx.unit_of(node.right)
                if _conflict(left, right):
                    yield self.finding(ctx, node, f"mixes {left} with {right}")
            elif isinstance(node, ast.Compare):
                operands = (node.left, *node.comparators)
                for a, b in zip(operands, operands[1:]):
                    left, right = ctx.unit_of(a), ctx.unit_of(b)
                    if _conflict(left, right):
                        yield self.finding(ctx, node, f"compares {left} with {right}")


class CallUnitMismatchRule(Rule):
    """REP302: no passing a quantity to a parameter of a conflicting unit.

    When a call resolves to a project function whose parameter names carry
    unit suffixes (``def step(dt_s, ...)``, ``def mhz_to_ghz(mhz)``),
    arguments whose own names carry a conflicting unit of the same
    dimension are flagged: ``mhz_to_ghz(freq_ghz)`` or
    ``step(dt_ms, ...)`` is a unit error visible entirely in the names.
    """

    id = "REP302"
    title = "argument unit conflicts with parameter unit"
    hint = "convert the argument, or fix whichever name is lying"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None:
                continue
            info = ctx.index.resolve_function(name)
            if info is None and "." not in name:
                # A bare name is a module-local function of this module.
                info = ctx.index.resolve_function(f"{ctx.module}.{name}")
            if info is None:
                continue
            params = [p for p in info.params if p not in ("self", "cls")]
            for param, arg in zip(params, node.args):
                if _conflict(ctx.unit_of(arg), unit_of_identifier(param)):
                    yield self.finding(
                        ctx, arg,
                        f"argument {ctx.unit_of(arg)} vs parameter "
                        f"{param!r} ({unit_of_identifier(param)})",
                    )
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                if _conflict(ctx.unit_of(kw.value), unit_of_identifier(kw.arg)):
                    yield self.finding(
                        ctx, kw.value,
                        f"argument {ctx.unit_of(kw.value)} vs parameter "
                        f"{kw.arg!r} ({unit_of_identifier(kw.arg)})",
                    )


class ManualConversionRule(Rule):
    """REP303: no hand-rolled power-of-ten unit conversions.

    ``power_mw / 1e3`` or ``f_ghz = f_mhz / 1000.0`` re-derives a
    conversion the package already names (:mod:`repro.units`). Hand-rolled
    scalings are where W/mW and MHz/GHz confusions hide — the factor is
    right but the direction wrong, or the source was already converted.
    Using the named converter documents the intent and gives review (and
    this linter) one choke point. Fires when a scaling by 1e±3/1e±6
    touches a unit-suffixed operand matching a converter's source unit, or
    lands in a unit-suffixed target matching a converter's result.
    """

    id = "REP303"
    title = "hand-rolled unit conversion"
    hint = "use the named converter from repro.units"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        if ctx.in_modules(ctx.config.units_impl_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                yield from self._check_operand_form(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    yield from self._check_target_form(ctx, target, node.value)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None:
                        yield from self._check_keyword_form(ctx, kw)

    # A scaling expression is BinOp(Mult|Div) with one literal scale factor.
    def _scaling(self, node: ast.expr) -> tuple[ast.expr, float] | None:
        if not isinstance(node, ast.BinOp):
            return None
        left, right, op = node.left, node.right, node.op
        for const, other, flip in ((right, left, False), (left, right, True)):
            if (
                isinstance(const, ast.Constant)
                and isinstance(const.value, (int, float))
                and not isinstance(const.value, bool)
                and any(math.isclose(float(const.value), s) for s in _SCALE_LITERALS)
            ):
                factor = float(const.value)
                if isinstance(op, ast.Mult):
                    return other, factor
                if isinstance(op, ast.Div) and not flip:
                    return other, 1.0 / factor
        return None

    def _check_operand_form(
        self, ctx: "ModuleContext", node: ast.BinOp
    ) -> Iterator[Finding]:
        scaled = self._scaling(node)
        if scaled is None:
            return
        operand, factor = scaled
        unit = ctx.unit_of(operand)
        if unit is None:
            return
        for name, src, dst, conv in CONVERTERS:
            if src == unit and math.isclose(factor, conv):
                yield self.finding(
                    ctx, node,
                    f"scales a {src} quantity by {factor:g}",
                    hint=f"use repro.units.{name}(...)",
                )
                return

    def _check_target_form(
        self, ctx: "ModuleContext", target: ast.expr, value: ast.expr | None
    ) -> Iterator[Finding]:
        if value is None or not isinstance(target, (ast.Name, ast.Attribute)):
            return
        unit = ctx.unit_of(target)
        if unit is None:
            return
        scaled = self._scaling(value)
        if scaled is None or ctx.unit_of(scaled[0]) is not None:
            return  # operand form already covers unit-suffixed operands
        for name, src, dst, conv in CONVERTERS:
            if dst == unit and math.isclose(scaled[1], conv):
                yield self.finding(
                    ctx, value,
                    f"builds a {dst} value by scaling ({scaled[1]:g})",
                    hint=f"use repro.units.{name}(...)",
                )
                return

    def _check_keyword_form(
        self, ctx: "ModuleContext", kw: ast.keyword
    ) -> Iterator[Finding]:
        assert kw.arg is not None
        unit = unit_of_identifier(kw.arg)
        if unit is None:
            return
        scaled = self._scaling(kw.value)
        if scaled is None or ctx.unit_of(scaled[0]) is not None:
            return
        for name, src, dst, conv in CONVERTERS:
            if dst == unit and math.isclose(scaled[1], conv):
                yield self.finding(
                    ctx, kw.value,
                    f"builds {kw.arg}={dst} by scaling ({scaled[1]:g})",
                    hint=f"use repro.units.{name}(...)",
                )
                return
