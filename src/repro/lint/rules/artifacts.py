"""REP1xx — artifact-write crash safety.

Every durable artifact this package writes must go through
:mod:`repro.atomicio` (temp file + fsync + rename), so a crash mid-write
can never leave a torn half-file that a later resume or comparison would
silently read. A bare ``open(path, "w")`` or ``json.dump`` is exactly the
kind of write the checkpoint/resume subsystem cannot protect.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext
    from ..findings import Finding

#: Dotted call names that write a whole file in one shot.
_WRITER_CALLS = frozenset({
    "json.dump",
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.savetxt",
    "pickle.dump",
})

#: Method names that write a whole file through a path-like object.
_WRITER_METHODS = frozenset({"write_text", "write_bytes"})


def _open_write_mode(node: ast.Call) -> str | None:
    """The string-literal mode of an ``open()`` call iff it creates/truncates.

    Append mode is deliberately not flagged: append-only logs (the sweep
    WAL, event streams) are the legitimate non-atomic write pattern — they
    rely on per-line flush + fsync and torn-tail tolerance instead.
    """
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return None  # default "r"
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None  # dynamic mode: not statically decidable
    if "w" in mode.value or "x" in mode.value:
        return mode.value
    return None


class AtomicWriteRule(Rule):
    """REP107: artifact writes must go through ``repro.atomicio``.

    A process killed between ``open(path, "w")`` and the final flush leaves
    a truncated file under the *final* name; anything that later reads it —
    a resumed sweep, a bench comparison, a lint baseline check — sees
    corruption, not absence. The atomic helpers write to a same-directory
    temp file, fsync, then rename, so readers only ever observe complete
    files. Flags truncating ``open`` modes (``"w"``/``"x"``; append is the
    sanctioned WAL pattern), one-shot writers (``json.dump``,
    ``pickle.dump``, ``numpy.save*``) and ``Path.write_text`` /
    ``Path.write_bytes``. The :mod:`repro.atomicio` implementation itself
    is exempted by configuration.
    """

    id = "REP107"
    title = "non-atomic artifact write"
    hint = (
        "write through repro.atomicio (atomic_write_text/_bytes/_json, or "
        "atomic_path for writer APIs); append-only logs use mode 'a' with "
        "per-line flush+fsync"
    )

    def check(self, ctx: "ModuleContext") -> Iterator["Finding"]:
        if ctx.in_modules(ctx.config.atomicio_exempt):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name == "open":
                mode = _open_write_mode(node)
                if mode is not None:
                    yield self.finding(
                        ctx, node, f"open(..., {mode!r}) truncates in place"
                    )
            elif name in _WRITER_CALLS:
                yield self.finding(ctx, node, f"call to {name}()")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITER_METHODS
            ):
                yield self.finding(ctx, node, f".{node.func.attr}(...) on a path")
