"""REP4xx — API-conformance rules.

The experiment surface is only as reproducible as its wiring: a controller
that silently fails to implement part of the
:class:`~repro.control.base.PowerCappingController` contract, or a registry
entry pointing at a name that was never imported, surfaces at run time deep
inside a sweep. These rules check the wiring statically.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

_EXPERIMENT_ID = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


class ControllerConformanceRule(Rule):
    """REP401: controllers implement the full base-class contract.

    Every concrete class deriving (directly or transitively, including via
    re-exports) from the configured controller ABC must provide a concrete
    implementation of each of its abstract methods somewhere along the
    project-local inheritance chain. Python only raises on instantiation —
    which for an experiment controller may be minutes into a sweep;
    intermediate classes that declare abstract methods themselves are
    treated as abstract and skipped.
    """

    id = "REP401"
    title = "controller misses abstract methods of the base interface"
    hint = "implement the missing method(s) or mark the class abstract"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        base = ctx.config.controller_base
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            qualname = f"{ctx.module}.{node.name}"
            if qualname == base:
                continue
            chain = ctx.index.mro_chain(qualname)
            if not any(info.qualname == base for info in chain[1:]):
                continue
            own = chain[0]
            if own.abstract_methods:
                continue  # an intermediate ABC, not a concrete controller
            required: set[str] = set()
            for info in chain[1:]:
                required |= set(info.abstract_methods)
            satisfied = {
                method
                for info in chain
                for method in info.methods
                if method not in info.abstract_methods
            }
            missing = sorted(required - satisfied)
            if missing:
                yield self.finding(
                    ctx, node,
                    f"class {node.name} does not implement {', '.join(missing)} "
                    f"required by {base.rsplit('.', 1)[-1]}",
                )


class RegistryConformanceRule(Rule):
    """REP402: the experiment registry maps valid ids to resolvable runners.

    Registry ids are CLI arguments, sweep-job keys and bench-file keys, so
    they must be lowercase slug-shaped (``[a-z0-9][a-z0-9_-]*``) and unique
    within the literal; every literal value must be a name the registry
    module actually imported or defined. Dynamic entries (``**{...}``
    expansions) are outside static reach and are skipped.
    """

    id = "REP402"
    title = "experiment registry entry invalid"
    hint = "ids are lowercase slugs; runners must be imported into the registry module"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.registry_modules):
            return
        local_defs = {
            node.name
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        for node in ctx.tree.body:
            if isinstance(node, ast.AnnAssign):
                targets: list[ast.expr] = [node.target]
                value = node.value
            elif isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            else:
                continue
            is_registry = any(
                isinstance(t, ast.Name) and t.id in ctx.config.registry_names
                for t in targets
            )
            if not is_registry or not isinstance(value, ast.Dict):
                continue
            seen: set[str] = set()
            for key, entry in zip(value.keys, value.values):
                if key is None:  # ** expansion — dynamic, skipped
                    continue
                if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                    yield self.finding(ctx, key, "registry key is not a string literal")
                    continue
                eid = key.value
                if not _EXPERIMENT_ID.match(eid):
                    yield self.finding(
                        ctx, key, f"experiment id {eid!r} is not a valid slug"
                    )
                if eid in seen:
                    yield self.finding(ctx, key, f"duplicate experiment id {eid!r}")
                seen.add(eid)
                if isinstance(entry, ast.Name) and not (
                    entry.id in ctx.aliases or entry.id in local_defs
                ):
                    yield self.finding(
                        ctx, entry,
                        f"runner {entry.id!r} for id {eid!r} is neither imported "
                        "nor defined in the registry module",
                    )
