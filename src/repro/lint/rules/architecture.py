"""REP6xx — architecture layering over the whole-program import graph.

The layer contract is declared in ``pyproject.toml`` (see
:mod:`repro.lint.layers`); the import graph is derived by the index. A
module may import its own layer or lower layers, never upward — the sim
core importing the service plane would invert the dependency stack and
(eventually) the build. Cycle detection runs contract or no contract:
an import-time cycle is a latent ``ImportError`` that only the current
import order hides.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..findings import Finding
from ..index import _project_prefix
from .base import Rule

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ModuleContext

__all__ = ["ImportCycleRule", "LayerViolationRule", "StdlibOnlyRule"]


def _finding_at(
    rule: Rule, ctx: "ModuleContext", line: int, message: str
) -> Finding:
    return Finding(
        rule=rule.id,
        path=ctx.path,
        line=line,
        col=0,
        message=message,
        hint=rule.hint,
        content=ctx.line_text(line),
    )


class LayerViolationRule(Rule):
    """Import that points *up* the declared layer stack.

    With layers ordered lowest-first in ``[tool.repro-lint]``, an edge
    from layer *i* to layer *j > i* couples a foundation to its
    consumers: the sim core importing the service plane, a unit helper
    importing the CLI. Deferred (function-body) imports count — they
    still create the coupling, just later. ``TYPE_CHECKING`` imports are
    exempt (annotations only, erased at runtime); use them for
    type-only references, or invert the dependency.
    """

    id = "REP601"
    title = "upward import across declared layers"
    hint = (
        "invert the dependency (move shared code down a layer), or make "
        "the reference TYPE_CHECKING-only; sanction deliberate bridges "
        "via sanctioned_modules or a justified suppression"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        contract = ctx.config.layer_contract
        if contract is None:
            return
        source_index = contract.layer_index_of(ctx.module)
        if source_index is None:
            return
        graph = ctx.index.import_graph()
        for edge in graph.edges_from(ctx.module):
            if edge.type_checking:
                continue
            target_index = contract.layer_index_of(edge.target)
            if target_index is None or target_index <= source_index:
                continue
            source_layer = contract.layers[source_index].name
            target_layer = contract.layers[target_index].name
            yield _finding_at(
                self,
                ctx,
                edge.lineno,
                f"layer '{source_layer}' imports upward into layer "
                f"'{target_layer}' ({edge.target})",
            )


class ImportCycleRule(Rule):
    """Module-level import cycle between project modules.

    Cycles only work while every participant finishes its module body
    before anyone needs the half-initialised sibling — an accident of
    import order that the next refactor breaks with a confusing partial
    ``ImportError``. Deferred imports are excluded: moving one edge of a
    cycle into a function body is exactly how cycles are broken, and the
    rule should reward that, not flag it.
    """

    id = "REP602"
    title = "module-level import cycle"
    hint = (
        "break the cycle: move shared code to a lower module, or defer "
        "one edge into the function that needs it"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        graph = ctx.index.import_graph()
        component = graph.cycle_of(ctx.module)
        if component is None:
            return
        members = set(component)
        described = " <-> ".join(component)
        for edge in graph.edges_from(ctx.module):
            if edge.deferred or edge.type_checking:
                continue
            if edge.target in members:
                yield _finding_at(
                    self,
                    ctx,
                    edge.lineno,
                    f"import of {edge.target} closes a module-level cycle "
                    f"({described})",
                )


class StdlibOnlyRule(Rule):
    """Third-party import from a module declared stdlib-only.

    ``repro.lint`` must run anywhere — pre-commit hooks, bare CI
    containers, the red-path fixture checks — so the contract's
    ``stdlib-only`` list pins it (and anything else listed) to the
    standard library plus project-internal modules. Importing numpy from
    the linter is itself a finding.
    """

    id = "REP603"
    title = "third-party import from stdlib-only module"
    hint = (
        "keep this module standard-library-only; move the dependency "
        "behind an interface in a higher layer"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        contract = ctx.config.layer_contract
        if contract is None or not contract.is_stdlib_only(ctx.module):
            return
        known = frozenset(ctx.index.module_aliases)
        project_heads = {module.split(".")[0] for module in known}
        for raw in ctx.index.raw_imports.get(ctx.module, []):
            if raw.type_checking:
                continue
            head = raw.target.split(".")[0]
            if head in sys.stdlib_module_names or head == "__future__":
                continue
            if _project_prefix(raw.target, known) is not None or head in project_heads:
                continue
            yield _finding_at(
                self,
                ctx,
                raw.lineno,
                f"stdlib-only module imports third-party '{head}'",
            )
