"""Name resolution and unit inference shared by the rule families.

Two capabilities live here:

* **Import-alias resolution** — mapping local names to canonical dotted
  paths (``np`` → ``numpy``, ``PowerCappingController`` →
  ``repro.control.base.PowerCappingController``) so rules can recognise
  calls regardless of how a module spelled its imports, including relative
  imports.
* **Unit inference from identifiers** — the repository's naming convention
  (``power_w``, ``f_targets_mhz``, ``dt_s``, ``energy_uj``; see
  :mod:`repro.units`) makes physical units statically visible. The REP3xx
  rules read them back out of names here.
"""

from __future__ import annotations

import ast
import re

__all__ = [
    "UNIT_DIMENSION",
    "build_aliases",
    "dotted_name",
    "resolve_name",
    "unit_of_identifier",
]

#: Unit token -> physical dimension. Tokens are identifier suffixes
#: (``power_w`` -> ``w``) per the package-wide convention in ``units.py``.
UNIT_DIMENSION: dict[str, str] = {
    "w": "power", "mw": "power", "kw": "power", "watts": "power",
    "hz": "frequency", "khz": "frequency", "mhz": "frequency", "ghz": "frequency",
    "s": "time", "ms": "time", "us": "time", "ns": "time",
    "j": "energy", "mj": "energy", "uj": "energy", "kj": "energy",
}

#: Canonical spelling for tokens that alias a unit (``watts`` -> ``w``).
_UNIT_CANONICAL = {"watts": "w"}

#: Tokens long enough to carry a unit on their own (a bare parameter named
#: ``mhz`` is a frequency; a bare ``s`` or ``w`` is too ambiguous to trust).
_BARE_UNIT_TOKENS = frozenset(
    t for t in UNIT_DIMENSION if len(t) >= 2 and t not in ("us", "ns")
) | {"watts"}

#: Identifiers that look unit-suffixed but denote *rates* (``rate_img_s`` is
#: images per second, not seconds) or otherwise lie about their dimension.
_NON_UNIT_NAME = re.compile(r"(^|_)(rate|rates|per)(_|$)")


def unit_of_identifier(name: str) -> str | None:
    """The unit carried by ``name``'s suffix, or ``None``.

    ``power_w`` -> ``"w"``, ``f_max_mhz`` -> ``"mhz"``, ``mhz`` -> ``"mhz"``,
    ``rate_img_s`` -> ``None`` (a rate), ``result`` -> ``None``.
    """
    ident = name.lower()
    if _NON_UNIT_NAME.search(ident):
        return None
    parts = ident.split("_")
    if len(parts) > 1 and parts[-1] in UNIT_DIMENSION:
        return _UNIT_CANONICAL.get(parts[-1], parts[-1])
    if ident in _BARE_UNIT_TOKENS:
        return _UNIT_CANONICAL.get(ident, ident)
    return None


def build_aliases(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    """Map each imported local name to its canonical dotted path.

    ``module`` is the dotted name of the module being analysed (used to
    resolve relative imports); ``is_package`` says whether the file is an
    ``__init__.py`` (its own name is then the base package for level-1
    relative imports).
    """
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{base}.{item.name}" if base else item.name
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """The source-level dotted name of ``node`` (``np.random.seed``), if any."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of ``node`` after import-alias substitution.

    ``np.random.seed`` with ``import numpy as np`` resolves to
    ``numpy.random.seed``; unresolvable expressions (calls, subscripts)
    return ``None``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head
