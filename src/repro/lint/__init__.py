"""Static analysis for reproducibility: the ``repro lint`` rule engine.

The repository's core guarantees — bit-identical digests across ``--jobs N``
and across the scalar/vectorized engines — are dynamic properties enforced by
tests that happen to exercise the right code paths. This package enforces the
*static* preconditions of those guarantees before any simulation runs:

=========  =============================================================
REP1xx     Determinism: no wall-clock or ambient-entropy reads, no global
           RNG, no iteration over hash-ordered containers in
           digest-relevant modules.
REP2xx     Float semantics: no order-sensitive reductions over unordered
           containers, no float-literal equality.
REP3xx     Units safety: no raw-float mixing of W/mW, MHz/GHz, s/ms and
           no hand-rolled power-of-ten conversions — use
           :mod:`repro.units`.
REP4xx     API conformance: controllers implement the full
           :class:`~repro.control.base.PowerCappingController` contract;
           the experiment registry maps valid ids to imported runners.
REP5xx     Concurrency safety over the whole-program call graph: no
           blocking calls reachable from ``async def``, no unlocked
           writes to module-level state from thread/worker/async
           entrypoints, no thread locks across ``await``, no dropped
           task handles, shared-memory lifecycle, picklable-only
           process-pool submissions.
REP6xx     Architecture layering over the whole-program import graph:
           the ``pyproject.toml`` layer contract (no upward imports),
           module-level import cycles, stdlib-only modules.
=========  =============================================================

Findings can be suppressed per line (``# repro-lint: disable=REP101 --
reason``), per file (``# repro-lint: disable-file=REP105``), or triaged into
a committed baseline file (see :mod:`repro.lint.baseline`). The CLI entry
point is ``repro lint``; see ``docs/static-analysis.md`` for the rule
catalogue and suppression policy.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, load_baseline, write_baseline
from .engine import LintConfig, LintResult, LintUsageError, run_lint
from .findings import Finding
from .index import ImportGraph, ProjectCallGraph, ProjectIndex
from .layers import (
    Layer,
    LayerContract,
    LayerContractError,
    discover_layer_contract,
    load_layer_contract,
)
from .rules import ALL_RULES, Rule, rule_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ImportGraph",
    "Layer",
    "LayerContract",
    "LayerContractError",
    "LintConfig",
    "LintResult",
    "LintUsageError",
    "ProjectCallGraph",
    "ProjectIndex",
    "Rule",
    "discover_layer_contract",
    "load_baseline",
    "load_layer_contract",
    "rule_by_id",
    "run_lint",
    "write_baseline",
]
