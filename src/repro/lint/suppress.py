"""Suppression comments: ``# repro-lint: disable=REP101 -- reason``.

Grammar (one directive per comment)::

    # repro-lint: disable=REP101,REP105 [-- justification]
    # repro-lint: disable-file=REP303 [-- justification]
    # repro-lint: disable=all          # escape hatch, discouraged

``disable`` applies to findings on the comment's own physical line;
``disable-file`` applies to the whole file. Comments are extracted with
:mod:`tokenize`, so directive-shaped text inside string literals is ignored.
Malformed directives (unknown verb, unparsable rule list) produce a
``REP000`` finding instead of being silently dropped — a typo in a
suppression must not re-arm a silenced rule without anyone noticing.

A third verb documents lock discipline rather than suppressing anything::

    # repro-lint: lock-protocol=_GAIN_LOCK -- why this lock guards the state
    # repro-lint: lock-protocol=exempt     -- why no lock is needed

It annotates a module-level mutable container's definition line; REP502
reads it from the source to decide which lock must guard writes (or that
the author has justified going lockless). The grammar is validated here
so a typo'd annotation is a REP000 finding, not a silent no-op.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["Suppressions", "collect_suppressions", "lock_protocol_on"]

_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_BODY = re.compile(
    r"^(?P<verb>[a-z-]+)\s*=\s*(?P<rules>[A-Za-z0-9, ]+?)\s*(?:--\s*(?P<why>.*))?$"
)
_RULE_ID = re.compile(r"^(REP\d{3}|all)$")
_LOCK_PROTOCOL = re.compile(
    r"^lock-protocol\s*=\s*(?P<lock>[A-Za-z_][A-Za-z0-9_.]*|exempt)"
    r"\s*(?:--\s*(?P<why>.*))?$"
)


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    #: line number -> rule ids disabled on that line ("all" disables every rule).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file.
    file_wide: set[str] = field(default_factory=set)
    #: REP000 findings for malformed directives.
    errors: list[Finding] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_wide or rule in self.file_wide:
            return True
        on_line = self.by_line.get(line)
        return on_line is not None and ("all" in on_line or rule in on_line)


def collect_suppressions(source: str, path: str) -> Suppressions:
    """Extract suppression directives (and directive errors) from ``source``."""
    supp = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine reports unparsable files separately; nothing to collect.
        return supp
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        stripped = match.group("body").strip()
        if stripped.startswith("lock-protocol"):
            if _LOCK_PROTOCOL.match(stripped) is None:
                supp.errors.append(_bad_directive(path, line, tok.string))
            continue  # annotation, not a suppression: REP502 reads it itself
        body = _BODY.match(stripped)
        verb = body.group("verb") if body else None
        if body is None or verb not in ("disable", "disable-file"):
            supp.errors.append(_bad_directive(path, line, tok.string))
            continue
        rules = {r.strip() for r in body.group("rules").split(",") if r.strip()}
        bad = sorted(r for r in rules if not _RULE_ID.match(r))
        if not rules or bad:
            supp.errors.append(_bad_directive(path, line, tok.string))
            continue
        if verb == "disable-file":
            supp.file_wide |= rules
        else:
            supp.by_line.setdefault(line, set()).update(rules)
    return supp


def lock_protocol_on(line_text: str) -> str | None:
    """The lock name (or ``"exempt"``) a line's annotation declares, if any."""
    match = _DIRECTIVE.search(line_text)
    if match is None:
        return None
    body = _LOCK_PROTOCOL.match(match.group("body").strip())
    return None if body is None else body.group("lock")


def _bad_directive(path: str, line: int, comment: str) -> Finding:
    return Finding(
        rule="REP000",
        path=path,
        line=line,
        col=0,
        message=f"malformed repro-lint directive: {comment.strip()!r}",
        hint="use '# repro-lint: disable=REP101[,REP102] [-- reason]' or disable-file=",
        content=comment.strip(),
    )
