"""Suppression comments: ``# repro-lint: disable=REP101 -- reason``.

Grammar (one directive per comment)::

    # repro-lint: disable=REP101,REP105 [-- justification]
    # repro-lint: disable-file=REP303 [-- justification]
    # repro-lint: disable=all          # escape hatch, discouraged

``disable`` applies to findings on the comment's own physical line;
``disable-file`` applies to the whole file. Comments are extracted with
:mod:`tokenize`, so directive-shaped text inside string literals is ignored.
Malformed directives (unknown verb, unparsable rule list) produce a
``REP000`` finding instead of being silently dropped — a typo in a
suppression must not re-arm a silenced rule without anyone noticing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["Suppressions", "collect_suppressions"]

_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_BODY = re.compile(
    r"^(?P<verb>[a-z-]+)\s*=\s*(?P<rules>[A-Za-z0-9, ]+?)\s*(?:--\s*(?P<why>.*))?$"
)
_RULE_ID = re.compile(r"^(REP\d{3}|all)$")


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    #: line number -> rule ids disabled on that line ("all" disables every rule).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file.
    file_wide: set[str] = field(default_factory=set)
    #: REP000 findings for malformed directives.
    errors: list[Finding] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_wide or rule in self.file_wide:
            return True
        on_line = self.by_line.get(line)
        return on_line is not None and ("all" in on_line or rule in on_line)


def collect_suppressions(source: str, path: str) -> Suppressions:
    """Extract suppression directives (and directive errors) from ``source``."""
    supp = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine reports unparsable files separately; nothing to collect.
        return supp
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = _BODY.match(match.group("body").strip())
        verb = body.group("verb") if body else None
        if body is None or verb not in ("disable", "disable-file"):
            supp.errors.append(_bad_directive(path, line, tok.string))
            continue
        rules = {r.strip() for r in body.group("rules").split(",") if r.strip()}
        bad = sorted(r for r in rules if not _RULE_ID.match(r))
        if not rules or bad:
            supp.errors.append(_bad_directive(path, line, tok.string))
            continue
        if verb == "disable-file":
            supp.file_wide |= rules
        else:
            supp.by_line.setdefault(line, set()).update(rules)
    return supp


def _bad_directive(path: str, line: int, comment: str) -> Finding:
    return Finding(
        rule="REP000",
        path=path,
        line=line,
        col=0,
        message=f"malformed repro-lint directive: {comment.strip()!r}",
        hint="use '# repro-lint: disable=REP101[,REP102] [-- reason]' or disable-file=",
        content=comment.strip(),
    )
