"""Device abstractions: discrete frequency domains and powered devices.

Real CPUs/GPUs expose a *discrete* set of operating frequencies (P-states /
application clocks). The controller computes fractional targets; the
actuation layer (:mod:`repro.actuators`) resolves them onto this grid, via
delta-sigma modulation as described in Section 5 of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import ActuationError, ConfigurationError
from ..units import require_monotonic, require_non_negative
from .power import DevicePowerModel

__all__ = ["FrequencyDomain", "Device"]


class FrequencyDomain:
    """An ordered grid of supported discrete frequencies, in MHz.

    Provides clamping, nearest-level snapping and level arithmetic (move up or
    down ``n`` levels) used by the fixed-step baselines and the delta-sigma
    modulator.
    """

    def __init__(self, levels_mhz: Iterable[float]):
        levels = require_monotonic(levels_mhz, "levels_mhz")
        self._levels = np.asarray(levels, dtype=np.float64)
        # Hot-path scalar metadata (property calls cost real time at ~2M
        # clamp/contains calls per simulated run).
        self._f_min = float(self._levels[0])
        self._f_max = float(self._levels[-1])
        self._level_set = frozenset(self._levels.tolist())
        # A grid is "uniform" only if every level is *exactly* f0 + i*pitch
        # in float64 — then nearest-level arithmetic can replace the
        # searchsorted walk with identical results (the vectorized actuator
        # keys on this).
        if self._levels.size > 1:
            pitch = float(self._levels[1] - self._levels[0])
            exact = pitch > 0 and bool(
                np.all(
                    self._levels
                    == self._f_min + pitch * np.arange(self._levels.size)
                )
            )
            self._uniform_pitch = pitch if exact else None
        else:
            self._uniform_pitch = None

    @classmethod
    def from_range(cls, lo_mhz: float, hi_mhz: float, step_mhz: float) -> "FrequencyDomain":
        """Build a uniform grid ``lo, lo+step, ..., hi`` (inclusive of ``hi``)."""
        if step_mhz <= 0:
            raise ConfigurationError("step_mhz must be positive")
        if hi_mhz < lo_mhz:
            raise ConfigurationError("hi_mhz must be >= lo_mhz")
        n = int(round((hi_mhz - lo_mhz) / step_mhz))
        if abs(lo_mhz + n * step_mhz - hi_mhz) > 1e-9:
            raise ConfigurationError(
                f"range [{lo_mhz}, {hi_mhz}] is not an integer multiple of step {step_mhz}"
            )
        return cls(lo_mhz + step_mhz * np.arange(n + 1))

    @property
    def levels(self) -> np.ndarray:
        """Copy of the level grid in MHz (ascending)."""
        return self._levels.copy()

    @property
    def n_levels(self) -> int:
        return int(self._levels.size)

    @property
    def f_min(self) -> float:
        return self._f_min

    @property
    def f_max(self) -> float:
        return self._f_max

    @property
    def uniform_pitch_mhz(self) -> float | None:
        """Grid pitch when levels are exactly ``f_min + i*pitch``, else None."""
        return self._uniform_pitch

    @property
    def span(self) -> float:
        """``f_max - f_min`` in MHz."""
        return self.f_max - self.f_min

    def clamp(self, f_mhz: float) -> float:
        """Clamp a (possibly fractional) frequency into ``[f_min, f_max]``."""
        return float(min(max(f_mhz, self.f_min), self.f_max))

    def contains(self, f_mhz: float, tol: float = 1e-6) -> bool:
        """True if ``f_mhz`` is (within ``tol``) one of the discrete levels."""
        # Exact hits (the overwhelmingly common case: modulators emit grid
        # values verbatim) resolve through a set lookup; the tolerance scan
        # only runs for off-grid queries.
        if f_mhz in self._level_set:
            return True
        return bool(np.any(np.abs(self._levels - f_mhz) <= tol))

    def nearest(self, f_mhz: float) -> float:
        """Snap to the nearest discrete level (ties resolve downward)."""
        idx = self.nearest_index(f_mhz)
        return float(self._levels[idx])

    def nearest_index(self, f_mhz: float) -> int:
        """Index of the nearest discrete level (ties resolve downward)."""
        # searchsorted gives the insertion point; compare both neighbours.
        i = int(np.searchsorted(self._levels, f_mhz))
        if i == 0:
            return 0
        if i >= self._levels.size:
            return int(self._levels.size - 1)
        below, above = self._levels[i - 1], self._levels[i]
        return i - 1 if (f_mhz - below) <= (above - f_mhz) else i

    def floor(self, f_mhz: float) -> float:
        """Largest level <= ``f_mhz`` (or ``f_min`` if below the grid)."""
        i = int(np.searchsorted(self._levels, f_mhz, side="right")) - 1
        return float(self._levels[max(i, 0)])

    def ceil(self, f_mhz: float) -> float:
        """Smallest level >= ``f_mhz`` (or ``f_max`` if above the grid)."""
        i = int(np.searchsorted(self._levels, f_mhz, side="left"))
        return float(self._levels[min(i, self._levels.size - 1)])

    def step(self, f_mhz: float, n_levels: int) -> float:
        """Move ``n_levels`` grid positions from the level nearest ``f_mhz``.

        Saturates at the grid ends (the fixed-step baseline relies on this).
        """
        idx = self.nearest_index(f_mhz) + int(n_levels)
        idx = min(max(idx, 0), self._levels.size - 1)
        return float(self._levels[idx])

    def step_by_mhz(self, f_mhz: float, delta_mhz: float) -> float:
        """Move by approximately ``delta_mhz``, snapping to the grid.

        Used by the fixed-step baseline, whose step sizes (e.g. 90 MHz for
        GPUs, 100 MHz for CPUs) need not equal the grid pitch. Guarantees at
        least one level of movement when ``delta_mhz`` is non-zero and the
        grid end has not been reached.
        """
        if delta_mhz == 0.0:
            return self.nearest(f_mhz)
        target = self.nearest(self.clamp(f_mhz + delta_mhz))
        current = self.nearest(f_mhz)
        if target == current:
            target = self.step(current, 1 if delta_mhz > 0 else -1)
        return target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrequencyDomain({self.f_min:.0f}..{self.f_max:.0f} MHz, "
            f"{self.n_levels} levels)"
        )


class Device:
    """A powered device (CPU package or GPU) with a discrete frequency domain.

    The device holds its *applied* discrete frequency (what the modulator set
    this tick) and its current utilization in ``[0, 1]`` (set each tick by the
    workload model). :meth:`power_w` evaluates the ground-truth power model.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        domain: FrequencyDomain,
        power_model: DevicePowerModel,
        initial_frequency_mhz: float | None = None,
    ):
        if kind not in ("cpu", "gpu"):
            raise ConfigurationError(f"kind must be 'cpu' or 'gpu', got {kind!r}")
        self.name = str(name)
        self.kind = kind
        self.domain = domain
        self.power_model = power_model
        f0 = domain.f_min if initial_frequency_mhz is None else initial_frequency_mhz
        if not domain.contains(f0):
            raise ConfigurationError(
                f"initial frequency {f0} MHz is not a discrete level of {domain!r}"
            )
        self._frequency_mhz = float(f0)
        self._utilization = 1.0
        # Array-valued shadow of (frequency, utilization). A standalone
        # device owns single-slot arrays; a server re-attaches every device
        # to one stacked pair (see GpuServer) so power evaluation and
        # actuation can run as single vector ops. The scalar attributes
        # above remain the fast read path — every write keeps both in sync.
        self._bank_f = np.array([self._frequency_mhz])
        self._bank_u = np.array([self._utilization])
        self._bank_idx = 0

    def _attach_bank(self, f_bank: np.ndarray, u_bank: np.ndarray, idx: int) -> None:
        """Rebind this device's state slots onto shared stacked arrays."""
        f_bank[idx] = self._frequency_mhz
        u_bank[idx] = self._utilization
        self._bank_f = f_bank
        self._bank_u = u_bank
        self._bank_idx = int(idx)

    @property
    def frequency_mhz(self) -> float:
        """Currently applied discrete frequency."""
        return self._frequency_mhz

    @property
    def utilization(self) -> float:
        """Current busy fraction in ``[0, 1]``."""
        return self._utilization

    def apply_frequency(self, f_mhz: float) -> None:
        """Apply a discrete frequency level (actuators call this each tick)."""
        if not self.domain.contains(f_mhz):
            raise ActuationError(
                f"{self.name}: {f_mhz} MHz is not a supported discrete level"
            )
        self._frequency_mhz = float(f_mhz)
        self._bank_f[self._bank_idx] = self._frequency_mhz

    def set_utilization(self, util: float) -> None:
        """Set the busy fraction for the current tick (clamped to [0, 1])."""
        require_non_negative(util, "utilization")
        self._utilization = float(min(util, 1.0))
        self._bank_u[self._bank_idx] = self._utilization

    def _set_utilization_in_range(self, util: float) -> None:
        """Engine fast path: caller guarantees ``0 <= util <= 1`` already."""
        self._utilization = util
        self._bank_u[self._bank_idx] = util

    def power_w(self) -> float:
        """Ground-truth power draw at the current frequency and utilization."""
        return self.power_model.power_w(self._frequency_mhz, self._utilization)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Device({self.name!r}, {self.kind}, f={self._frequency_mhz:.0f} MHz, "
            f"util={self._utilization:.2f})"
        )
