"""GPU server model: host CPU(s) + multiple GPUs + platform components.

The server is the plant the controllers act on. It composes:

* a list of CPU packages and a list of GPUs (the controllable *channels*,
  ordered CPUs-then-GPUs as in the paper's ``F`` vector);
* a constant platform floor (motherboard, DRAM, NICs, storage, PSU losses);
* a fan bank (fixed speed per the paper's methodology);
* optional thermal nodes per device;
* an AR(1) power disturbance (applied at the wall, i.e. what the ACPI power
  meter sees on top of the component sum).

Only the telemetry layer reads :meth:`total_power_w`; controllers never see
ground truth directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..perf import vectorized_enabled
from ..rng import spawn
from ..units import require_non_negative
from .cpu import CpuModel
from .device import Device
from .fan import FanModel
from .gpu import GpuModel
from .power import Ar1Noise
from .thermal import ThermalNode

__all__ = ["GpuServer", "ChannelRef"]


class ChannelRef:
    """Reference to one controllable frequency channel of a server.

    ``index`` is the position in the server-wide channel vector ``F``
    (CPUs first, then GPUs — the paper's ordering).
    """

    __slots__ = ("index", "kind", "device_index", "name")

    def __init__(self, index: int, kind: str, device_index: int, name: str):
        self.index = index
        self.kind = kind
        self.device_index = device_index
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChannelRef({self.index}, {self.kind}{self.device_index}, {self.name!r})"


class GpuServer:
    """A multi-GPU inference server (the controlled plant).

    Parameters
    ----------
    cpus / gpus:
        Device models. At least one device overall is required.
    static_power_w:
        Constant platform floor in watts.
    fan:
        Fan model; defaults to a fixed-speed bank as in the paper.
    noise:
        Optional AR(1) wall-power disturbance. Pass ``None`` for a
        deterministic plant (useful in unit tests).
    thermal:
        If True, attach a :class:`ThermalNode` per device.
    seed:
        Root seed for the disturbance stream when ``noise`` is not given.
    noise_sigma_w / noise_rho:
        AR(1) parameters used when constructing the default disturbance.
    """

    def __init__(
        self,
        cpus: Sequence[CpuModel],
        gpus: Sequence[GpuModel],
        static_power_w: float = 180.0,
        fan: FanModel | None = None,
        noise: Ar1Noise | None = None,
        thermal: bool = False,
        seed: int | None = 0,
        noise_sigma_w: float = 3.5,
        noise_rho: float = 0.8,
    ):
        self.cpus = list(cpus)
        self.gpus = list(gpus)
        if not self.cpus and not self.gpus:
            raise ConfigurationError("server needs at least one device")
        self.static_power_w = require_non_negative(static_power_w, "static_power_w")
        self.fan = fan if fan is not None else FanModel()
        if noise is not None:
            self.noise = noise
        elif seed is None:
            self.noise = None
        else:
            self.noise = Ar1Noise(noise_sigma_w, noise_rho, spawn(seed, "server-wall-noise"))
        self._noise_value = 0.0
        #: CPU package subtotal as of the last :meth:`step_all` call.
        self.last_cpu_power_w = 0.0
        self.thermal_nodes: list[ThermalNode] | None = (
            [ThermalNode() for _ in self.devices] if thermal else None
        )
        self._channels = self._build_channels()
        # Stacked device state: every device's (frequency, utilization) slot
        # is re-attached onto these arrays, and the power-model coefficients
        # are stacked alongside, so per-tick power evaluation and actuation
        # are single vector expressions instead of per-device Python calls.
        # The scalar Device API writes through to the bank (see Device), so
        # the arrays are always fresh on both paths; whether the *reads*
        # below use them is fixed at construction time.
        devs = self.devices
        self._device_seq = tuple(devs)  # immutable hot-path view
        self._vectorized = vectorized_enabled()
        self._bank_f = np.array([d.frequency_mhz for d in devs], dtype=np.float64)
        self._bank_u = np.array([d.utilization for d in devs], dtype=np.float64)
        for i, d in enumerate(devs):
            d._attach_bank(self._bank_f, self._bank_u, i)
        pm = [d.power_model for d in devs]
        self._pm_idle = np.array([m.idle_w for m in pm])
        self._pm_dyn = np.array([m.dyn_w_per_mhz for m in pm])
        self._pm_floor = np.array([m.util_floor for m in pm])
        self._pm_one_minus_floor = 1.0 - self._pm_floor
        self._pm_quad = np.array([m.quad_w_per_mhz2 for m in pm])
        self._pm_fref = np.array([m.f_ref_mhz for m in pm])
        self._f_min_vec = np.array([d.domain.f_min for d in devs])
        self._f_max_vec = np.array([d.domain.f_max for d in devs])
        # Python-list copies of the stacked coefficients for step_all's
        # scalar fast path (see there for the n<8 restriction).
        self._pm_idle_l = self._pm_idle.tolist()
        self._pm_dyn_l = self._pm_dyn.tolist()
        self._pm_floor_l = self._pm_floor.tolist()
        self._pm_omf_l = self._pm_one_minus_floor.tolist()
        self._pm_quad_l = self._pm_quad.tolist()
        self._pm_fref_l = self._pm_fref.tolist()
        self._fast_power = (
            self._vectorized and self.thermal_nodes is None and len(devs) < 8
        )

    # -- structure ----------------------------------------------------------

    def _build_channels(self) -> list[ChannelRef]:
        chans: list[ChannelRef] = []
        for j, cpu in enumerate(self.cpus):
            chans.append(ChannelRef(len(chans), "cpu", j, f"cpu{j}:{cpu.name}"))
        for i, gpu in enumerate(self.gpus):
            chans.append(ChannelRef(len(chans), "gpu", i, f"gpu{i}:{gpu.name}"))
        return chans

    @property
    def channels(self) -> list[ChannelRef]:
        """Channel references, CPUs first then GPUs (paper's F ordering)."""
        return list(self._channels)

    @property
    def n_channels(self) -> int:
        return len(self._channels)

    @property
    def n_cpus(self) -> int:
        return len(self.cpus)

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def devices(self) -> list[Device]:
        """All devices in channel order."""
        return [*self.cpus, *self.gpus]

    def device(self, channel: int) -> Device:
        """Device backing channel ``channel``."""
        return self.devices[channel]

    def gpu_channel_indices(self) -> list[int]:
        """Channel indices of the GPUs."""
        return [c.index for c in self._channels if c.kind == "gpu"]

    def cpu_channel_indices(self) -> list[int]:
        """Channel indices of the CPUs."""
        return [c.index for c in self._channels if c.kind == "cpu"]

    # -- frequency vector ----------------------------------------------------

    def frequency_vector(self) -> np.ndarray:
        """Current applied frequencies ``F`` in MHz, channel order."""
        return self._bank_f.copy()

    def f_min_vector(self) -> np.ndarray:
        """Per-channel minimum frequencies."""
        return self._f_min_vec.copy()

    def f_max_vector(self) -> np.ndarray:
        """Per-channel maximum frequencies."""
        return self._f_max_vec.copy()

    def utilization_vector(self) -> np.ndarray:
        """Current per-channel busy fractions."""
        return self._bank_u.copy()

    def apply_frequency_levels(self, levels_mhz) -> None:
        """Write one discrete level per device in a single vector store.

        Actuation-layer fast path: the caller (the vectorized server
        actuator) guarantees every entry is an exact grid level of the
        matching domain, so the per-device ``contains`` validation of
        :meth:`Device.apply_frequency` is skipped. Accepts an array or a
        plain list of floats. Scalar mirrors are kept in sync so
        ``device.frequency_mhz`` reads stay cheap and exact.
        """
        self._bank_f[:] = levels_mhz
        if isinstance(levels_mhz, np.ndarray):
            levels_mhz = levels_mhz.tolist()
        for d, f in zip(self._device_seq, levels_mhz):
            d._frequency_mhz = f

    # -- power ----------------------------------------------------------------

    def component_power_w(self) -> np.ndarray:
        """Per-channel device power (ground truth, no wall noise)."""
        if self._vectorized:
            # Same expression as DevicePowerModel.power_w, evaluated on the
            # stacked state — elementwise float64 ops in the identical order,
            # so each entry is bit-identical to the per-device scalar call.
            activity = self._pm_floor + self._pm_one_minus_floor * self._bank_u
            df = self._bank_f - self._pm_fref
            return self._pm_idle + self._pm_dyn * self._bank_f * activity + self._pm_quad * df * df
        return np.array([d.power_w() for d in self.devices], dtype=np.float64)

    def cpu_power_w(self) -> float:
        """Total CPU package power (what RAPL would report)."""
        return float(sum(c.power_w() for c in self.cpus))

    def gpu_power_w(self, index: int | None = None) -> float:
        """Board power of one GPU, or of all GPUs when ``index`` is None."""
        if index is None:
            return float(sum(g.power_w() for g in self.gpus))
        return float(self.gpus[index].power_w())

    def total_power_w(self, include_noise: bool = True) -> float:
        """Wall power right now: devices + platform floor + fan + disturbance."""
        p = self.static_power_w + self.fan.power_w() + float(self.component_power_w().sum())
        if include_noise and self.noise is not None:
            p += self._noise_value
        return p

    def power_envelope_w(self, utilization: float = 1.0) -> tuple[float, float]:
        """Achievable (min, max) wall power at a fixed utilization.

        Used for set-point feasibility checks (Section 4.4's assumption).
        Noise is excluded — the envelope is the deterministic range.
        """
        lo = self.static_power_w + self.fan.power_w()
        hi = lo
        for d in self.devices:
            lo += d.power_model.power_w(d.domain.f_min, utilization)
            hi += d.power_model.power_w(d.domain.f_max, utilization)
        return lo, hi

    # -- time stepping ----------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Advance server-internal dynamics by one tick.

        Samples the wall disturbance and, when thermal modelling is enabled,
        integrates device temperatures and updates the fan.
        """
        if self.noise is not None:
            self._noise_value = self.noise.sample()
        if self.thermal_nodes is not None:
            if self._vectorized:
                hottest = ThermalNode.step_many(
                    self.thermal_nodes, self.component_power_w().tolist(), dt_s
                )
            else:
                hottest = -np.inf
                for node, dev in zip(self.thermal_nodes, self.devices):
                    hottest = max(hottest, node.step(dev.power_w(), dt_s))
            self.fan.update(hottest)
        else:
            self.fan.update(None if self.fan.mode.value == "fixed" else self.fan.t_low_c)

    def step_all(self, dt_s: float) -> float:
        """Advance all stacked device state one tick; returns wall power.

        The vectorized engine's combined per-tick plant update: one
        :meth:`advance` over the banked device vectors followed by one
        ground-truth power evaluation, identical in value to calling the two
        scalar methods back to back. As a side effect the CPU package
        subtotal is stashed in :attr:`last_cpu_power_w` (summed left to
        right, matching :meth:`cpu_power_w`'s associativity bit for bit) so
        the RAPL counter can integrate it without recomputing device powers.
        """
        self.advance(dt_s)
        if self._fast_power:
            # Scalar evaluation of the same per-device expression, read off
            # the (always in-sync) scalar mirrors. Restricted to < 8 devices:
            # numpy's pairwise reduce is strictly sequential below 8
            # elements, so this left-to-right accumulation reproduces
            # ``float(comp.sum())`` bit for bit — and at that size the
            # Python loop is severalfold cheaper than the array expression.
            idle = self._pm_idle_l
            dyn = self._pm_dyn_l
            flo = self._pm_floor_l
            omf = self._pm_omf_l
            quad = self._pm_quad_l
            fref = self._pm_fref_l
            n_cpu = len(self.cpus)
            cpu_p = 0.0
            total = 0.0
            for i, d in enumerate(self._device_seq):
                fi = d._frequency_mhz
                df = fi - fref[i]
                pw = idle[i] + dyn[i] * fi * (flo[i] + omf[i] * d._utilization) + quad[i] * df * df
                total += pw
                if i < n_cpu:
                    cpu_p += pw
            self.last_cpu_power_w = cpu_p
            p = self.static_power_w + self.fan.power_w() + total
        else:
            comp = self.component_power_w()
            cpu_p = 0.0
            for v in comp[: len(self.cpus)].tolist():
                cpu_p += v
            self.last_cpu_power_w = cpu_p
            p = self.static_power_w + self.fan.power_w() + float(comp.sum())
        if self.noise is not None:
            p += self._noise_value
        return p

    def reset(self) -> None:
        """Reset disturbances, temperatures and frequencies to initial state."""
        self._noise_value = 0.0
        if self.noise is not None:
            self.noise.reset()
        if self.thermal_nodes is not None:
            for node in self.thermal_nodes:
                node.reset()
        for d in self.devices:
            d.apply_frequency(d.domain.f_min)
            d.set_utilization(1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuServer({self.n_cpus} CPU, {self.n_gpus} GPU, "
            f"static={self.static_power_w:.0f} W)"
        )
