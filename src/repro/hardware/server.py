"""GPU server model: host CPU(s) + multiple GPUs + platform components.

The server is the plant the controllers act on. It composes:

* a list of CPU packages and a list of GPUs (the controllable *channels*,
  ordered CPUs-then-GPUs as in the paper's ``F`` vector);
* a constant platform floor (motherboard, DRAM, NICs, storage, PSU losses);
* a fan bank (fixed speed per the paper's methodology);
* optional thermal nodes per device;
* an AR(1) power disturbance (applied at the wall, i.e. what the ACPI power
  meter sees on top of the component sum).

Only the telemetry layer reads :meth:`total_power_w`; controllers never see
ground truth directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import spawn
from ..units import require_non_negative
from .cpu import CpuModel
from .device import Device
from .fan import FanModel
from .gpu import GpuModel
from .power import Ar1Noise
from .thermal import ThermalNode

__all__ = ["GpuServer", "ChannelRef"]


class ChannelRef:
    """Reference to one controllable frequency channel of a server.

    ``index`` is the position in the server-wide channel vector ``F``
    (CPUs first, then GPUs — the paper's ordering).
    """

    __slots__ = ("index", "kind", "device_index", "name")

    def __init__(self, index: int, kind: str, device_index: int, name: str):
        self.index = index
        self.kind = kind
        self.device_index = device_index
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChannelRef({self.index}, {self.kind}{self.device_index}, {self.name!r})"


class GpuServer:
    """A multi-GPU inference server (the controlled plant).

    Parameters
    ----------
    cpus / gpus:
        Device models. At least one device overall is required.
    static_power_w:
        Constant platform floor in watts.
    fan:
        Fan model; defaults to a fixed-speed bank as in the paper.
    noise:
        Optional AR(1) wall-power disturbance. Pass ``None`` for a
        deterministic plant (useful in unit tests).
    thermal:
        If True, attach a :class:`ThermalNode` per device.
    seed:
        Root seed for the disturbance stream when ``noise`` is not given.
    noise_sigma_w / noise_rho:
        AR(1) parameters used when constructing the default disturbance.
    """

    def __init__(
        self,
        cpus: Sequence[CpuModel],
        gpus: Sequence[GpuModel],
        static_power_w: float = 180.0,
        fan: FanModel | None = None,
        noise: Ar1Noise | None = None,
        thermal: bool = False,
        seed: int | None = 0,
        noise_sigma_w: float = 3.5,
        noise_rho: float = 0.8,
    ):
        self.cpus = list(cpus)
        self.gpus = list(gpus)
        if not self.cpus and not self.gpus:
            raise ConfigurationError("server needs at least one device")
        self.static_power_w = require_non_negative(static_power_w, "static_power_w")
        self.fan = fan if fan is not None else FanModel()
        if noise is not None:
            self.noise = noise
        elif seed is None:
            self.noise = None
        else:
            self.noise = Ar1Noise(noise_sigma_w, noise_rho, spawn(seed, "server-wall-noise"))
        self._noise_value = 0.0
        self.thermal_nodes: list[ThermalNode] | None = (
            [ThermalNode() for _ in self.devices] if thermal else None
        )
        self._channels = self._build_channels()

    # -- structure ----------------------------------------------------------

    def _build_channels(self) -> list[ChannelRef]:
        chans: list[ChannelRef] = []
        for j, cpu in enumerate(self.cpus):
            chans.append(ChannelRef(len(chans), "cpu", j, f"cpu{j}:{cpu.name}"))
        for i, gpu in enumerate(self.gpus):
            chans.append(ChannelRef(len(chans), "gpu", i, f"gpu{i}:{gpu.name}"))
        return chans

    @property
    def channels(self) -> list[ChannelRef]:
        """Channel references, CPUs first then GPUs (paper's F ordering)."""
        return list(self._channels)

    @property
    def n_channels(self) -> int:
        return len(self._channels)

    @property
    def n_cpus(self) -> int:
        return len(self.cpus)

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def devices(self) -> list[Device]:
        """All devices in channel order."""
        return [*self.cpus, *self.gpus]

    def device(self, channel: int) -> Device:
        """Device backing channel ``channel``."""
        return self.devices[channel]

    def gpu_channel_indices(self) -> list[int]:
        """Channel indices of the GPUs."""
        return [c.index for c in self._channels if c.kind == "gpu"]

    def cpu_channel_indices(self) -> list[int]:
        """Channel indices of the CPUs."""
        return [c.index for c in self._channels if c.kind == "cpu"]

    # -- frequency vector ----------------------------------------------------

    def frequency_vector(self) -> np.ndarray:
        """Current applied frequencies ``F`` in MHz, channel order."""
        return np.array([d.frequency_mhz for d in self.devices], dtype=np.float64)

    def f_min_vector(self) -> np.ndarray:
        """Per-channel minimum frequencies."""
        return np.array([d.domain.f_min for d in self.devices], dtype=np.float64)

    def f_max_vector(self) -> np.ndarray:
        """Per-channel maximum frequencies."""
        return np.array([d.domain.f_max for d in self.devices], dtype=np.float64)

    def utilization_vector(self) -> np.ndarray:
        """Current per-channel busy fractions."""
        return np.array([d.utilization for d in self.devices], dtype=np.float64)

    # -- power ----------------------------------------------------------------

    def component_power_w(self) -> np.ndarray:
        """Per-channel device power (ground truth, no wall noise)."""
        return np.array([d.power_w() for d in self.devices], dtype=np.float64)

    def cpu_power_w(self) -> float:
        """Total CPU package power (what RAPL would report)."""
        return float(sum(c.power_w() for c in self.cpus))

    def gpu_power_w(self, index: int | None = None) -> float:
        """Board power of one GPU, or of all GPUs when ``index`` is None."""
        if index is None:
            return float(sum(g.power_w() for g in self.gpus))
        return float(self.gpus[index].power_w())

    def total_power_w(self, include_noise: bool = True) -> float:
        """Wall power right now: devices + platform floor + fan + disturbance."""
        p = self.static_power_w + self.fan.power_w() + float(self.component_power_w().sum())
        if include_noise and self.noise is not None:
            p += self._noise_value
        return p

    def power_envelope_w(self, utilization: float = 1.0) -> tuple[float, float]:
        """Achievable (min, max) wall power at a fixed utilization.

        Used for set-point feasibility checks (Section 4.4's assumption).
        Noise is excluded — the envelope is the deterministic range.
        """
        lo = self.static_power_w + self.fan.power_w()
        hi = lo
        for d in self.devices:
            lo += d.power_model.power_w(d.domain.f_min, utilization)
            hi += d.power_model.power_w(d.domain.f_max, utilization)
        return lo, hi

    # -- time stepping ----------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Advance server-internal dynamics by one tick.

        Samples the wall disturbance and, when thermal modelling is enabled,
        integrates device temperatures and updates the fan.
        """
        if self.noise is not None:
            self._noise_value = self.noise.sample()
        if self.thermal_nodes is not None:
            hottest = -np.inf
            for node, dev in zip(self.thermal_nodes, self.devices):
                hottest = max(hottest, node.step(dev.power_w(), dt_s))
            self.fan.update(hottest)
        else:
            self.fan.update(None if self.fan.mode.value == "fixed" else self.fan.t_low_c)

    def reset(self) -> None:
        """Reset disturbances, temperatures and frequencies to initial state."""
        self._noise_value = 0.0
        if self.noise is not None:
            self.noise.reset()
        if self.thermal_nodes is not None:
            for node in self.thermal_nodes:
                node.reset()
        for d in self.devices:
            d.apply_frequency(d.domain.f_min)
            d.set_utilization(1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuServer({self.n_cpus} CPU, {self.n_gpus} GPU, "
            f"static={self.static_power_w:.0f} W)"
        )
