"""First-order thermal model for devices (extension beyond the paper).

The paper fixes fan speed and does not model temperature; we include a simple
lumped RC model so that (a) the THERMAL fan mode has a physical driver and
(b) robustness experiments can inject temperature-dependent disturbances.

``T' = (T_ambient + R_th * P - T) / tau`` discretized with forward Euler.
"""

from __future__ import annotations

from ..units import require_positive

__all__ = ["ThermalNode"]


class ThermalNode:
    """Lumped thermal RC node attached to one device.

    Parameters
    ----------
    r_th_c_per_w:
        Thermal resistance junction-to-ambient in degC per watt.
    tau_s:
        Thermal time constant in seconds.
    t_ambient_c:
        Ambient (inlet) temperature.
    """

    def __init__(
        self,
        r_th_c_per_w: float = 0.12,
        tau_s: float = 25.0,
        t_ambient_c: float = 27.0,
    ):
        self.r_th = require_positive(r_th_c_per_w, "r_th_c_per_w")
        self.tau = require_positive(tau_s, "tau_s")
        self.t_ambient = float(t_ambient_c)
        self._temp = self.t_ambient

    @property
    def temperature_c(self) -> float:
        """Current junction temperature."""
        return self._temp

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the node settles at under constant ``power_w``."""
        return self.t_ambient + self.r_th * power_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the node by ``dt_s`` seconds under dissipation ``power_w``.

        Uses an exact exponential update (stable for any ``dt_s``), not raw
        Euler, so large simulation ticks cannot destabilize the model.
        """
        import math

        target = self.steady_state_c(power_w)
        alpha = 1.0 - math.exp(-dt_s / self.tau)
        self._temp += alpha * (target - self._temp)
        return self._temp

    def reset(self) -> None:
        """Return to ambient temperature."""
        self._temp = self.t_ambient

    @staticmethod
    def step_many(nodes: "list[ThermalNode]", powers_w, dt_s: float) -> float:
        """Advance several nodes one tick; returns the hottest temperature.

        Equivalent to calling :meth:`step` per node — each node keeps its
        own ``math.exp`` (libm, so results match the scalar path exactly)
        while the state updates collapse into one pass. Used by the server's
        vectorized stepping path.
        """
        import math

        hottest = -math.inf
        for node, p in zip(nodes, powers_w):
            target = node.t_ambient + node.r_th * p
            alpha = 1.0 - math.exp(-dt_s / node.tau)
            node._temp += alpha * (target - node._temp)
            if node._temp > hottest:
                hottest = node._temp
        return hottest
