"""Circuit-breaker trip model (the risk power capping exists to prevent).

Section 1: oversubscription "imposes a risk of power overload, which could
trip the circuit breakers on the power devices and cause undesired server
shutdowns". Breakers do not trip on instantaneous peaks — they follow an
inverse-time (I²t-style) curve: small overloads are tolerated for long,
large ones trip fast. This model evaluates a power trace against such a
curve, so experiments can ask the question that actually matters for
oversubscription: *would this controller's excursions have tripped the
branch breaker?*

Model: a thermal accumulator driven by the squared overload ratio,

    s(t+dt) = s(t) + dt * [ (p/rating)^2 - 1 ]   when p > rating
    s(t+dt) = max(s(t) - dt * cool_rate, 0)       otherwise

tripping when ``s`` exceeds ``trip_threshold_s``. With the defaults a
sustained 10% overload trips in ~95 s while 1-2 s spikes pass — roughly a
thermal-magnetic breaker's long-time band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.trace import Trace
from ..units import require_positive

__all__ = ["CircuitBreaker", "BreakerVerdict", "evaluate_trace"]


class CircuitBreaker:
    """Inverse-time overload accumulator."""

    def __init__(
        self,
        rating_w: float,
        trip_threshold_s: float = 20.0,
        cool_rate: float = 0.5,
    ):
        self.rating_w = require_positive(rating_w, "rating_w")
        self.trip_threshold_s = require_positive(trip_threshold_s, "trip_threshold_s")
        if cool_rate < 0:
            raise ConfigurationError("cool_rate must be >= 0")
        self.cool_rate = float(cool_rate)
        self._state = 0.0
        self._tripped = False

    @property
    def state(self) -> float:
        """Accumulated overload-seconds."""
        return self._state

    @property
    def tripped(self) -> bool:
        return self._tripped

    def step(self, power_w: float, dt_s: float) -> bool:
        """Advance ``dt_s`` at draw ``power_w``; returns True if tripped."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if self._tripped:
            return True
        ratio = power_w / self.rating_w
        if ratio > 1.0:
            self._state += dt_s * (ratio * ratio - 1.0)
        else:
            self._state = max(self._state - dt_s * self.cool_rate, 0.0)
        if self._state >= self.trip_threshold_s:
            self._tripped = True
        return self._tripped

    def time_to_trip_s(self, power_w: float) -> float:
        """Trip time under *sustained* draw ``power_w`` from a cold state."""
        ratio = power_w / self.rating_w
        if ratio <= 1.0:
            return float("inf")
        return self.trip_threshold_s / (ratio * ratio - 1.0)

    def reset(self) -> None:
        self._state = 0.0
        self._tripped = False


@dataclass(frozen=True)
class BreakerVerdict:
    """Outcome of replaying a run trace through a breaker."""

    tripped: bool
    trip_period: int | None
    peak_state_s: float
    margin: float  # peak accumulated state as a fraction of the threshold

    @property
    def safe(self) -> bool:
        return not self.tripped


def evaluate_trace(
    trace: Trace, breaker: CircuitBreaker, start_period: int = 0
) -> BreakerVerdict:
    """Replay a trace's per-period maximum power through a breaker.

    Uses ``power_max_w`` (the worst 1-second sample each period) held for
    the period duration — conservative, since the real waveform spends only
    part of the period at its peak.
    """
    breaker.reset()
    t = trace["time_s"][start_period:]
    peaks = trace["power_max_w"][start_period:]
    if t.size < 2:
        raise ConfigurationError("need at least two periods")
    durations = np.empty_like(t)
    durations[1:] = np.diff(t)
    durations[0] = durations[1]
    peak_state = 0.0
    trip_period: int | None = None
    for k, (p, dt) in enumerate(zip(peaks, durations)):
        if not np.isfinite(p):
            continue
        tripped = breaker.step(float(p), float(dt))
        peak_state = max(peak_state, breaker.state)
        if tripped:
            trip_period = start_period + k
            break
    return BreakerVerdict(
        tripped=breaker.tripped,
        trip_period=trip_period,
        peak_state_s=peak_state,
        margin=peak_state / breaker.trip_threshold_s,
    )
