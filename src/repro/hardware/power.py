"""Ground-truth power models for the simulated testbed.

The paper's controller assumes power is *linear* in frequency (Eq. 3) and
reports that system identification achieves R^2 ~= 0.96 — good but not
perfect. Our ground truth therefore is *mostly* linear with two deliberate
deviations the controller does not model:

* a utilization term — dynamic power scales with how busy the device is,
  so workload phase changes look like gain changes to the controller
  (this is exactly the robustness scenario of Section 4.4); and
* a small quadratic term — real V(f) curves bend upward at high clocks.

Measurement noise lives in the sensors (:mod:`repro.telemetry`), not here;
this module is deterministic given (frequency, utilization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..perf import vectorized_enabled
from ..rng import BlockSampler
from ..units import require_non_negative

__all__ = ["DevicePowerModel", "Ar1Noise"]


@dataclass(frozen=True)
class DevicePowerModel:
    """Power model ``p(f, u) = idle + dyn*f*(floor + (1-floor)*u) + quad*(f-f_ref)^2``.

    Parameters
    ----------
    idle_w:
        Power at zero dynamic activity (leakage, memory refresh, fans on the
        card, ...). Drawn regardless of frequency.
    dyn_w_per_mhz:
        Dynamic power slope in W/MHz at full utilization.
    util_floor:
        Fraction of the dynamic power drawn even when idle at a given clock
        (clock tree, uncore). ``0 <= util_floor <= 1``.
    quad_w_per_mhz2:
        Small super-linear coefficient; applied to ``(f - f_ref_mhz)^2``.
    f_ref_mhz:
        Reference frequency for the quadratic term (usually the domain
        minimum, so the model is exactly linear at ``f_ref``).
    """

    idle_w: float
    dyn_w_per_mhz: float
    util_floor: float = 0.3
    quad_w_per_mhz2: float = 0.0
    f_ref_mhz: float = 0.0

    def __post_init__(self):
        require_non_negative(self.idle_w, "idle_w")
        require_non_negative(self.dyn_w_per_mhz, "dyn_w_per_mhz")
        require_non_negative(self.quad_w_per_mhz2, "quad_w_per_mhz2")
        require_non_negative(self.f_ref_mhz, "f_ref_mhz")
        if not 0.0 <= self.util_floor <= 1.0:
            raise ConfigurationError(
                f"util_floor must be in [0, 1], got {self.util_floor}"
            )

    def power_w(self, f_mhz: float, utilization: float) -> float:
        """Evaluate the model at frequency ``f_mhz`` and busy fraction ``utilization``."""
        u = min(max(float(utilization), 0.0), 1.0)
        activity = self.util_floor + (1.0 - self.util_floor) * u
        df = f_mhz - self.f_ref_mhz
        return (
            self.idle_w
            + self.dyn_w_per_mhz * f_mhz * activity
            + self.quad_w_per_mhz2 * df * df
        )

    def gain_w_per_mhz(self, utilization: float = 1.0) -> float:
        """Local linear gain dP/df at the reference frequency.

        This is (approximately) the entry of the paper's ``A`` matrix the
        controller identifies for this device under the given utilization.
        """
        u = min(max(float(utilization), 0.0), 1.0)
        activity = self.util_floor + (1.0 - self.util_floor) * u
        return self.dyn_w_per_mhz * activity

    def span_w(self, f_min_mhz: float, f_max_mhz: float, utilization: float = 1.0) -> float:
        """Controllable power range between two frequencies at fixed utilization."""
        return self.power_w(f_max_mhz, utilization) - self.power_w(f_min_mhz, utilization)


class Ar1Noise:
    """First-order autoregressive Gaussian noise, ``n(t) = rho*n(t-1) + w(t)``.

    Server power fluctuates with correlated disturbances (VRM regulation,
    background OS activity), not white noise. ``sigma_w`` is the innovation
    standard deviation; the stationary standard deviation is
    ``sigma_w / sqrt(1 - rho^2)``.
    """

    def __init__(self, sigma_w: float, rho: float, rng):
        require_non_negative(sigma_w, "sigma_w")
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
        self._sigma = float(sigma_w)
        self._rho = float(rho)
        self._rng = rng
        self._state = 0.0
        # Innovations are pre-drawn in blocks: generator batch draws consume
        # the bit stream exactly like repeated scalar draws, so samples (and
        # every digest downstream) are unchanged — only the per-call Python
        # overhead goes away. Fixed at construction alongside the rng.
        self._sampler = (
            BlockSampler(rng, "normal", (0.0, self._sigma))
            if rng is not None and vectorized_enabled()
            else None
        )

    @property
    def stationary_std(self) -> float:
        """Standard deviation of the stationary process."""
        return self._sigma / (1.0 - self._rho**2) ** 0.5

    def sample(self) -> float:
        """Advance one step and return the current noise value (watts)."""
        if self._sampler is not None:
            w = self._sampler.next()
        else:
            w = self._rng.normal(0.0, self._sigma)
        self._state = self._rho * self._state + w
        return self._state

    def reset(self) -> None:
        """Return to the zero state (start of an experiment)."""
        self._state = 0.0
