"""Server presets calibrated to the paper's two testbeds.

* :func:`v100_server` — the evaluation testbed of Section 5: one Intel Xeon
  Gold 5215 host CPU and three Tesla V100 16 GB GPUs. Wall power spans
  roughly 700-1300 W across the actuation range under load, which makes the
  paper's 800-1200 W set points feasible (Section 6.3) and leaves CPU-Only
  capping with far too little range (Section 6.2).
* :func:`rtx3090_server` — the motivation box of Section 3.2: one host CPU
  and a single RTX 3090, used for the Table 1 end-to-end experiment
  (~400-420 W wall power at the studied frequency pairs).
"""

from __future__ import annotations

from .cpu import XEON_GOLD_5215, CpuModel, CpuSpec
from .fan import FanModel
from .gpu import RTX_3090, TESLA_V100_16GB, GpuModel
from .server import GpuServer

__all__ = ["v100_server", "rtx3090_server", "custom_server"]


def v100_server(
    seed: int | None = 0,
    n_gpus: int = 3,
    noise_sigma_w: float = 3.5,
    thermal: bool = False,
) -> GpuServer:
    """Build the paper's 3x V100 evaluation server.

    Parameters
    ----------
    seed:
        Root seed for the wall-power disturbance; ``None`` disables noise.
    n_gpus:
        Number of V100s (the paper uses 3; up to 8 is typical for the class
        of server the paper targets).
    noise_sigma_w:
        AR(1) innovation std of the wall disturbance.
    thermal:
        Enable the thermal extension (off in the paper's methodology).
    """
    cpus = [CpuModel(XEON_GOLD_5215)]
    gpus = [GpuModel(TESLA_V100_16GB) for _ in range(n_gpus)]
    return GpuServer(
        cpus=cpus,
        gpus=gpus,
        static_power_w=180.0,
        fan=FanModel(max_power_w=120.0, fixed_speed=0.7),
        seed=seed,
        noise_sigma_w=noise_sigma_w,
        thermal=thermal,
    )


def rtx3090_server(seed: int | None = 0, noise_sigma_w: float = 2.0) -> GpuServer:
    """Build the single-GPU RTX 3090 motivation box (Table 1).

    The host CPU of the motivation box runs 1.1-2.1 GHz in the paper's
    experiment; we expose 1000-2400 MHz like the main testbed and let the
    experiment pick the paper's operating points.
    """
    cpu_spec = CpuSpec(
        name="desktop-host",
        n_cores=12,
        levels_mhz=tuple(1000.0 + 100.0 * i for i in range(15)),
        idle_w=30.0,
        dyn_w_per_mhz=0.058,
        util_floor=0.35,
        quad_w_per_mhz2=8e-7,
    )
    return GpuServer(
        cpus=[CpuModel(cpu_spec)],
        gpus=[GpuModel(RTX_3090)],
        static_power_w=158.0,
        fan=FanModel(max_power_w=40.0, fixed_speed=0.6),
        seed=seed,
        noise_sigma_w=noise_sigma_w,
    )


def custom_server(
    n_cpus: int = 1,
    n_gpus: int = 3,
    seed: int | None = 0,
    **server_kwargs,
) -> GpuServer:
    """Build a server with ``n_cpus`` Xeon packages and ``n_gpus`` V100s.

    Convenience for scaling studies (e.g. controller overhead vs. number of
    GPUs, Section 4.3's 4-8 GPU overhead claim).
    """
    cpus = [CpuModel(XEON_GOLD_5215) for _ in range(n_cpus)]
    gpus = [GpuModel(TESLA_V100_16GB) for _ in range(n_gpus)]
    return GpuServer(cpus=cpus, gpus=gpus, seed=seed, **server_kwargs)
