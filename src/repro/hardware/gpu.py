"""GPU accelerator model.

Models an NVIDIA-style GPU with application clocks: a fixed memory clock and
a discrete grid of core clocks (what ``nvidia-smi -ac <mem>,<core>`` sets).
Calibrations are provided for the paper's Tesla V100 (evaluation testbed)
and the RTX 3090 used in the motivation experiment (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import require_positive
from .device import Device, FrequencyDomain
from .power import DevicePowerModel

__all__ = ["GpuSpec", "GpuModel", "TESLA_V100_16GB", "RTX_3090"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU.

    ``core_levels_mhz`` is the supported application-clock grid (NVIDIA
    exposes core clocks in coarse vendor-specific multiples; the paper cites
    135/225 MHz-style granularity and uses 90 MHz fixed steps).
    """

    name: str
    core_levels_mhz: tuple[float, ...]
    memory_clock_mhz: float
    idle_w: float
    dyn_w_per_mhz: float
    util_floor: float = 0.25
    quad_w_per_mhz2: float = 0.0
    tdp_w: float = 300.0

    def __post_init__(self):
        require_positive(self.memory_clock_mhz, "memory_clock_mhz")
        require_positive(self.tdp_w, "tdp_w")
        if not self.core_levels_mhz:
            raise ConfigurationError("core_levels_mhz must be non-empty")

    def domain(self) -> FrequencyDomain:
        """Build the core-clock frequency domain."""
        return FrequencyDomain(self.core_levels_mhz)

    def power_model(self) -> DevicePowerModel:
        """Build the board power model."""
        return DevicePowerModel(
            idle_w=self.idle_w,
            dyn_w_per_mhz=self.dyn_w_per_mhz,
            util_floor=self.util_floor,
            quad_w_per_mhz2=self.quad_w_per_mhz2,
            f_ref_mhz=min(self.core_levels_mhz),
        )


#: Calibrated to the paper's Tesla V100 16 GB: core clocks 435-1350 MHz
#: (15 MHz granularity — V100 exposes a fine application-clock grid), memory
#: fixed at 877 MHz as in Section 5. Under full load the board draws ~120 W
#: at 435 MHz and ~290 W at 1350 MHz (TDP 300 W), giving each GPU a ~170 W
#: controllable span — an order of magnitude more than the host CPU.
TESLA_V100_16GB = GpuSpec(
    name="tesla-v100-16gb",
    core_levels_mhz=tuple(435.0 + 15.0 * i for i in range(62)),  # 435..1350
    memory_clock_mhz=877.0,
    idle_w=41.0,
    dyn_w_per_mhz=0.185,
    util_floor=0.25,
    quad_w_per_mhz2=1.6e-5,
    tdp_w=300.0,
)

#: Calibrated to the RTX 3090 used in the Table 1 motivation box: core clocks
#: 495-1695 MHz, TDP 350 W.
RTX_3090 = GpuSpec(
    name="rtx-3090",
    core_levels_mhz=tuple(495.0 + 15.0 * i for i in range(81)),  # 495..1695
    memory_clock_mhz=9751.0,
    idle_w=35.0,
    dyn_w_per_mhz=0.175,
    util_floor=0.25,
    quad_w_per_mhz2=1.2e-5,
    tdp_w=350.0,
)


class GpuModel(Device):
    """A GPU with application-clock actuation and a fixed memory clock."""

    def __init__(self, spec: GpuSpec, initial_frequency_mhz: float | None = None):
        super().__init__(
            name=spec.name,
            kind="gpu",
            domain=spec.domain(),
            power_model=spec.power_model(),
            initial_frequency_mhz=initial_frequency_mhz,
        )
        self.spec = spec

    @property
    def memory_clock_mhz(self) -> float:
        return self.spec.memory_clock_mhz

    @property
    def core_clock_mhz(self) -> float:
        """Alias of :attr:`frequency_mhz` using NVIDIA terminology."""
        return self.frequency_mhz
