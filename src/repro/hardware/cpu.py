"""CPU package model (host processor with DVFS).

Models the server's host CPU as one frequency domain spanning all cores
(package-level DVFS, as actuated by ``cpupower frequency-set`` in the paper).
Per-core busy fractions are aggregated into a package utilization for the
power model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import mhz_to_ghz, require_positive
from .device import Device, FrequencyDomain
from .power import DevicePowerModel

__all__ = ["CpuSpec", "CpuModel", "XEON_GOLD_5215"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a host CPU package.

    Frequencies are MHz. ``levels_mhz`` is the discrete P-state grid exposed
    to the governor (``cpupower`` accepts any of these).
    """

    name: str
    n_cores: int
    levels_mhz: tuple[float, ...]
    idle_w: float
    dyn_w_per_mhz: float
    util_floor: float = 0.35
    quad_w_per_mhz2: float = 0.0

    def __post_init__(self):
        if self.n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        require_positive(self.idle_w, "idle_w")

    def domain(self) -> FrequencyDomain:
        """Build the frequency domain from the level grid."""
        return FrequencyDomain(self.levels_mhz)

    def power_model(self) -> DevicePowerModel:
        """Build the package power model."""
        return DevicePowerModel(
            idle_w=self.idle_w,
            dyn_w_per_mhz=self.dyn_w_per_mhz,
            util_floor=self.util_floor,
            quad_w_per_mhz2=self.quad_w_per_mhz2,
            f_ref_mhz=min(self.levels_mhz),
        )


#: Calibrated to the paper's testbed host (Intel Xeon Gold 5215, 40 cores,
#: DVFS range roughly 1.0-2.4 GHz in 100 MHz steps). The dynamic slope gives
#: a package-level controllable span of ~85 W across the DVFS range — the
#: "very minimal control range" that makes CPU-Only capping infeasible on a
#: GPU server (Section 6.2).
XEON_GOLD_5215 = CpuSpec(
    name="xeon-gold-5215",
    n_cores=40,
    levels_mhz=tuple(1000.0 + 100.0 * i for i in range(15)),  # 1000..2400
    idle_w=46.0,
    dyn_w_per_mhz=0.0607,
    util_floor=0.35,
    quad_w_per_mhz2=1.2e-6,
)


class CpuModel(Device):
    """A host CPU package with per-core utilization accounting."""

    def __init__(self, spec: CpuSpec, initial_frequency_mhz: float | None = None):
        super().__init__(
            name=spec.name,
            kind="cpu",
            domain=spec.domain(),
            power_model=spec.power_model(),
            initial_frequency_mhz=initial_frequency_mhz,
        )
        self.spec = spec
        self._core_util = np.zeros(spec.n_cores, dtype=np.float64)

    @property
    def n_cores(self) -> int:
        return self.spec.n_cores

    @property
    def frequency_ghz(self) -> float:
        """Convenience accessor in GHz (the unit ``cpupower`` displays)."""
        return mhz_to_ghz(self.frequency_mhz)

    def set_core_utilization(self, core: int, util: float) -> None:
        """Set one core's busy fraction; package utilization is the mean."""
        if not 0 <= core < self.spec.n_cores:
            raise ConfigurationError(
                f"core index {core} out of range [0, {self.spec.n_cores})"
            )
        self._core_util[core] = min(max(float(util), 0.0), 1.0)
        self.set_utilization(float(self._core_util.mean()))

    def set_core_utilizations(self, utils: np.ndarray) -> None:
        """Set all core busy fractions at once (length must match n_cores)."""
        arr = np.asarray(utils, dtype=np.float64)
        if arr.shape != (self.spec.n_cores,):
            raise ConfigurationError(
                f"expected shape ({self.spec.n_cores},), got {arr.shape}"
            )
        np.clip(arr, 0.0, 1.0, out=self._core_util)
        self.set_utilization(float(self._core_util.mean()))

    @property
    def core_utilizations(self) -> np.ndarray:
        """Copy of the per-core busy fractions."""
        return self._core_util.copy()
