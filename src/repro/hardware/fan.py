"""Server fan model.

The paper notes that fans are a significant contributor to ML-server power
and that the authors *fix the fan speed to a constant value* to isolate
workload-driven variation (Section 5). We model both modes:

* ``FIXED`` — constant speed, constant power (the paper's configuration and
  our default);
* ``THERMAL`` — speed follows the hottest device temperature through a
  proportional fan curve (used by the robustness extensions to inject
  unmodeled power dynamics).

Fan power follows the cube law ``P = p_max * (speed_fraction)^3``.
"""

from __future__ import annotations

import enum

from ..errors import ConfigurationError
from ..units import require_in_range, require_positive

__all__ = ["FanMode", "FanModel"]


class FanMode(enum.Enum):
    """Fan control mode."""

    FIXED = "fixed"
    THERMAL = "thermal"


class FanModel:
    """Cube-law fan bank.

    Parameters
    ----------
    max_power_w:
        Electrical power of the fan bank at 100% speed.
    fixed_speed:
        Speed fraction in ``(0, 1]`` used in ``FIXED`` mode.
    mode:
        Control mode; defaults to the paper's fixed-speed configuration.
    t_low_c / t_high_c:
        In ``THERMAL`` mode, the fan ramps linearly from ``min_speed`` at
        ``t_low_c`` to full speed at ``t_high_c``.
    min_speed:
        Floor speed fraction in ``THERMAL`` mode.
    """

    def __init__(
        self,
        max_power_w: float = 120.0,
        fixed_speed: float = 0.7,
        mode: FanMode = FanMode.FIXED,
        t_low_c: float = 40.0,
        t_high_c: float = 85.0,
        min_speed: float = 0.3,
    ):
        self.max_power_w = require_positive(max_power_w, "max_power_w")
        self.fixed_speed = require_in_range(fixed_speed, 1e-6, 1.0, "fixed_speed")
        if not isinstance(mode, FanMode):
            raise ConfigurationError(f"mode must be a FanMode, got {mode!r}")
        if t_high_c <= t_low_c:
            raise ConfigurationError("t_high_c must exceed t_low_c")
        self.mode = mode
        self.t_low_c = float(t_low_c)
        self.t_high_c = float(t_high_c)
        self.min_speed = require_in_range(min_speed, 0.0, 1.0, "min_speed")
        self._speed = self.fixed_speed

    @property
    def speed(self) -> float:
        """Current speed fraction."""
        return self._speed

    def update(self, hottest_temp_c: float | None = None) -> None:
        """Advance the fan state for one tick.

        In ``FIXED`` mode the argument is ignored. In ``THERMAL`` mode the
        hottest device temperature drives the fan curve.
        """
        if self.mode is FanMode.FIXED:
            self._speed = self.fixed_speed
            return
        if hottest_temp_c is None:
            raise ConfigurationError("THERMAL fan mode requires a temperature input")
        frac = (hottest_temp_c - self.t_low_c) / (self.t_high_c - self.t_low_c)
        self._speed = min(max(self.min_speed, self.min_speed + (1 - self.min_speed) * frac), 1.0)

    def power_w(self) -> float:
        """Electrical power at the current speed (cube law)."""
        return self.max_power_w * self._speed**3
