"""Simulated GPU-server hardware: devices, power models, server composition.

This package is the substitute for the paper's physical testbed (see
DESIGN.md). It provides parametric CPU/GPU models with discrete frequency
grids and utilization-dependent power, a fan and optional thermal model,
and :class:`GpuServer` composing them into the controlled plant.
"""

from .breaker import BreakerVerdict, CircuitBreaker, evaluate_trace
from .cpu import XEON_GOLD_5215, CpuModel, CpuSpec
from .device import Device, FrequencyDomain
from .fan import FanMode, FanModel
from .gpu import RTX_3090, TESLA_V100_16GB, GpuModel, GpuSpec
from .power import Ar1Noise, DevicePowerModel
from .presets import custom_server, rtx3090_server, v100_server
from .server import ChannelRef, GpuServer
from .thermal import ThermalNode

__all__ = [
    "CircuitBreaker",
    "BreakerVerdict",
    "evaluate_trace",
    "CpuModel",
    "CpuSpec",
    "XEON_GOLD_5215",
    "Device",
    "FrequencyDomain",
    "FanMode",
    "FanModel",
    "GpuModel",
    "GpuSpec",
    "TESLA_V100_16GB",
    "RTX_3090",
    "Ar1Noise",
    "DevicePowerModel",
    "ChannelRef",
    "GpuServer",
    "ThermalNode",
    "v100_server",
    "rtx3090_server",
    "custom_server",
]
