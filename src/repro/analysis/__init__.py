"""Analysis: control/serving metrics and report rendering."""

from .metrics import (
    ViolationStats,
    mean_over_steady,
    overshoot_w,
    rmse_to_set_point,
    settling_time_periods,
    slo_miss_rate,
    steady_state_stats,
    violation_stats,
)
from .ascii_plot import ascii_plot, sparkline
from .energy import EfficiencyReport, efficiency_report, energy_j
from .tables import format_series, format_table

__all__ = [
    "steady_state_stats",
    "mean_over_steady",
    "settling_time_periods",
    "overshoot_w",
    "rmse_to_set_point",
    "ViolationStats",
    "violation_stats",
    "slo_miss_rate",
    "format_table",
    "format_series",
    "sparkline",
    "ascii_plot",
    "energy_j",
    "EfficiencyReport",
    "efficiency_report",
]
