"""Dependency-free ASCII visualization for traces (reports and CLI output).

The experiment harness prints numbers; these helpers add a quick visual:
:func:`sparkline` renders a series as one line of block characters, and
:func:`ascii_plot` renders a small multi-row chart with a y-axis. Both are
NaN-aware (gaps render as spaces).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["sparkline", "ascii_plot"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    """Bucket-average ``values`` down to ``width`` samples (NaN-aware)."""
    if values.size <= width:
        return values
    bounds = np.linspace(0, values.size, width + 1).astype(int)
    out = np.empty(width)
    for i in range(width):
        chunk = values[bounds[i]:bounds[i + 1]]
        finite = chunk[np.isfinite(chunk)]
        out[i] = finite.mean() if finite.size else np.nan
    return out


def sparkline(
    values: Sequence[float],
    width: int = 60,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """One-line block-character rendering of a series.

    ``lo``/``hi`` pin the scale (useful to compare several sparklines);
    by default the finite min/max of the data are used.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("sparkline needs a non-empty 1-D series")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    arr = _resample(arr, width)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo_v = float(np.min(finite)) if lo is None else float(lo)
    hi_v = float(np.max(finite)) if hi is None else float(hi)
    span = hi_v - lo_v
    chars = []
    for v in arr:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_BLOCKS[len(_BLOCKS) // 2])
            continue
        frac = min(max((v - lo_v) / span, 0.0), 1.0)
        chars.append(_BLOCKS[int(round(frac * (len(_BLOCKS) - 1)))])
    return "".join(chars)


def ascii_plot(
    values: Sequence[float],
    width: int = 70,
    height: int = 10,
    title: str | None = None,
    y_fmt: str = "{:8.1f}",
    marker: str = "*",
    reference: float | None = None,
) -> str:
    """Small ASCII chart with a y-axis; optionally draws a reference line.

    ``reference`` (e.g. the power set point) renders as a row of ``-``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("ascii_plot needs a non-empty 1-D series")
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must be >= 2")
    arr = _resample(arr, width)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ConfigurationError("series contains no finite values")
    lo = float(np.min(finite))
    hi = float(np.max(finite))
    if reference is not None:
        lo = min(lo, reference)
        hi = max(hi, reference)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * arr.size for _ in range(height)]
    ref_row = None
    if reference is not None:
        ref_row = int(round((hi - reference) / (hi - lo) * (height - 1)))
        for x in range(arr.size):
            grid[ref_row][x] = "-"
    for x, v in enumerate(arr):
        if not np.isfinite(v):
            continue
        row = int(round((hi - v) / (hi - lo) * (height - 1)))
        grid[row][x] = marker
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_fmt.format(hi)
        elif r == height - 1:
            label = y_fmt.format(lo)
        elif ref_row is not None and r == ref_row and reference is not None:
            label = y_fmt.format(reference)
        else:
            label = " " * len(y_fmt.format(0.0))
        lines.append(f"{label} |{''.join(row)}")
    return "\n".join(lines)
