"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table.

    Floats use ``float_fmt``; everything else uses ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], float_fmt: str = "{:.1f}"
) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    pairs = " ".join(
        f"({float_fmt.format(float(x))}, {float_fmt.format(float(y))})"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
