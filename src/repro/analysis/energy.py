"""Energy and efficiency metrics derived from run traces.

The power-capping literature the paper builds on (and its related-work
energy-efficiency thread) evaluates not just *whether* a controller holds
the cap but what useful work each joule buys. These helpers integrate the
period-averaged power into energy and relate it to delivered inference
work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.trace import Trace
from ..units import joules_to_kilojoules

__all__ = ["energy_j", "EfficiencyReport", "efficiency_report"]


def energy_j(trace: Trace, start_period: int = 0) -> float:
    """Energy consumed from ``start_period`` on, in joules.

    Integrates the per-period mean power over the period durations derived
    from the ``time_s`` channel (the engine records period end times).
    """
    t = trace["time_s"][start_period:]
    p = trace["power_w"][start_period:]
    if t.size == 0:
        raise ConfigurationError("trace window is empty")
    if t.size == 1:
        raise ConfigurationError("need at least two periods to integrate")
    durations = np.empty_like(t)
    durations[1:] = np.diff(t)
    durations[0] = durations[1]  # first period: same length as the second
    if np.any(durations <= 0):
        raise ConfigurationError("time_s must be strictly increasing")
    return float(np.sum(p * durations))


@dataclass(frozen=True)
class EfficiencyReport:
    """Work-per-energy summary of one run."""

    energy_j: float
    gpu_batches: float
    cpu_events: float
    duration_s: float

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.duration_s

    @property
    def batches_per_kj(self) -> float:
        """Inference batches completed per kilojoule."""
        return self.gpu_batches / joules_to_kilojoules(self.energy_j)

    @property
    def joules_per_batch(self) -> float:
        return self.energy_j / self.gpu_batches if self.gpu_batches else float("inf")


def efficiency_report(
    trace: Trace, gpu_channels, start_period: int = 0
) -> EfficiencyReport:
    """Build an :class:`EfficiencyReport` from a run trace.

    ``gpu_channels`` are the channel indices whose ``tput_<c>`` columns
    count inference batches per second; CPU work comes from ``cpu_tput``.
    """
    t = trace["time_s"][start_period:]
    if t.size < 2:
        raise ConfigurationError("need at least two periods")
    durations = np.empty_like(t)
    durations[1:] = np.diff(t)
    durations[0] = durations[1]
    e = energy_j(trace, start_period)
    batches = 0.0
    for c in gpu_channels:
        rates = trace[f"tput_{c}"][start_period:]
        finite = np.isfinite(rates)
        batches += float(np.sum(rates[finite] * durations[finite]))
    cpu_rates = trace["cpu_tput"][start_period:]
    finite = np.isfinite(cpu_rates)
    cpu_events = float(np.sum(cpu_rates[finite] * durations[finite]))
    return EfficiencyReport(
        energy_j=e,
        gpu_batches=batches,
        cpu_events=cpu_events,
        duration_s=float(np.sum(durations)),
    )
