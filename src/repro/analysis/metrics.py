"""Control-quality and serving-quality metrics computed from run traces.

These are the quantities the paper's evaluation reports: steady-state power
statistics (Fig. 6's mean ± std), settling time and overshoot (Fig. 3/10
narratives), cap violations (Fig. 4/5), throughput/latency aggregates
(Fig. 7) and SLO miss rates (Fig. 8/9). All functions take the engine's
:class:`~repro.telemetry.trace.Trace` (one row per control period).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.trace import Trace

__all__ = [
    "steady_state_stats",
    "settling_time_periods",
    "overshoot_w",
    "rmse_to_set_point",
    "ViolationStats",
    "violation_stats",
    "slo_miss_rate",
    "mean_over_steady",
]


def _steady_slice(trace: Trace, steady_last: int) -> slice:
    if steady_last < 1:
        raise ConfigurationError("steady_last must be >= 1")
    if len(trace) == 0:
        raise ConfigurationError("trace is empty")
    return slice(max(0, len(trace) - steady_last), len(trace))


def steady_state_stats(trace: Trace, steady_last: int = 80) -> tuple[float, float]:
    """(mean, std) of period-average power over the last ``steady_last`` periods.

    Section 6.3 averages the last 80 of 100 periods — the same convention.
    """
    sl = _steady_slice(trace, steady_last)
    p = trace["power_w"][sl]
    return float(np.mean(p)), float(np.std(p))


def mean_over_steady(trace: Trace, channel: str, steady_last: int = 80) -> float:
    """Steady-state mean of any trace channel (NaN-aware)."""
    sl = _steady_slice(trace, steady_last)
    vals = trace[channel][sl]
    vals = vals[np.isfinite(vals)]
    return float(np.mean(vals)) if vals.size else float("nan")


def settling_time_periods(
    trace: Trace,
    tolerance_w: float = 15.0,
    hold_periods: int = 5,
    start_period: int = 0,
) -> float:
    """First period after ``start_period`` from which power stays within
    ``tolerance_w`` of the set point for at least ``hold_periods`` periods.

    Returns ``inf`` when the trace never settles (e.g. CPU-Only against an
    unreachable cap). Set-point changes are handled by passing the change
    period as ``start_period`` (used for Fig. 10's adaptation timing).
    """
    if hold_periods < 1:
        raise ConfigurationError("hold_periods must be >= 1")
    p = trace["power_w"]
    sp = trace["set_point_w"]
    n = len(trace)
    inside = np.abs(p - sp) <= tolerance_w
    for k in range(max(start_period, 0), n - hold_periods + 1):
        if np.all(inside[k : k + hold_periods]):
            return float(k - start_period)
    return float("inf")


def overshoot_w(trace: Trace, start_period: int = 0) -> float:
    """Maximum excursion of the period-max power above the set point."""
    peaks = trace["power_max_w"][start_period:]
    sp = trace["set_point_w"][start_period:]
    excess = peaks - sp
    return float(np.max(excess)) if excess.size else float("nan")


def rmse_to_set_point(trace: Trace, steady_last: int = 80) -> float:
    """Steady-state RMS tracking error."""
    sl = _steady_slice(trace, steady_last)
    err = trace["power_w"][sl] - trace["set_point_w"][sl]
    return float(np.sqrt(np.mean(err**2)))


@dataclass(frozen=True)
class ViolationStats:
    """Cap-violation accounting over (part of) a run."""

    n_periods: int
    n_violations: int
    worst_excess_w: float
    mean_excess_w: float

    @property
    def violation_rate(self) -> float:
        return self.n_violations / self.n_periods if self.n_periods else float("nan")


def violation_stats(
    trace: Trace, margin_w: float = 0.0, start_period: int = 0
) -> ViolationStats:
    """Count periods whose *maximum sample* exceeded the cap by > ``margin_w``.

    Violations are judged on the 1-second meter samples' maximum, not the
    period average — a breaker trips on the peak, which is why Safe
    Fixed-step needs its margin (Section 6.2).
    """
    peaks = trace["power_max_w"][start_period:]
    sp = trace["set_point_w"][start_period:]
    excess = peaks - sp - margin_w
    over = excess > 0
    return ViolationStats(
        n_periods=int(peaks.size),
        n_violations=int(np.sum(over)),
        worst_excess_w=float(np.max(excess)) if excess.size else float("nan"),
        mean_excess_w=float(np.mean(excess[over])) if np.any(over) else 0.0,
    )


def slo_miss_rate(trace: Trace, gpu_index: int, start_period: int = 0) -> float:
    """Fraction of batches violating the SLO, aggregated over periods.

    Uses the per-period miss fractions recorded by the engine (NaN periods —
    no batch completed or no SLO set — are skipped).
    """
    col = trace[f"slo_miss_g{gpu_index}"][start_period:]
    vals = col[np.isfinite(col)]
    return float(np.mean(vals)) if vals.size else float("nan")
