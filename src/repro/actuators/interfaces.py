"""Command-style frequency interfaces (cpupower / nvidia-smi fidelity layer).

The paper's frequency modulators are driven through OS tools:

* ``sudo cpupower frequency-set -f {freq}GHz`` for the host CPU;
* ``nvidia-smi -ac 877,<core>`` for each GPU (memory pinned at 877 MHz).

These classes parse/validate commands in exactly those shapes and forward to
the :class:`~repro.actuators.actuator.ServerActuator`. They exist so the
examples and tests can exercise the same command surface a deployment would,
including its failure modes (off-grid clocks rejected, bad GHz strings).
"""

from __future__ import annotations

import re

from ..errors import ActuationError, ConfigurationError
from ..hardware.server import GpuServer
from ..units import ghz_to_mhz
from .actuator import ServerActuator

__all__ = ["CpupowerInterface", "NvidiaSmiInterface"]

_GHZ_RE = re.compile(r"^\s*(?P<value>\d+(?:\.\d+)?)\s*GHz\s*$", re.IGNORECASE)


class CpupowerInterface:
    """``cpupower frequency-set``-shaped control of one CPU package.

    Fractional targets are legal here (unlike the real tool) because the
    delta-sigma modulator underneath realizes them over time — this mirrors
    the paper's Section 5, where the modulator code locally resolves the
    controller's floating-point command into a level sequence.
    """

    def __init__(self, server: GpuServer, actuator: ServerActuator, cpu_index: int = 0):
        if not 0 <= cpu_index < server.n_cpus:
            raise ConfigurationError(f"cpu_index {cpu_index} out of range")
        self._channel = server.cpu_channel_indices()[cpu_index]
        self._actuator = actuator
        self._domain = server.cpus[cpu_index].domain

    def frequency_set(self, command: str) -> float:
        """Parse a ``-f`` argument like ``"1.6GHz"`` and stage the target.

        Returns the staged target in MHz. Raises :class:`ActuationError` for
        malformed strings or out-of-range frequencies.
        """
        m = _GHZ_RE.match(command)
        if not m:
            raise ActuationError(f"malformed cpupower frequency {command!r}")
        mhz = ghz_to_mhz(float(m.group("value")))
        if mhz < self._domain.f_min - 1e-9 or mhz > self._domain.f_max + 1e-9:
            raise ActuationError(
                f"{mhz:.0f} MHz outside supported range "
                f"[{self._domain.f_min:.0f}, {self._domain.f_max:.0f}]"
            )
        self._actuator.set_target(self._channel, mhz)
        return mhz

    def frequency_info(self) -> dict:
        """Analogue of ``cpupower frequency-info``: range + current target."""
        return {
            "hardware_limits_mhz": (self._domain.f_min, self._domain.f_max),
            "available_frequencies_mhz": list(self._domain.levels),
            "current_target_mhz": float(self._actuator.targets()[self._channel]),
        }


class NvidiaSmiInterface:
    """``nvidia-smi -ac``-shaped control of the GPUs.

    :meth:`set_application_clocks` takes only on-grid core clocks, like the
    real tool. :meth:`set_fractional_clock` is the controller-facing path
    that accepts floats and relies on delta-sigma modulation.
    """

    def __init__(self, server: GpuServer, actuator: ServerActuator):
        self._server = server
        self._actuator = actuator
        self._gpu_channels = server.gpu_channel_indices()

    def set_application_clocks(self, gpu_index: int, mem_mhz: float, core_mhz: float) -> float:
        """Stage a discrete application clock, validating like ``nvidia-smi -ac``."""
        if not 0 <= gpu_index < self._server.n_gpus:
            raise ActuationError(f"GPU index {gpu_index} out of range")
        gpu = self._server.gpus[gpu_index]
        if abs(mem_mhz - gpu.memory_clock_mhz) > 1e-6:
            raise ActuationError(
                f"memory clock {mem_mhz} MHz unsupported (fixed at "
                f"{gpu.memory_clock_mhz} MHz)"
            )
        if not gpu.domain.contains(core_mhz):
            raise ActuationError(f"core clock {core_mhz} MHz is not a supported level")
        self._actuator.set_target(self._gpu_channels[gpu_index], core_mhz)
        return float(core_mhz)

    def set_fractional_clock(self, gpu_index: int, core_mhz: float) -> float:
        """Stage a fractional core-clock target (modulator resolves it)."""
        if not 0 <= gpu_index < self._server.n_gpus:
            raise ActuationError(f"GPU index {gpu_index} out of range")
        channel = self._gpu_channels[gpu_index]
        clamped = self._server.gpus[gpu_index].domain.clamp(core_mhz)
        self._actuator.set_target(channel, clamped)
        return clamped

    def query_clocks(self) -> list[float]:
        """Current applied core clocks of all GPUs (``nvidia-smi -q -d CLOCK``)."""
        return [g.core_clock_mhz for g in self._server.gpus]
