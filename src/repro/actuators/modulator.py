"""Frequency modulators: resolving fractional commands onto discrete levels.

The controller emits floating-point frequency targets, but hardware only
supports discrete levels. Section 5 of the paper resolves this with a
*first-order delta-sigma modulator* that toggles between the two nearest
discrete steps so the time-averaged frequency converges to the target (their
example: toggling 2, 2, 2, 3 GHz to average 2.25 GHz).

Two modulators are provided:

* :class:`DeltaSigmaModulator` — the paper's scheme (error feedback);
* :class:`NearestLevelModulator` — plain rounding, used as an ablation
  (``benchmarks/test_bench_ablation.py`` shows the steady-state power bias
  it introduces).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..hardware.device import FrequencyDomain

__all__ = ["Modulator", "DeltaSigmaModulator", "NearestLevelModulator"]


class Modulator(ABC):
    """Maps a fractional frequency target to a sequence of discrete levels."""

    def __init__(self, domain: FrequencyDomain):
        self.domain = domain

    @abstractmethod
    def next_level(self, target_mhz: float) -> float:
        """Return the discrete level to apply for the next tick."""

    @abstractmethod
    def reset(self) -> None:
        """Clear internal state."""


class DeltaSigmaModulator(Modulator):
    """First-order error-feedback delta-sigma modulator.

    Each tick the accumulated quantization error is added to the target
    before snapping to the nearest level; the residual feeds back. Over a
    window of ticks the mean applied level converges to the (clamped) target
    with error bounded by one level pitch divided by the window length.
    """

    def __init__(self, domain: FrequencyDomain):
        super().__init__(domain)
        self._err = 0.0
        # Anti-windup bound: one mean level pitch. The grid is immutable, so
        # this is a constant of the domain, hoisted out of next_level.
        max_pitch = float(domain.levels[-1] - domain.levels[0])
        self._pitch = max_pitch / max(domain.n_levels - 1, 1)

    @property
    def err_mhz(self) -> float:
        """Accumulated quantization error fed back into the next tick."""
        return self._err

    def next_level(self, target_mhz: float) -> float:
        target = self.domain.clamp(target_mhz)
        desired = target + self._err
        level = self.domain.nearest(self.domain.clamp(desired))
        # Saturate the error so a long stretch at a domain boundary cannot
        # wind up an unbounded correction (anti-windup).
        pitch = self._pitch
        self._err = min(max(desired - level, -pitch), pitch)
        return level

    def reset(self) -> None:
        self._err = 0.0


class NearestLevelModulator(Modulator):
    """Stateless rounding to the nearest discrete level (ablation baseline)."""

    def next_level(self, target_mhz: float) -> float:
        return self.domain.nearest(self.domain.clamp(target_mhz))

    def reset(self) -> None:  # no state
        pass
