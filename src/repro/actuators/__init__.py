"""Actuation: modulators resolving fractional frequency commands to levels.

Implements the paper's Section 5 actuation path: controllers emit fractional
targets once per control period; first-order delta-sigma modulators dither
between adjacent discrete levels each tick so the time-averaged frequency
converges to the command.
"""

from .actuator import ChannelActuator, ServerActuator
from .interfaces import CpupowerInterface, NvidiaSmiInterface
from .modulator import DeltaSigmaModulator, Modulator, NearestLevelModulator

__all__ = [
    "ChannelActuator",
    "ServerActuator",
    "CpupowerInterface",
    "NvidiaSmiInterface",
    "DeltaSigmaModulator",
    "NearestLevelModulator",
    "Modulator",
]
