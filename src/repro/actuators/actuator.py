"""Per-channel and server-wide frequency actuation.

The actuation layer sits between controllers (which emit fractional targets
once per control period) and devices (which accept one discrete level per
simulation tick):

* :class:`ChannelActuator` owns the modulator for one device and applies one
  level per tick;
* :class:`ServerActuator` fans a target vector out to all channels, tracks
  the tick-averaged *applied* frequency per control period (what the
  controller's incremental model should see as ``F(k-1)``), and models a
  one-tick command latency: a target set during tick ``t`` first affects the
  level applied at tick ``t+1`` — like writing a sysfs file that the
  governor picks up on its next update.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ActuationError
from ..hardware.device import Device
from ..hardware.server import GpuServer
from .modulator import DeltaSigmaModulator, Modulator

__all__ = ["ChannelActuator", "ServerActuator"]


class ChannelActuator:
    """Actuates a single device through a modulator."""

    def __init__(self, device: Device, modulator: Modulator | None = None):
        self.device = device
        self.modulator = modulator if modulator is not None else DeltaSigmaModulator(device.domain)
        self._target_mhz = device.frequency_mhz
        self._pending_mhz: float | None = None

    @property
    def target_mhz(self) -> float:
        """Currently active (possibly fractional) target."""
        return self._target_mhz

    def set_target(self, f_mhz: float) -> None:
        """Stage a new fractional target (takes effect next tick)."""
        if not np.isfinite(f_mhz):
            raise ActuationError(f"{self.device.name}: non-finite target {f_mhz!r}")
        self._pending_mhz = self.device.domain.clamp(float(f_mhz))

    def tick(self) -> float:
        """Apply one modulated discrete level; returns the applied level."""
        if self._pending_mhz is not None:
            self._target_mhz = self._pending_mhz
            self._pending_mhz = None
        level = self.modulator.next_level(self._target_mhz)
        self.device.apply_frequency(level)
        return level

    def reset(self) -> None:
        """Clear modulator state and pending commands; target = current freq."""
        self.modulator.reset()
        self._pending_mhz = None
        self._target_mhz = self.device.frequency_mhz


class ServerActuator:
    """Vector actuation across all channels of a server.

    Parameters
    ----------
    server:
        The plant.
    modulator_factory:
        Callable ``FrequencyDomain -> Modulator``; defaults to the paper's
        delta-sigma modulator.
    """

    def __init__(self, server: GpuServer, modulator_factory=None):
        factory = modulator_factory if modulator_factory is not None else DeltaSigmaModulator
        self.server = server
        self.channels = [ChannelActuator(d, factory(d.domain)) for d in server.devices]
        n = len(self.channels)
        self._applied_sum = np.zeros(n, dtype=np.float64)
        self._applied_ticks = 0

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def targets(self) -> np.ndarray:
        """Vector of active targets in MHz."""
        return np.array([c.target_mhz for c in self.channels], dtype=np.float64)

    def set_targets(self, f_mhz: Sequence[float]) -> None:
        """Stage a full target vector (length must match channel count)."""
        arr = np.asarray(f_mhz, dtype=np.float64)
        if arr.shape != (len(self.channels),):
            raise ActuationError(
                f"expected {len(self.channels)} targets, got shape {arr.shape}"
            )
        for chan, f in zip(self.channels, arr):
            chan.set_target(float(f))

    def set_target(self, channel: int, f_mhz: float) -> None:
        """Stage a target for one channel."""
        self.channels[channel].set_target(f_mhz)

    def tick(self) -> np.ndarray:
        """Advance all modulators one tick; returns applied discrete levels."""
        applied = np.array([c.tick() for c in self.channels], dtype=np.float64)
        self._applied_sum += applied
        self._applied_ticks += 1
        return applied

    def applied_average_and_reset(self) -> np.ndarray:
        """Tick-averaged applied frequencies since the last call.

        This is the effective ``F(k-1)`` the plant actually experienced over
        the elapsed control period (the whole point of delta-sigma: the
        average, not any single level, tracks the fractional command).
        """
        if self._applied_ticks == 0:
            return self.targets()
        avg = self._applied_sum / self._applied_ticks
        self._applied_sum[:] = 0.0
        self._applied_ticks = 0
        return avg

    def reset(self) -> None:
        """Reset all channel actuators and the averaging window."""
        for c in self.channels:
            c.reset()
        self._applied_sum[:] = 0.0
        self._applied_ticks = 0
