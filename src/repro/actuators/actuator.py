"""Per-channel and server-wide frequency actuation.

The actuation layer sits between controllers (which emit fractional targets
once per control period) and devices (which accept one discrete level per
simulation tick):

* :class:`ChannelActuator` owns the modulator for one device and applies one
  level per tick;
* :class:`ServerActuator` fans a target vector out to all channels, tracks
  the tick-averaged *applied* frequency per control period (what the
  controller's incremental model should see as ``F(k-1)``), and models a
  one-tick command latency: a target set during tick ``t`` first affects the
  level applied at tick ``t+1`` — like writing a sysfs file that the
  governor picks up on its next update.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..errors import ActuationError
from ..hardware.device import Device
from ..hardware.server import GpuServer
from ..perf import vectorized_enabled
from .modulator import DeltaSigmaModulator, Modulator, NearestLevelModulator

__all__ = ["ChannelActuator", "ServerActuator"]


class ChannelActuator:
    """Actuates a single device through a modulator."""

    def __init__(self, device: Device, modulator: Modulator | None = None):
        self.device = device
        self.modulator = modulator if modulator is not None else DeltaSigmaModulator(device.domain)
        self._target_mhz = device.frequency_mhz
        self._pending_mhz: float | None = None

    @property
    def target_mhz(self) -> float:
        """Currently active (possibly fractional) target."""
        return self._target_mhz

    def set_target(self, f_mhz: float) -> None:
        """Stage a new fractional target (takes effect next tick)."""
        if not np.isfinite(f_mhz):
            raise ActuationError(f"{self.device.name}: non-finite target {f_mhz!r}")
        self._pending_mhz = self.device.domain.clamp(float(f_mhz))

    def tick(self) -> float:
        """Apply one modulated discrete level; returns the applied level."""
        if self._pending_mhz is not None:
            self._target_mhz = self._pending_mhz
            self._pending_mhz = None
        level = self.modulator.next_level(self._target_mhz)
        self.device.apply_frequency(level)
        return level

    def reset(self) -> None:
        """Clear modulator state and pending commands; target = current freq."""
        self.modulator.reset()
        self._pending_mhz = None
        self._target_mhz = self.device.frequency_mhz


class ServerActuator:
    """Vector actuation across all channels of a server.

    Parameters
    ----------
    server:
        The plant.
    modulator_factory:
        Callable ``FrequencyDomain -> Modulator``; defaults to the paper's
        delta-sigma modulator.
    """

    def __init__(self, server: GpuServer, modulator_factory=None):
        factory = modulator_factory if modulator_factory is not None else DeltaSigmaModulator
        self.server = server
        self.channels = [ChannelActuator(d, factory(d.domain)) for d in server.devices]
        n = len(self.channels)
        self._applied_sum = np.zeros(n, dtype=np.float64)
        self._applied_ticks = 0
        # Batched per-tick rollout: eligible when every domain is an
        # exact-uniform grid (nearest-level snapping then reduces to index
        # arithmetic that reconstructs the very same float64 levels) and the
        # modulators are one of the two stock kinds. Custom modulators and
        # irregular grids keep the per-channel modulator path. State lives in
        # plain Python float lists, not numpy arrays: at the handful of
        # channels a server has, scalar IEEE arithmetic is both bit-identical
        # to the vector expressions and severalfold cheaper per tick.
        domains = [d.domain for d in server.devices]
        self._vec_mode: str | None = None
        if vectorized_enabled() and all(
            dom.uniform_pitch_mhz is not None for dom in domains
        ):
            if modulator_factory is None or modulator_factory is DeltaSigmaModulator:
                self._vec_mode = "delta-sigma"
            elif modulator_factory is NearestLevelModulator:
                self._vec_mode = "nearest"
        self._vec = self._vec_mode is not None
        if self._vec:
            self._f_min = [dom.f_min for dom in domains]
            self._f_max = [dom.f_max for dom in domains]
            self._grid_pitch = [dom.uniform_pitch_mhz for dom in domains]
            self._k_max = [float(dom.n_levels - 2) for dom in domains]
            self._tgt = [c.target_mhz for c in self.channels]
            self._stale_targets = True
            self._applied_vec = [0.0] * n
            # Nearest-level modulation is stateless: the applied vector is a
            # pure function of the targets, recomputed only on promotion.
            self._applied_cache: list | None = None
            if self._vec_mode == "delta-sigma":
                # The anti-windup bound each DeltaSigmaModulator computed for
                # itself — read back so the clip is bitwise the scalar one.
                self._err_bound = [c.modulator._pitch for c in self.channels]
                self._err = [0.0] * n
            self._applied_sum_vec = [0.0] * n

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def targets(self) -> np.ndarray:
        """Vector of active targets in MHz."""
        return np.array([c.target_mhz for c in self.channels], dtype=np.float64)

    def set_targets(self, f_mhz: Sequence[float]) -> None:
        """Stage a full target vector (length must match channel count)."""
        arr = np.asarray(f_mhz, dtype=np.float64)
        if arr.shape != (len(self.channels),):
            raise ActuationError(
                f"expected {len(self.channels)} targets, got shape {arr.shape}"
            )
        for chan, f in zip(self.channels, arr):
            chan.set_target(float(f))
        if self._vec:
            self._stale_targets = True

    def set_target(self, channel: int, f_mhz: float) -> None:
        """Stage a target for one channel."""
        self.channels[channel].set_target(f_mhz)
        if self._vec:
            self._stale_targets = True

    def tick(self):
        """Advance all modulators one tick; returns applied discrete levels.

        Returns an ``np.ndarray`` on the per-channel modulator path and a
        plain list of floats on the batched path — the levels are identical;
        the engine consumes neither (it reads the device bank).
        """
        if not self._vec:
            applied = np.array([c.tick() for c in self.channels], dtype=np.float64)
            self._applied_sum += applied
            self._applied_ticks += 1
            return applied
        if self._stale_targets:
            # Promote pending commands (the one-tick latency) and refresh
            # the target vector; between control periods this is skipped.
            tgt = self._tgt
            for i, c in enumerate(self.channels):
                if c._pending_mhz is not None:
                    c._target_mhz = c._pending_mhz
                    c._pending_mhz = None
                tgt[i] = c._target_mhz
            self._stale_targets = False
            if self._vec_mode == "nearest":
                self._applied_cache = [
                    self._snap_to_level(t, i) for i, t in enumerate(self._tgt)
                ]
        if self._vec_mode == "nearest":
            # Stateless rounding: constant between target changes.
            applied = self._applied_cache
        else:
            # The delta-sigma rollout of DeltaSigmaModulator.next_level,
            # unrolled over channels with every float op in the modulator's
            # order — bitwise the same levels and error state. Targets are
            # already domain-clamped by set_target.
            floor = math.floor
            tgt = self._tgt
            err = self._err
            bound = self._err_bound
            f_min = self._f_min
            f_max = self._f_max
            pitch = self._grid_pitch
            k_max = self._k_max
            applied = self._applied_vec
            for i in range(len(applied)):
                desired = tgt[i] + err[i]
                lo = f_min[i]
                hi = f_max[i]
                clipped = lo if desired < lo else (hi if desired > hi else desired)
                p = pitch[i]
                k = floor((clipped - lo) / p)
                km = k_max[i]
                if k > km:
                    k = km
                below = lo + p * k
                above = lo + p * (k + 1.0)
                level = below if (clipped - below) <= (above - clipped) else above
                applied[i] = level
                e = desired - level
                b = bound[i]
                err[i] = -b if e < -b else (b if e > b else e)
        self.server.apply_frequency_levels(applied)
        s = self._applied_sum_vec
        for i, a in enumerate(applied):
            s[i] += a
        self._applied_ticks += 1
        return applied

    def _snap_to_level(self, desired: float, i: int) -> float:
        """Snap one desired frequency to channel ``i``'s nearest level.

        Exploits the exact-uniform grids: levels reconstruct as
        ``f_min + pitch*k`` bit-for-bit (checked at domain construction), and
        comparing both neighbours reproduces the modulator's searchsorted
        walk including its resolve-ties-down rule.
        """
        lo = self._f_min[i]
        hi = self._f_max[i]
        clipped = lo if desired < lo else (hi if desired > hi else desired)
        p = self._grid_pitch[i]
        k = math.floor((clipped - lo) / p)
        km = self._k_max[i]
        if k > km:
            k = km
        below = lo + p * k
        above = lo + p * (k + 1.0)
        return below if (clipped - below) <= (above - clipped) else above

    def applied_average_and_reset(self) -> np.ndarray:
        """Tick-averaged applied frequencies since the last call.

        This is the effective ``F(k-1)`` the plant actually experienced over
        the elapsed control period (the whole point of delta-sigma: the
        average, not any single level, tracks the fractional command).
        """
        if self._applied_ticks == 0:
            return self.targets()
        if self._vec:
            s = self._applied_sum_vec
            avg = np.array(s, dtype=np.float64) / self._applied_ticks
            for i in range(len(s)):
                s[i] = 0.0
        else:
            avg = self._applied_sum / self._applied_ticks
            self._applied_sum[:] = 0.0
        self._applied_ticks = 0
        return avg

    def reset(self) -> None:
        """Reset all channel actuators and the averaging window."""
        for c in self.channels:
            c.reset()
        self._applied_sum[:] = 0.0
        self._applied_ticks = 0
        if self._vec:
            self._stale_targets = True
            self._applied_cache = None
            self._applied_sum_vec = [0.0] * len(self.channels)
            if self._vec_mode == "delta-sigma":
                self._err = [0.0] * len(self.channels)
