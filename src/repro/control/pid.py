"""PID power controller and a ground-truth oracle (extra comparators).

Neither is in the paper, but both sharpen the evaluation:

* :class:`PidController` — the classic server-capping design (Lefurgy et
  al.'s P-controller plus integral action): the integral term removes any
  steady-state bias, at the cost of tuning and wind-up handling. Actuates
  all channels with a shared *fraction-of-range* command, so CPU and GPU
  ranges are respected without per-channel logic.
* :class:`OracleController` — cheats: reads the plant's true deterministic
  power model and solves for the frequency vector that exactly hits the set
  point (one-dimensional along the current allocation direction). It is the
  performance *upper bound* for power-tracking accuracy; CapGPU's residual
  vs the oracle is pure disturbance, not control error.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hardware.server import GpuServer
from .base import ControlObservation, PowerCappingController

__all__ = ["PidController", "OracleController"]


class PidController(PowerCappingController):
    """Shared fraction-of-range PID on the total-power error.

    The command ``u`` in [0, 1] maps each channel to
    ``f_min + u * (f_max - f_min)``. Gains are expressed in fraction per
    watt; a plant-aware default is ``kp = pole_factor / span`` where
    ``span`` is the total controllable watts.

    Anti-windup: the integral freezes while the command saturates.
    """

    name = "pid"

    def __init__(
        self,
        span_w: float,
        kp_frac_per_w: float | None = None,
        ki_frac_per_w: float | None = None,
        kd_frac_per_w: float = 0.0,
    ):
        if span_w <= 0:
            raise ConfigurationError("span_w must be positive")
        self.span_w = float(span_w)
        self.kp = kp_frac_per_w if kp_frac_per_w is not None else 0.5 / span_w
        self.ki = ki_frac_per_w if ki_frac_per_w is not None else 0.1 / span_w
        self.kd = float(kd_frac_per_w)
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ConfigurationError("PID gains must be >= 0")
        self._integral = 0.0
        self._last_error: float | None = None
        self._u = 0.0

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None
        self._u = 0.0

    def step(self, obs: ControlObservation) -> np.ndarray:
        err = obs.error_w  # positive = headroom
        d_term = 0.0
        if self._last_error is not None:
            d_term = self.kd * (err - self._last_error)
        self._last_error = err
        u_unsat = self.kp * err + self.ki * (self._integral + err) + d_term + self._u
        u = min(max(u_unsat, 0.0), 1.0)
        # Conditional integration: accumulate only when not pushing further
        # into a saturated command (anti-windup).
        if (u_unsat <= 1.0 or err < 0) and (u_unsat >= 0.0 or err > 0):
            self._integral += err
        self._u = u
        return obs.f_min_mhz + u * (obs.f_max_mhz - obs.f_min_mhz)


class OracleController(PowerCappingController):
    """Upper-bound comparator with access to the plant's true power model.

    Each period it computes, from the *noiseless* device models at current
    utilizations, the scalar position ``u`` along [f_min, f_max] whose
    predicted total power equals the set point (bisection — the true model
    includes a quadratic term, so it is monotone but not affine), and
    commands that frequency vector. Residual tracking error under the
    oracle is exactly the unmodelled disturbance (wall noise + utilization
    drift within the period).
    """

    name = "oracle"

    def __init__(self, server: GpuServer, tol_w: float = 0.01):
        self.server = server
        if tol_w <= 0:
            raise ConfigurationError("tol_w must be positive")
        self.tol_w = float(tol_w)

    def _predicted_power(self, u: float) -> float:
        total = self.server.static_power_w + self.server.fan.power_w()
        for dev in self.server.devices:
            f = dev.domain.f_min + u * (dev.domain.f_max - dev.domain.f_min)
            total += dev.power_model.power_w(f, dev.utilization)
        return total

    def step(self, obs: ControlObservation) -> np.ndarray:
        lo, hi = 0.0, 1.0
        p_lo, p_hi = self._predicted_power(lo), self._predicted_power(hi)
        target = obs.set_point_w
        if target <= p_lo:
            u = 0.0
        elif target >= p_hi:
            u = 1.0
        else:
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                p_mid = self._predicted_power(mid)
                if abs(p_mid - target) < self.tol_w:
                    break
                if p_mid < target:
                    lo = mid
                else:
                    hi = mid
            u = 0.5 * (lo + hi)
        return obs.f_min_mhz + u * (obs.f_max_mhz - obs.f_min_mhz)
