"""Safe-mode watchdog: last-line-of-defence wrapper around any controller.

Power capping exists to keep branch breakers from tripping
(:mod:`repro.hardware.breaker`); a controller that is fed bad telemetry or
whose actuators misbehave can sit above the cap long enough to trip one.
The watchdog wraps any :class:`PowerCappingController` and enforces a
breaker-shaped guarantee independent of the inner strategy:

* every period it evaluates the *worst* credible power reading — the
  primary measurement and, by default, the independent NVML + RAPL
  side-channel estimate the engine always computes (so a frozen or biased
  wall meter cannot blind it);
* after ``trip_periods`` consecutive over-cap periods it enters **safe
  mode**: all channels are commanded to their minimum frequency and the
  inner controller is bypassed (a single spike never trips it — breakers
  tolerate short excursions, and reacting to one sample would fight the
  inner controller's own transient response);
* it stays there until the loop re-converges (``release_periods``
  consecutive in-cap periods), then resets the inner controller and hands
  control back, restarting cleanly from the safe floor exactly like the
  paper's safe cold start.

The engine records the watchdog's state in the trace's ``safe_mode``
channel via the ``in_safe_mode`` property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .base import ControlObservation, PowerCappingController

__all__ = ["WatchdogConfig", "SafeModeWatchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Trip/release policy of the safe-mode watchdog.

    ``trip_periods`` consecutive periods with power above
    ``set_point * (1 + overcap_tolerance)`` enter safe mode;
    ``release_periods`` consecutive periods back at or under
    ``set_point * (1 + release_tolerance)`` leave it. ``cross_check``
    includes the observation's independent ``power_alt_w`` estimate in the
    over-cap test, guarding against a meter that under-reports.
    """

    trip_periods: int = 3
    overcap_tolerance: float = 0.02
    release_periods: int = 2
    release_tolerance: float = 0.02
    cross_check: bool = True

    def __post_init__(self):
        if self.trip_periods < 1:
            raise ConfigurationError("trip_periods must be >= 1")
        if self.release_periods < 1:
            raise ConfigurationError("release_periods must be >= 1")
        if self.overcap_tolerance < 0 or self.release_tolerance < 0:
            raise ConfigurationError("tolerances must be >= 0")


class SafeModeWatchdog(PowerCappingController):
    """Wraps ``inner`` with the safe-mode trip/release state machine."""

    def __init__(
        self,
        inner: PowerCappingController,
        config: WatchdogConfig = WatchdogConfig(),
    ):
        self.inner = inner
        self.config = config
        self.name = f"watchdog({inner.name})"
        self._over_count = 0
        self._calm_count = 0
        self._safe = False
        #: Periods spent in safe mode and distinct entries, for reports.
        self.safe_periods = 0
        self.safe_entries = 0

    # -- state inspection ---------------------------------------------------------

    @property
    def in_safe_mode(self) -> bool:
        return self._safe

    def _worst_power_w(self, obs: ControlObservation) -> float:
        """Most pessimistic credible reading (NaN-safe; NaN = no evidence)."""
        candidates = [obs.power_w]
        if self.config.cross_check:
            candidates.append(obs.power_alt_w)
        finite = [p for p in candidates if np.isfinite(p)]
        return max(finite) if finite else float("nan")

    # -- controller contract ------------------------------------------------------

    def initial_targets(self, f_min_mhz, f_max_mhz) -> np.ndarray:
        return self.inner.initial_targets(f_min_mhz, f_max_mhz)

    def step(self, obs: ControlObservation) -> np.ndarray:
        cfg = self.config
        worst = self._worst_power_w(obs)
        over = (
            np.isfinite(worst)
            and worst > obs.set_point_w * (1.0 + cfg.overcap_tolerance)
        )
        if not self._safe:
            self._over_count = self._over_count + 1 if over else 0
            if self._over_count >= cfg.trip_periods:
                self._safe = True
                self.safe_entries += 1
                self._over_count = 0
                self._calm_count = 0
                self.safe_periods += 1
                return np.asarray(obs.f_min_mhz, dtype=np.float64).copy()
            return self.inner.step(obs)

        # Safe mode: hold the floor until the loop re-converges, then hand
        # control back with the inner controller restarted from clean state.
        calm = np.isfinite(worst) and worst <= obs.set_point_w * (
            1.0 + cfg.release_tolerance
        )
        self._calm_count = self._calm_count + 1 if calm else 0
        if self._calm_count >= cfg.release_periods:
            self._safe = False
            self._calm_count = 0
            self.inner.reset()
            return self.inner.step(obs)
        self.safe_periods += 1
        return np.asarray(obs.f_min_mhz, dtype=np.float64).copy()

    def batch_commands(self, obs: ControlObservation) -> dict[int, int] | None:
        # While the floor is held the inner strategy must not keep steering
        # the second knob.
        if self._safe:
            return None
        return self.inner.batch_commands(obs)

    def reset(self) -> None:
        self._over_count = 0
        self._calm_count = 0
        self._safe = False
        self.safe_periods = 0
        self.safe_entries = 0
        self.inner.reset()
