"""CPU+GPU split-budget baseline (PowerCoord [2]-style).

Section 6.1: "CPU+GPU utilizes two separate power control loops to
independently control the CPU and GPU power ... Given a total power budget,
CPU+GPU simply divides the budget using fixed values." Each loop is a
proportional controller on its *subsystem* power:

* the CPU loop reads package power from RAPL and tracks
  ``cpu_ratio * P_s``;
* the GPU loop reads total board power from NVML and tracks
  ``(1 - cpu_ratio) * P_s`` with a single shared GPU clock.

Because the platform floor (motherboard, fans, PSU losses) belongs to
neither loop, and because the subsystem ranges rarely match the fixed split,
the *total* wall power does not converge to the cap — the failure mode
Figures 3 and 6 demonstrate for both the 50/50 and 60/40 splits.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import ControlObservation, PowerCappingController
from .pole_placement import proportional_gain

__all__ = ["CpuPlusGpuController"]


class CpuPlusGpuController(PowerCappingController):
    """Two independent subsystem loops with a fixed budget split.

    Parameters
    ----------
    gpu_ratio:
        Fraction of the total budget assigned to the GPU subsystem (the
        paper tests 0.5 and 0.6); the CPU subsystem receives the remainder.
    cpu_gain_w_per_mhz / gpu_group_gain_w_per_mhz:
        Identified subsystem gains for pole placement (the CPU loop sees
        only RAPL power, the GPU loop only the summed board power).
    pole:
        Closed-loop pole of both loops.
    """

    name = "cpu+gpu"

    def __init__(
        self,
        gpu_ratio: float,
        cpu_gain_w_per_mhz: float,
        gpu_group_gain_w_per_mhz: float,
        pole: float = 0.5,
    ):
        if not 0.0 < gpu_ratio < 1.0:
            raise ConfigurationError("gpu_ratio must lie in (0, 1)")
        self.gpu_ratio = float(gpu_ratio)
        self.kp_cpu = proportional_gain(cpu_gain_w_per_mhz, pole)
        self.kp_gpu = proportional_gain(gpu_group_gain_w_per_mhz, pole)
        self._f_cpu: float | None = None
        self._f_gpu: float | None = None

    def reset(self) -> None:
        self._f_cpu = None
        self._f_gpu = None

    @property
    def cpu_ratio(self) -> float:
        return 1.0 - self.gpu_ratio

    def step(self, obs: ControlObservation) -> np.ndarray:
        if obs.gpu_power_w is None or not np.isfinite(obs.cpu_power_w):
            raise ConfigurationError(
                "CPU+GPU needs per-subsystem power (RAPL + NVML) in the observation"
            )
        targets = obs.f_targets_mhz.copy()
        cpu_cap = self.cpu_ratio * obs.set_point_w
        gpu_cap = self.gpu_ratio * obs.set_point_w

        # CPU loop: shared command over all CPU channels against RAPL power.
        cpu_idx = list(obs.cpu_channels)
        if self._f_cpu is None:
            self._f_cpu = float(np.mean(targets[cpu_idx]))
        self._f_cpu += self.kp_cpu * (cpu_cap - obs.cpu_power_w)
        lo = float(np.max(obs.f_min_mhz[cpu_idx]))
        hi = float(np.min(obs.f_max_mhz[cpu_idx]))
        self._f_cpu = min(max(self._f_cpu, lo), hi)
        targets[cpu_idx] = self._f_cpu

        # GPU loop: shared command over all GPU channels against NVML power.
        gpu_idx = list(obs.gpu_channels)
        if self._f_gpu is None:
            self._f_gpu = float(np.mean(targets[gpu_idx]))
        total_gpu_power = float(np.sum(obs.gpu_power_w))
        self._f_gpu += self.kp_gpu * (gpu_cap - total_gpu_power)
        lo = float(np.max(obs.f_min_mhz[gpu_idx]))
        hi = float(np.min(obs.f_max_mhz[gpu_idx]))
        self._f_gpu = min(max(self._f_gpu, lo), hi)
        targets[gpu_idx] = self._f_gpu
        return targets
