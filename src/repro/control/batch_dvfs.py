"""Coordinated batching + DVFS controller (extension, after [20]).

The related work the paper's Fixed-step baseline is inspired by —
Nabavinejad et al., "Coordinated batching and DVFS for DNN inference on GPU
accelerators" (TPDS 2022) — uses the *batch size* as a second knob next to
the GPU clock: larger batches amortize fixed launch costs (better
throughput per watt) but lengthen per-batch latency, so the batch is pushed
as high as each task's SLO allows while a frequency loop tracks the power
cap.

Our rendition for the multi-GPU server:

* power loop — proportional control of a single shared GPU clock against
  the total-power error (pole-placed, like GPU-Only; CPU pinned at max);
* batching loop — each period, every GPU's batch size is set to the largest
  value whose model-predicted latency at the *current* clock meets that
  task's SLO (or ``batch_cap`` without an SLO).

Like GPU-Only it cannot give different GPUs different clocks; unlike
GPU-Only it can trade latency headroom for throughput via batch size. The
comparison bench shows where that helps and where CapGPU's per-device
clocks still win.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..workloads.models import InferenceModelSpec
from .base import ControlObservation
from .proportional import GroupProportionalController

__all__ = ["BatchDvfsController"]


class BatchDvfsController(GroupProportionalController):
    """Shared-GPU-clock P-control plus per-task SLO-bounded batch sizing.

    Parameters
    ----------
    gpu_group_gain_w_per_mhz:
        Aggregate identified GPU gain (pole placement, as GPU-Only).
    task_specs:
        Mapping GPU *index* -> workload spec (provides the batch-latency
        model used to size batches).
    pole:
        Closed-loop pole of the power loop.
    batch_cap / batch_floor:
        Bounds on the commanded batch size.
    headroom:
        Back-off factor applied to SLOs before sizing (guards jitter).
    """

    name = "batch-dvfs"

    def __init__(
        self,
        gpu_group_gain_w_per_mhz: float,
        task_specs: dict[int, InferenceModelSpec],
        pole: float = 0.5,
        batch_cap: int = 64,
        batch_floor: int = 4,
        headroom: float = 0.9,
    ):
        super().__init__(
            actuated="gpu",
            group_gain_w_per_mhz=gpu_group_gain_w_per_mhz,
            pole=pole,
            pinned_fraction=1.0,
        )
        if batch_floor < 1 or batch_cap < batch_floor:
            raise ConfigurationError("need 1 <= batch_floor <= batch_cap")
        if not 0.0 < headroom <= 1.0:
            raise ConfigurationError("headroom must lie in (0, 1]")
        self.task_specs = dict(task_specs)
        self.batch_cap = int(batch_cap)
        self.batch_floor = int(batch_floor)
        self.headroom = float(headroom)
        self.last_batches: dict[int, int] = {}

    def batch_commands(self, obs: ControlObservation) -> dict[int, int]:
        """Per-GPU batch sizes for the next period.

        Uses the clock the power loop just commanded (``self._shared_f``,
        set during :meth:`step`) — batch sizing reacts to the same period's
        frequency decision, which is the coordination in "coordinated
        batching and DVFS".
        """
        clock = self._shared_f
        batches: dict[int, int] = {}
        for g, spec in self.task_specs.items():
            chan = obs.gpu_channels[g]
            slo = obs.slos_s.get(chan)
            if clock is None or slo is None:
                batches[g] = self.batch_cap
                continue
            best = spec.max_batch_for_slo(
                slo * self.headroom, clock, batch_cap=self.batch_cap
            )
            batches[g] = self.batch_floor if best is None else max(
                best, self.batch_floor
            )
        self.last_batches = batches
        return batches

    def reset(self) -> None:
        super().reset()
        self.last_batches = {}
