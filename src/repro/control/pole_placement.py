"""Pole-placement helpers for proportional power controllers.

The GPU-Only and CPU-Only baselines (Section 6.1) are proportional
controllers whose gain is "determined by pole placement and choosing the one
that minimizes oscillations". For the scalar loop

    p(k+1) = p(k) + G * delta_f(k),      delta_f(k) = Kp * (P_s - p(k))

the closed-loop error evolves as ``e(k+1) = (1 - G*Kp) e(k)``, so placing
the pole at ``z`` gives ``Kp = (1 - z) / G``. ``G`` is the aggregate plant
gain seen by the actuated knob: when one shared frequency adjustment is
applied to a set of channels, ``G`` is the *sum* of their identified gains.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["proportional_gain", "closed_loop_pole", "settling_periods"]


def proportional_gain(aggregate_gain_w_per_mhz: float, pole: float = 0.5) -> float:
    """Kp (MHz per W) placing the closed-loop pole at ``pole``.

    ``pole`` in [0, 1): 0 = deadbeat (one-period convergence under a perfect
    model, most aggressive), values near 1 = sluggish. The paper's baselines
    pick a pole that avoids oscillation; 0.5 is a standard compromise.
    """
    if not 0.0 <= pole < 1.0:
        raise ConfigurationError(f"pole must lie in [0, 1), got {pole}")
    if aggregate_gain_w_per_mhz <= 0:
        raise ConfigurationError("aggregate gain must be positive")
    return (1.0 - pole) / aggregate_gain_w_per_mhz


def closed_loop_pole(aggregate_gain_w_per_mhz: float, kp_mhz_per_w: float) -> float:
    """Pole of the scalar loop for a given gain pair (``1 - G*Kp``)."""
    return 1.0 - aggregate_gain_w_per_mhz * kp_mhz_per_w


def settling_periods(pole: float, tolerance: float = 0.02) -> float:
    """Periods for the error to decay to ``tolerance`` of its initial value.

    Infinite when ``|pole| >= 1`` (unstable or marginally stable loop).
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError("tolerance must lie in (0, 1)")
    a = abs(pole)
    if a >= 1.0:
        return float("inf")
    if a == 0.0:
        return 1.0
    return float(np.log(tolerance) / np.log(a))
