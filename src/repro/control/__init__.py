"""Power-capping controllers: the shared interface and the paper's baselines.

The CapGPU MIMO MPC lives in :mod:`repro.core`; this package holds the
controller contract (:class:`ControlObservation`,
:class:`PowerCappingController`) and the four baselines of Section 6.1.
"""

from .base import ControlObservation, PowerCappingController
from .batch_dvfs import BatchDvfsController
from .cpu_plus_gpu import CpuPlusGpuController
from .fixed_step import (
    FixedStepController,
    SafeFixedStepController,
    estimate_safety_margin,
)
from .pid import OracleController, PidController
from .pole_placement import closed_loop_pole, proportional_gain, settling_periods
from .proportional import (
    CpuOnlyController,
    GpuOnlyController,
    GroupProportionalController,
)
from .watchdog import SafeModeWatchdog, WatchdogConfig

__all__ = [
    "ControlObservation",
    "PowerCappingController",
    "BatchDvfsController",
    "FixedStepController",
    "SafeFixedStepController",
    "estimate_safety_margin",
    "GpuOnlyController",
    "CpuOnlyController",
    "GroupProportionalController",
    "CpuPlusGpuController",
    "PidController",
    "OracleController",
    "proportional_gain",
    "closed_loop_pole",
    "settling_periods",
    "SafeModeWatchdog",
    "WatchdogConfig",
]
