"""Shared proportional-controller machinery for the single-knob baselines.

Both GPU-Only ([4]-style) and CPU-Only (IBM [14]-style) are instances of one
scheme: measure total power, compute the error against the cap, and move a
*single shared frequency command* for the actuated channel group by
``Kp * error``; non-actuated channels are pinned (GPU-Only pins the CPU at
its maximum — Section 6.2 notes this eats power budget; CPU-Only pins the
GPUs at maximum, which is why its control range is hopeless on a GPU
server).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import ControlObservation, PowerCappingController
from .pole_placement import proportional_gain

__all__ = ["GroupProportionalController", "GpuOnlyController", "CpuOnlyController"]


class GroupProportionalController(PowerCappingController):
    """P-control of one channel group with a shared frequency command.

    Parameters
    ----------
    actuated:
        ``"gpu"`` or ``"cpu"`` — which group follows the shared command.
    group_gain_w_per_mhz:
        Aggregate identified plant gain of the group (sum of per-channel
        gains), used for pole placement.
    pole:
        Desired closed-loop pole.
    pinned_fraction:
        Where to pin the non-actuated group within its range (1.0 = max,
        the paper's choice for both baselines).
    """

    def __init__(
        self,
        actuated: str,
        group_gain_w_per_mhz: float,
        pole: float = 0.5,
        pinned_fraction: float = 1.0,
    ):
        if actuated not in ("cpu", "gpu"):
            raise ConfigurationError("actuated must be 'cpu' or 'gpu'")
        if not 0.0 <= pinned_fraction <= 1.0:
            raise ConfigurationError("pinned_fraction must lie in [0, 1]")
        self.actuated = actuated
        self.kp_mhz_per_w = proportional_gain(group_gain_w_per_mhz, pole)
        self.pole = float(pole)
        self.pinned_fraction = float(pinned_fraction)
        self._shared_f: float | None = None

    def _groups(self, obs: ControlObservation) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if self.actuated == "gpu":
            return obs.gpu_channels, obs.cpu_channels
        return obs.cpu_channels, obs.gpu_channels

    def reset(self) -> None:
        self._shared_f = None

    def initial_targets(self, f_min_mhz, f_max_mhz) -> np.ndarray:
        # Actuated group starts at minimum (safe cold start); the pinned
        # group starts where it will stay.
        targets = np.asarray(f_min_mhz, dtype=np.float64).copy()
        return targets

    def step(self, obs: ControlObservation) -> np.ndarray:
        actuated, pinned = self._groups(obs)
        if not actuated:
            raise ConfigurationError(f"no {self.actuated} channels to actuate")
        targets = obs.f_targets_mhz.copy()
        # Pin the non-actuated group.
        for c in pinned:
            targets[c] = (
                obs.f_min_mhz[c]
                + self.pinned_fraction * (obs.f_max_mhz[c] - obs.f_min_mhz[c])
            )
        if self._shared_f is None:
            self._shared_f = float(np.mean(targets[list(actuated)]))
        # One shared command moves by Kp * error, then clamps to the group's
        # common feasible band.
        self._shared_f += self.kp_mhz_per_w * obs.error_w
        lo = float(np.max(obs.f_min_mhz[list(actuated)]))
        hi = float(np.min(obs.f_max_mhz[list(actuated)]))
        self._shared_f = min(max(self._shared_f, lo), hi)
        for c in actuated:
            targets[c] = self._shared_f
        return targets


class GpuOnlyController(GroupProportionalController):
    """The paper's GPU-Only baseline: P-control of a single shared GPU clock.

    Adapted from OptimML [4]; the CPU is pinned at its maximum frequency
    for the whole run.
    """

    name = "gpu-only"

    def __init__(self, gpu_group_gain_w_per_mhz: float, pole: float = 0.5):
        super().__init__(
            actuated="gpu",
            group_gain_w_per_mhz=gpu_group_gain_w_per_mhz,
            pole=pole,
            pinned_fraction=1.0,
        )


class CpuOnlyController(GroupProportionalController):
    """The paper's CPU-Only baseline: traditional server DVFS capping [14].

    GPUs are pinned at maximum; only the host CPU's DVFS moves. On a GPU
    server the CPU's ~85 W span cannot bridge the gap to typical caps,
    which is exactly the failure Figure 3 shows.
    """

    name = "cpu-only"

    def __init__(self, cpu_group_gain_w_per_mhz: float, pole: float = 0.5):
        super().__init__(
            actuated="cpu",
            group_gain_w_per_mhz=cpu_group_gain_w_per_mhz,
            pole=pole,
            pinned_fraction=1.0,
        )
