"""Fixed-step and Safe Fixed-step heuristic baselines.

Section 6.1 describes Fixed-step as an industry-style, model-free controller
inspired by [20]:

* all components start at their lowest frequency level;
* if measured power is **below** the set point, raise the frequency of the
  component with the **highest** normalized utilization by one fixed step;
* if **above**, lower the component with the **lowest** utilization by one
  step;
* equal utilizations are broken round-robin "to ensure fairness";
* when a chosen component is already at its bound, adjustment alternates to
  the other side.

Step sizes differ per device class because available levels are
hardware-dependent: step size ``s`` means ``100*s`` MHz for CPUs and
``90*s`` MHz for GPUs (Section 6.2's step-size experiment uses s=1 and s=5).

Safe Fixed-step subtracts a *safety margin* from the set point so that the
oscillation stays below the cap. The paper notes the margin must be
estimated from steady-state errors of a prior run — see
:func:`estimate_safety_margin`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.trace import Trace
from ..units import require_positive
from .base import ControlObservation, PowerCappingController

__all__ = ["FixedStepController", "SafeFixedStepController", "estimate_safety_margin"]

#: Base per-step frequency increments (Section 6.2).
CPU_STEP_MHZ = 100.0
GPU_STEP_MHZ = 90.0

#: Utilizations within this of each other count as "identical" for the
#: round-robin tie-break.
_UTIL_TIE_TOL = 0.02


class FixedStepController(PowerCappingController):
    """The paper's Fixed-step heuristic.

    Parameters
    ----------
    step_size:
        Integer multiplier of the base steps (1 -> 100/90 MHz, 5 -> 500/450).
    deadband_w:
        Error magnitude below which no adjustment is made (0 = always move,
        which is what produces the steady oscillation seen in Fig. 4).
    """

    name = "fixed-step"

    def __init__(self, step_size: int = 1, deadband_w: float = 0.0):
        if step_size < 1:
            raise ConfigurationError("step_size must be >= 1")
        if deadband_w < 0:
            raise ConfigurationError("deadband_w must be >= 0")
        self.step_size = int(step_size)
        self.deadband_w = float(deadband_w)
        self._rr = 0  # round-robin cursor for tie-breaking

    def reset(self) -> None:
        self._rr = 0

    def _step_mhz(self, channel: int, obs: ControlObservation) -> float:
        base = CPU_STEP_MHZ if channel in obs.cpu_channels else GPU_STEP_MHZ
        return base * self.step_size

    def _select(
        self,
        obs: ControlObservation,
        direction: int,
        targets: np.ndarray,
    ) -> int | None:
        """Choose the channel to adjust, honoring bounds / ties / alternation.

        ``direction`` +1 raises the highest-utilization movable channel,
        -1 lowers the lowest-utilization movable channel.
        """
        n = obs.n_channels
        movable = []
        for c in range(n):
            if direction > 0 and targets[c] < obs.f_max_mhz[c] - 1e-9:
                movable.append(c)
            elif direction < 0 and targets[c] > obs.f_min_mhz[c] + 1e-9:
                movable.append(c)
        if not movable:
            return None
        utils = obs.utilization[movable]
        best = float(np.max(utils)) if direction > 0 else float(np.min(utils))
        tied = [c for c, u in zip(movable, utils) if abs(u - best) <= _UTIL_TIE_TOL]
        # Round-robin across tied candidates for fairness.
        choice = tied[self._rr % len(tied)]
        self._rr += 1
        return choice

    def step(self, obs: ControlObservation) -> np.ndarray:
        targets = obs.f_targets_mhz.copy()
        err = obs.error_w
        if abs(err) <= self.deadband_w:
            return targets
        direction = 1 if err > 0 else -1
        channel = self._select(obs, direction, targets)
        if channel is None:
            return targets
        delta = direction * self._step_mhz(channel, obs)
        targets[channel] = float(
            np.clip(targets[channel] + delta, obs.f_min_mhz[channel], obs.f_max_mhz[channel])
        )
        return targets


class SafeFixedStepController(FixedStepController):
    """Fixed-step against a margin-reduced set point (Section 6.2).

    Tracks ``P_s - margin`` so the oscillation peaks stay (mostly) under the
    true cap. As the paper notes, the margin must be known in advance —
    obtain it with :func:`estimate_safety_margin` on a calibration run.
    """

    name = "safe-fixed-step"

    def __init__(self, safety_margin_w: float, step_size: int = 1, deadband_w: float = 0.0):
        super().__init__(step_size=step_size, deadband_w=deadband_w)
        self.safety_margin_w = require_positive(safety_margin_w, "safety_margin_w")

    def step(self, obs: ControlObservation) -> np.ndarray:
        shifted = dataclasses.replace(
            obs, set_point_w=obs.set_point_w - self.safety_margin_w
        )
        return super().step(shifted)


def estimate_safety_margin(
    trace: Trace, set_point_w: float, steady_after: int = 20, quantile: float = 0.95
) -> float:
    """Safety margin from a Fixed-step calibration run's steady-state errors.

    Computes the ``quantile`` of the *positive* excursions of the per-period
    maximum power sample above the set point, after discarding the first
    ``steady_after`` periods of transient. The paper's Safe Fixed-step
    computes its margin from averaged steady-state errors, which is why it
    can still violate occasionally (Fig. 5) — mirroring that, the default
    uses the 95th percentile rather than the worst case.
    """
    if len(trace) <= steady_after:
        raise ConfigurationError("trace too short for the requested steady window")
    peaks = trace["power_max_w"][steady_after:]
    excess = peaks - set_point_w
    positive = excess[excess > 0]
    if positive.size == 0:
        # Oscillation never crossed the cap: half the peak-to-peak spread is
        # a conservative stand-in.
        spread = float(np.quantile(peaks, 0.95) - np.quantile(peaks, 0.05))
        return max(spread / 2.0, 1.0)
    return float(np.quantile(positive, quantile))
