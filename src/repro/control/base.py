"""Controller interface: observation/command types and the controller ABC.

All power-capping strategies (the CapGPU MPC and the four baselines) share
one closed-loop contract: at the end of each control period the simulator
hands the controller a :class:`ControlObservation` — only quantities that
would be measurable on the real testbed — and the controller returns a
vector of (possibly fractional) frequency targets, one per channel in the
server's CPUs-then-GPUs ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ControlObservation", "PowerCappingController"]


@dataclass
class ControlObservation:
    """Everything a controller may observe at the end of one control period.

    Frequencies are MHz vectors over the server's channels (CPUs first, then
    GPUs). ``f_applied_mhz`` is the tick-averaged frequency actually applied
    during the elapsed period (the plant's effective ``F(k-1)``), which can
    differ from ``f_targets_mhz`` because of delta-sigma dithering and
    clamping.

    ``slos_s`` maps GPU *channel index* to the task's current latency SLO in
    seconds (absent key = no SLO). ``cpu_power_w``/``gpu_power_w`` carry the
    per-subsystem measurements (RAPL / NVML) that the split-budget baseline
    needs; server-level controllers ignore them.

    Telemetry-health fields (the graceful-degradation ladder, see
    ``docs/robustness.md``): ``power_source`` says which rung produced
    ``power_w`` — ``"acpi"`` (fresh meter samples), ``"nvml+rapl"`` (the
    independent side-channel estimate while the meter is down or frozen),
    ``"holdover"`` (last good value; nothing measurable this period) or
    ``"none"`` (cold start with no telemetry at all, ``power_w`` is NaN).
    ``power_alt_w`` always carries the side-channel estimate so defensive
    layers (the safe-mode watchdog) can cross-check a lying meter.
    ``fresh_samples`` counts meter samples that arrived this period and
    survived plausibility filtering; ``stale_periods`` counts consecutive
    periods without a usable meter reading. ``actuation_error_mhz`` is the
    read-back residual ``f_applied - f_commanded`` of the *previous*
    command (NaN before any command): large entries reveal stuck or clamped
    actuators.
    """

    period_index: int
    time_s: float
    power_w: float
    power_samples_w: np.ndarray
    set_point_w: float
    f_targets_mhz: np.ndarray
    f_applied_mhz: np.ndarray
    f_min_mhz: np.ndarray
    f_max_mhz: np.ndarray
    utilization: np.ndarray
    throughput_norm: np.ndarray
    throughput_raw: np.ndarray
    cpu_channels: tuple[int, ...]
    gpu_channels: tuple[int, ...]
    slos_s: dict[int, float] = field(default_factory=dict)
    cpu_power_w: float = float("nan")
    gpu_power_w: np.ndarray | None = None
    power_source: str = "acpi"
    power_alt_w: float = float("nan")
    fresh_samples: int = 0
    stale_periods: int = 0
    actuation_error_mhz: np.ndarray | None = None

    @property
    def n_channels(self) -> int:
        return int(self.f_targets_mhz.shape[0])

    @property
    def meter_ok(self) -> bool:
        """True when ``power_w`` came from fresh, plausible meter samples."""
        return self.power_source == "acpi"

    @property
    def error_w(self) -> float:
        """Tracking error ``P_s - p(k)`` (positive = headroom available)."""
        return self.set_point_w - self.power_w

    def validate(self) -> None:
        """Consistency checks (used by tests and defensive controllers)."""
        n = self.n_channels
        for name in ("f_applied_mhz", "f_min_mhz", "f_max_mhz", "utilization",
                     "throughput_norm", "throughput_raw"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ConfigurationError(f"{name} must have shape ({n},), got {arr.shape}")
        if set(self.cpu_channels) & set(self.gpu_channels):
            raise ConfigurationError("cpu_channels and gpu_channels overlap")
        if len(self.cpu_channels) + len(self.gpu_channels) != n:
            raise ConfigurationError("channel partition does not cover all channels")


class PowerCappingController(ABC):
    """Abstract base of every power-capping strategy.

    Subclasses implement :meth:`step`; the returned array is the vector of
    frequency *targets* in MHz for the next control period, with the same
    channel ordering as the observation. Targets may be fractional — the
    actuation layer resolves them to discrete levels.
    """

    #: Human-readable strategy name (used by experiment tables).
    name: str = "controller"

    @abstractmethod
    def step(self, obs: ControlObservation) -> np.ndarray:
        """Compute next-period frequency targets from the observation."""

    def reset(self) -> None:
        """Clear internal state before a fresh run (default: stateless)."""

    def batch_commands(self, obs: ControlObservation) -> dict[int, int] | None:
        """Optional second knob: per-GPU batch sizes for the next period.

        Called by the engine *after* :meth:`step`. The default (``None``)
        leaves every pipeline's batch size unchanged; the coordinated
        batching + DVFS extension overrides this. Keys are GPU *indices*
        (not channels).
        """
        return None

    def initial_targets(
        self, f_min_mhz: np.ndarray, f_max_mhz: np.ndarray
    ) -> np.ndarray:
        """Targets to apply before the first observation.

        Default: all channels at their minimum frequency — the safe start the
        paper's fixed-step baseline mandates and a reasonable cold start for
        every strategy (power can only need to *rise* toward the set point).
        """
        return np.asarray(f_min_mhz, dtype=np.float64).copy()
