"""Parallel experiment sweep executor.

The paper's evaluation is a large sweep — five controllers x many caps x
multiple workloads — and every job in it is embarrassingly parallel: one
``(experiment, seed, params)`` tuple fully determines one
:class:`~repro.experiments.common.ExperimentResult`. This module fans those
jobs out over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping
the three properties the rest of the repo is built on:

Determinism
    Every job's seed is fixed in the *parent* before anything is submitted
    (replicate seeds derive from the root seed via :func:`repro.rng.spawn`),
    and records are reported in job order, never completion order — so a
    sweep with ``n_jobs=N`` is bit-for-bit identical to ``n_jobs=1``.
    :meth:`SweepReport.checksum` digests exactly the reproducible part of the
    output (renders + canonical data, no timings) to make that checkable.

Graceful degradation
    A job that raises, or whose worker process dies outright, is retried once
    and then *recorded* as ``failed`` — the sweep always completes. The retry
    ladder reuses the :mod:`repro.faults` vocabulary: ``ok`` (fresh result) ->
    ``degraded`` (result recovered on retry, the holdover rung) -> ``failed``
    (recorded blindness, the ``none`` rung). Crash injection for tests uses
    :class:`repro.faults.FaultWindow` over *attempt* indices.

Observability
    Structured per-job events (``job-start`` / ``job-done`` / ``job-retry`` /
    ``job-failed``) with wall times flow through an ``on_event`` callback, and
    in-process experiment loops can use :func:`map_cases` to get the same
    per-case timing without ad-hoc ``for`` loops.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .atomicio import atomic_write_text
from .errors import ExperimentError
from .faults import FaultWindow
from .rng import spawn

__all__ = [
    "SweepJob",
    "JobEvent",
    "JobRecord",
    "SweepReport",
    "build_jobs",
    "derive_replicate_seed",
    "run_sweep",
    "map_cases",
    "canonical_json",
    "JOB_OK",
    "JOB_DEGRADED",
    "JOB_FAILED",
    "JOB_STATUSES",
]

#: Per-job outcome ladder, mirroring the engine's graceful-degradation rungs
#: (fresh observation -> holdover -> none): a clean first-attempt result, a
#: result recovered on retry, and a recorded failure.
JOB_OK = "ok"
JOB_DEGRADED = "degraded"
JOB_FAILED = "failed"
JOB_STATUSES = (JOB_OK, JOB_DEGRADED, JOB_FAILED)

#: Attempts per job: the first run plus retry-once-on-crash.
MAX_ATTEMPTS = 2


# -- jobs ------------------------------------------------------------------


@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work: an experiment id, a seed, and extra kwargs.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the job is
    hashable and its :attr:`key` is stable.
    """

    experiment_id: str
    seed: int = 0
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, experiment_id: str, seed: int = 0, **params) -> "SweepJob":
        return cls(experiment_id, int(seed), tuple(sorted(params.items())))

    def kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.experiments.run_experiment`."""
        return {"seed": self.seed, **dict(self.params)}

    @property
    def key(self) -> str:
        """Stable human-readable identity, e.g. ``fig3[seed=0,set_point_w=850.0]``."""
        parts = [f"seed={self.seed}", *(f"{k}={v}" for k, v in self.params)]
        return f"{self.experiment_id}[{','.join(parts)}]"


def derive_replicate_seed(root_seed: int, experiment_id: str, replicate: int) -> int:
    """Deterministic per-replicate seed, derived in the parent process.

    Keyed on ``(root_seed, experiment_id, replicate)`` through
    :func:`repro.rng.spawn`, so the mapping is independent of worker count,
    submission order, and completion order — the anchor of the
    ``--jobs N == --jobs 1`` guarantee.
    """
    stream = spawn(root_seed, f"sweep/{experiment_id}/rep{replicate}")
    return int(stream.integers(0, 2**31 - 1))


def build_jobs(
    experiment_ids: Sequence[str],
    seed: int = 0,
    replicates: int = 1,
    set_points_w: Sequence[float] | None = None,
    extra_params: Mapping[str, object] | None = None,
) -> list[SweepJob]:
    """Expand an ``experiments x replicates x caps`` grid into jobs.

    Replicate 0 uses the root ``seed`` unchanged (so ``repro sweep fig3``
    matches ``capgpu run fig3 --seed S`` exactly); further replicates derive
    their seeds via :func:`derive_replicate_seed`. ``set_points_w`` and
    ``extra_params`` are filtered per experiment against the runner's
    signature — ``table1`` takes no ``set_point_w``, so a cap sweep simply
    runs it once per replicate.
    """
    from .experiments import EXPERIMENTS

    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment ids {unknown!r}; available: {sorted(EXPERIMENTS)}"
        )
    jobs: list[SweepJob] = []
    for eid in experiment_ids:
        accepted = _accepted_kwargs(EXPERIMENTS[eid])
        params = {
            k: v for k, v in (extra_params or {}).items() if k in accepted
        }
        caps: list[float | None]
        if set_points_w and "set_point_w" in accepted:
            caps = list(set_points_w)
        else:
            caps = [None]
        for rep in range(replicates):
            rep_seed = seed if rep == 0 else derive_replicate_seed(seed, eid, rep)
            for cap in caps:
                job_params = dict(params)
                if cap is not None:
                    job_params["set_point_w"] = float(cap)
                jobs.append(SweepJob.make(eid, seed=rep_seed, **job_params))
    seen: set[SweepJob] = set()
    deduped = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            deduped.append(job)
    return deduped


def _accepted_kwargs(fn: Callable) -> frozenset[str]:
    return frozenset(inspect.signature(fn).parameters)


# -- canonical serialization -----------------------------------------------


#: Data keys / trace channels that record *measured wall-clock time* (the
#: engine times each controller invocation into ``ctl_ms``; the fleet engine
#: times each allocation round into ``alloc_ms``). They are real results but
#: inherently non-reproducible, so the canonical projection — and therefore
#: the ``--jobs N == --jobs 1`` digest and the fleet-vs-scalar differential
#: equality — excludes them.
TIMING_KEYS = frozenset({"ctl_ms", "alloc_ms"})


def _canonicalize(obj):
    """Recursively convert experiment data into JSON-stable primitives.

    numpy scalars/arrays become Python numbers/lists, Traces become channel
    dicts, dataclasses (model fits etc.) become tagged dicts; anything else
    falls back to ``repr``. Measured-time quantities (:data:`TIMING_KEYS`)
    are dropped. The mapping is deterministic for a given code version,
    which is all the bit-for-bit sweep guarantee needs.
    """
    from .telemetry.trace import Trace

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Trace):
        return {
            "__trace__": {
                name: obj[name].tolist()
                for name in obj.channels
                if name not in TIMING_KEYS
            }
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f"__{type(obj).__name__}__": _canonicalize(dataclasses.asdict(obj))
        }
    if isinstance(obj, Mapping):
        return {
            str(k): _canonicalize(v)
            for k, v in obj.items()
            if k not in TIMING_KEYS
        }
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    return repr(obj)


def canonical_json(data) -> str:
    """Canonical JSON text for arbitrary experiment data (sorted keys)."""
    return json.dumps(_canonicalize(data), sort_keys=True, separators=(",", ":"))


# -- worker ----------------------------------------------------------------


def _execute_job(
    job: SweepJob, attempt: int, crash_windows: Mapping[str, FaultWindow] | None
) -> dict:
    """Top-level worker body (must stay module-level for pickling).

    ``crash_windows`` is the fault-injection hook for the worker-crash path:
    if the job's key maps to a :class:`~repro.faults.FaultWindow` containing
    the zero-based attempt index, the worker dies hard (``os._exit``), which
    is indistinguishable from a real crash to the parent.
    """
    if crash_windows:
        window = crash_windows.get(job.key)
        if window is not None and window.contains(attempt - 1):
            os._exit(77)
    from .experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment(job.experiment_id, **job.kwargs())
    wall_s = time.perf_counter() - t0
    canonical = canonical_json(result.data)
    return {
        "render": result.render(),
        "canonical": canonical,
        # Digest covers the canonical data only: renders may format measured
        # solve times (e.g. the solver ablation's "Solve ms" column).
        "digest": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "wall_s": wall_s,
        "timings": dict(getattr(result, "timings", {})),
    }


# -- records / report ------------------------------------------------------


@dataclass(frozen=True)
class JobEvent:
    """Structured progress event emitted by :func:`run_sweep`."""

    kind: str  # job-start | job-done | job-retry | job-failed
    job_key: str
    attempt: int
    wall_s: float | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class JobRecord:
    """Recorded outcome of one sweep job (always present, even on failure)."""

    job: SweepJob
    status: str
    attempts: int
    wall_s: float | None = None
    render: str | None = None
    canonical: str | None = None
    digest: str | None = None
    error: str | None = None
    timings: dict = field(default_factory=dict)

    def to_dict(self, include_timing: bool = True) -> dict:
        """Serializable view.

        ``include_timing=False`` is the *reproducible projection*: it drops
        wall times, per-case timings, and the rendered report (whose tables
        may format measured solve times), leaving exactly the fields that
        are bit-for-bit identical across worker counts.
        """
        out = {
            "key": self.job.key,
            "experiment_id": self.job.experiment_id,
            "seed": self.job.seed,
            "params": dict(self.job.params),
            "status": self.status,
            "attempts": self.attempts,
            "canonical": self.canonical,
            "digest": self.digest,
            "error": self.error,
        }
        if include_timing:
            out["render"] = self.render
            out["wall_s"] = self.wall_s
            out["timings"] = self.timings
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobRecord":
        """Rebuild a record from its :meth:`to_dict` form (journal replay)."""
        job = SweepJob.make(
            data["experiment_id"], seed=data["seed"], **dict(data.get("params", {}))
        )
        return cls(
            job=job,
            status=data["status"],
            attempts=int(data.get("attempts", 1)),
            wall_s=data.get("wall_s"),
            render=data.get("render"),
            canonical=data.get("canonical"),
            digest=data.get("digest"),
            error=data.get("error"),
            timings=dict(data.get("timings", {})),
        )


@dataclass
class SweepReport:
    """All job records of one sweep, in job (not completion) order."""

    records: list[JobRecord]
    n_jobs: int
    wall_s: float
    #: True when a shutdown signal stopped the sweep before every job had a
    #: terminal record; the report then covers only the jobs that finished
    #: (resume the journal directory to run the remainder).
    interrupted: bool = False

    @property
    def failed(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == JOB_FAILED]

    @property
    def ok(self) -> bool:
        return not self.failed and not self.interrupted

    def checksum(self) -> str:
        """Digest of the reproducible output (renders + data, no timings)."""
        h = hashlib.sha256()
        for rec in self.records:
            h.update(rec.job.key.encode("utf-8"))
            h.update(b"\x00")
            h.update((rec.digest or f"<{rec.status}>").encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def to_json(self, include_timing: bool = True) -> str:
        payload = {
            "schema": 1,
            "checksum": self.checksum(),
            "interrupted": self.interrupted,
            "records": [r.to_dict(include_timing=include_timing) for r in self.records],
        }
        if include_timing:
            payload["n_jobs"] = self.n_jobs
            payload["wall_s"] = self.wall_s
        return json.dumps(payload, sort_keys=True, indent=2)

    def write_json(self, path, include_timing: bool = True) -> Path:
        return atomic_write_text(path, self.to_json(include_timing=include_timing))

    def render_summary(self) -> str:
        from .analysis import format_table

        rows = []
        for rec in self.records:
            rows.append([
                rec.job.key,
                rec.status,
                rec.attempts,
                f"{rec.wall_s:.2f}" if rec.wall_s is not None else "-",
                (rec.error or "")[:60],
            ])
        return format_table(
            ["Job", "Status", "Attempts", "Wall s", "Error"],
            rows,
            title=f"Sweep: {len(self.records)} jobs, n_jobs={self.n_jobs}, "
                  f"{self.wall_s:.1f} s total, checksum {self.checksum()[:12]}",
        )


# -- execution -------------------------------------------------------------


def _emit(on_event, event: JobEvent) -> None:
    if on_event is not None:
        on_event(event)


def _start(job: SweepJob, attempt: int, on_event, journal) -> None:
    """Announce one attempt — journalled *before* dispatch, so a resume can
    tell a crashed-in-flight job from one that never started."""
    if journal is not None:
        journal.job_started(job.key, attempt)
    _emit(on_event, JobEvent("job-start", job.key, attempt))


def _finish(
    records: dict[SweepJob, JobRecord],
    job: SweepJob,
    attempt: int,
    payload: dict,
    on_event,
    journal,
) -> None:
    status = JOB_OK if attempt == 1 else JOB_DEGRADED
    record = JobRecord(
        job=job,
        status=status,
        attempts=attempt,
        wall_s=payload["wall_s"],
        render=payload["render"],
        canonical=payload["canonical"],
        digest=payload["digest"],
        timings=payload.get("timings", {}),
    )
    records[job] = record
    if journal is not None:
        journal.job_done(record.to_dict(include_timing=True))
    _emit(on_event, JobEvent("job-done", job.key, attempt, wall_s=payload["wall_s"]))


def _fail(
    records: dict[SweepJob, JobRecord],
    job: SweepJob,
    attempt: int,
    error: str,
    on_event,
    journal,
) -> None:
    record = JobRecord(job=job, status=JOB_FAILED, attempts=attempt, error=error)
    records[job] = record
    if journal is not None:
        journal.job_failed(record.to_dict(include_timing=True))
    _emit(on_event, JobEvent("job-failed", job.key, attempt, error=error))


def _retry(job: SweepJob, attempt: int, error: str, on_event) -> None:
    _emit(on_event, JobEvent("job-retry", job.key, attempt, error=error))


def run_sweep(
    jobs: Iterable[SweepJob],
    n_jobs: int = 1,
    on_event: Callable[[JobEvent], None] | None = None,
    crash_windows: Mapping[str, FaultWindow] | None = None,
    journal=None,
    completed: Mapping[str, JobRecord] | None = None,
    stop_flag=None,
) -> SweepReport:
    """Execute ``jobs``, fanning out over ``n_jobs`` worker processes.

    ``n_jobs=1`` runs inline in this process (the sequential reference path);
    ``n_jobs>1`` uses a :class:`ProcessPoolExecutor`. Either way the report's
    records are in job order and its :meth:`~SweepReport.checksum` is
    identical — parallelism never changes results, only wall time.

    Failure handling: a job that raises is retried once; a job whose worker
    process dies (``BrokenProcessPool``) poisons the shared pool, so every
    unfinished job is re-run, each retry in its *own* single-worker pool so a
    persistently crashing job cannot take healthy ones down with it. After
    :data:`MAX_ATTEMPTS` the job is recorded as ``failed`` and the sweep
    carries on — it never aborts.

    Crash safety: ``journal`` (a :class:`repro.checkpoint.SweepJournal`)
    receives a durable ``job_started`` entry before every dispatch and the
    full record on every terminal outcome; ``completed`` (job key ->
    :class:`JobRecord`, from a journal replay) pre-fills records so those
    jobs are skipped; ``stop_flag`` (a truthy-when-set object, e.g.
    :class:`repro.checkpoint.ShutdownFlag`) winds the sweep down at the next
    job boundary — in-flight jobs finish and are recorded, queued ones are
    not started, and the report comes back ``interrupted``.

    ``crash_windows`` (test/fault-injection hook) maps job keys to
    :class:`~repro.faults.FaultWindow` objects over zero-based attempt
    indices; a matching attempt kills the worker process hard.
    """
    job_list = list(jobs)
    if len(set(job_list)) != len(job_list):
        raise ExperimentError("duplicate jobs in sweep")
    if n_jobs < 1:
        raise ExperimentError(f"n_jobs must be >= 1, got {n_jobs}")
    t0 = time.perf_counter()
    records: dict[SweepJob, JobRecord] = {}
    if completed:
        for job in job_list:
            prior = completed.get(job.key)
            if prior is not None:
                records[job] = prior
    todo = [job for job in job_list if job not in records]

    if n_jobs == 1:
        for job in todo:
            if stop_flag:
                break
            _run_inline(records, job, crash_windows, on_event, journal)
    else:
        _run_pooled(records, todo, n_jobs, crash_windows, on_event, journal, stop_flag)

    ordered = [records[job] for job in job_list if job in records]
    return SweepReport(
        records=ordered,
        n_jobs=n_jobs,
        wall_s=time.perf_counter() - t0,
        interrupted=len(ordered) < len(job_list),
    )


def _run_inline(records, job, crash_windows, on_event, journal) -> None:
    """Sequential path: same attempt ladder, no subprocess.

    Hard-crash injection still runs in a throwaway single-worker pool so the
    parent survives it; genuine in-process exceptions are caught directly.
    """
    for attempt in range(1, MAX_ATTEMPTS + 1):
        _start(job, attempt, on_event, journal)
        injected = crash_windows and job.key in crash_windows
        try:
            if injected:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    payload = pool.submit(
                        _execute_job, job, attempt, crash_windows
                    ).result()
            else:
                payload = _execute_job(job, attempt, None)
        except Exception as exc:  # noqa: BLE001 - degrade, never abort
            error = f"{type(exc).__name__}: {exc}"
            if attempt < MAX_ATTEMPTS:
                _retry(job, attempt, error, on_event)
                continue
            _fail(records, job, attempt, error, on_event, journal)
            return
        _finish(records, job, attempt, payload, on_event, journal)
        return


def _run_pooled(records, job_list, n_jobs, crash_windows, on_event, journal, stop_flag) -> None:
    """First attempts share one pool; retries run isolated, one pool each."""
    retry_queue: list[tuple[SweepJob, int, str]] = []
    pending = {job: 1 for job in job_list}
    while pending:
        broken = False
        stopped = False
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = {}
            for job, attempt in pending.items():
                _start(job, attempt, on_event, journal)
                futures[pool.submit(_execute_job, job, attempt, crash_windows)] = (
                    job, attempt,
                )
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    if fut.cancelled():
                        continue
                    job, attempt = futures[fut]
                    try:
                        payload = fut.result()
                    except BrokenProcessPool:
                        broken = True
                    except Exception as exc:  # noqa: BLE001
                        error = f"{type(exc).__name__}: {exc}"
                        if attempt < MAX_ATTEMPTS:
                            retry_queue.append((job, attempt + 1, error))
                            _retry(job, attempt, error, on_event)
                        else:
                            _fail(records, job, attempt, error, on_event, journal)
                    else:
                        _finish(records, job, attempt, payload, on_event, journal)
                if broken:
                    break
                if stop_flag and not stopped:
                    # Shutdown signal: queued work is cancelled, in-flight
                    # jobs run to completion and get recorded — the journal
                    # then resumes the remainder.
                    stopped = True
                    for fut in not_done:  # repro-lint: disable=REP105 -- cancellation is order-independent; nothing here reaches a digest
                        fut.cancel()
        if stopped:
            return
        if broken:
            # The pool is poisoned: every unfinished job is collateral. Send
            # them all to isolated retries without charging an extra attempt
            # to jobs that never got to run.
            queued = {j for j, _, _ in retry_queue}
            for job, attempt in pending.items():
                if job in records or job in queued:
                    continue
                error = "worker process crashed (BrokenProcessPool)"
                if attempt < MAX_ATTEMPTS:
                    retry_queue.append((job, attempt + 1, error))
                    _retry(job, attempt, error, on_event)
                else:
                    _fail(records, job, attempt, error, on_event, journal)
        pending = {}
        # Drain retries one at a time, each in a fresh single-worker pool, so
        # a deterministic crasher cannot poison anyone else's attempt.
        for job, attempt, prior_error in retry_queue:
            if stop_flag:
                return
            _start(job, attempt, on_event, journal)
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    payload = solo.submit(
                        _execute_job, job, attempt, crash_windows
                    ).result()
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc} (after {prior_error})"
                _fail(records, job, attempt, error, on_event, journal)
            else:
                _finish(records, job, attempt, payload, on_event, journal)
        retry_queue = []


# -- in-process case mapping ----------------------------------------------


def map_cases(
    cases: Iterable[tuple[str, object]],
    fn: Callable[[str, object], object],
    on_event: Callable[[JobEvent], None] | None = None,
) -> tuple[dict[str, object], dict[str, float]]:
    """Run labelled in-process cases with structured per-case timing.

    The sequential counterpart of :func:`run_sweep` for loops *inside* an
    experiment (per-strategy, per-set-point runs that close over local
    state and therefore cannot cross a process boundary). Returns
    ``(results, timings)`` keyed by label, preserving case order, and emits
    the same ``job-start`` / ``job-done`` events as the sweep executor.
    """
    results: dict[str, object] = {}
    timings: dict[str, float] = {}
    for label, case in cases:
        if label in results:
            raise ExperimentError(f"duplicate case label {label!r}")
        _emit(on_event, JobEvent("job-start", label, 1))
        t0 = time.perf_counter()
        results[label] = fn(label, case)
        timings[label] = time.perf_counter() - t0
        _emit(on_event, JobEvent("job-done", label, 1, wall_s=timings[label]))
    return results, timings
