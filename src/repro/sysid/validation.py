"""Model-validation utilities for system identification.

Fig. 2 of the paper reports the training-fit R²; a deployment should also
check how the model *generalizes* (fresh operating points) and whether the
residual structure betrays unmodelled dynamics. These helpers provide
held-out evaluation, k-fold cross-validation of the power model, and a
residual summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IdentificationError
from .least_squares import PowerModelFit, fit_power_model, r_squared

__all__ = [
    "holdout_validation",
    "cross_validate_power_model",
    "ResidualSummary",
    "residual_summary",
]


def holdout_validation(
    f_mhz: np.ndarray,
    power_w: np.ndarray,
    train_fraction: float = 0.7,
    rng: np.random.Generator | None = None,
) -> tuple[PowerModelFit, float]:
    """Fit on a random subset, score R² on the held-out remainder.

    Returns ``(fit-on-train, held-out R²)``. Without ``rng`` the split is
    deterministic (every third point held out), keeping results stable.
    """
    F = np.asarray(f_mhz, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    n = F.shape[0]
    if not 0.0 < train_fraction < 1.0:
        raise IdentificationError("train_fraction must lie in (0, 1)")
    if rng is None:
        test_mask = np.zeros(n, dtype=bool)
        test_mask[::3] = True
        if test_mask.all() or not test_mask.any():
            raise IdentificationError("dataset too small for a holdout split")
    else:
        test_mask = rng.random(n) > train_fraction
        if test_mask.all() or not test_mask.any():
            raise IdentificationError("degenerate holdout split; adjust fraction")
    fit = fit_power_model(F[~test_mask], p[~test_mask])
    r2 = r_squared(p[test_mask], fit.predict(F[test_mask]))
    return fit, float(r2)


def cross_validate_power_model(
    f_mhz: np.ndarray, power_w: np.ndarray, k_folds: int = 5
) -> list[float]:
    """k-fold cross-validated R² scores of the linear power model.

    Folds are interleaved (every k-th point) so each fold spans the whole
    excitation range — contiguous folds would hold out entire sweeps and
    guarantee extrapolation failure.
    """
    F = np.asarray(f_mhz, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    n = F.shape[0]
    if not 2 <= k_folds <= n // 2:
        raise IdentificationError(f"k_folds must lie in [2, {n // 2}]")
    scores = []
    for k in range(k_folds):
        test_mask = np.zeros(n, dtype=bool)
        test_mask[k::k_folds] = True
        fit = fit_power_model(F[~test_mask], p[~test_mask])
        scores.append(float(r_squared(p[test_mask], fit.predict(F[test_mask]))))
    return scores


@dataclass(frozen=True)
class ResidualSummary:
    """Structure of the fit residuals."""

    mean_w: float
    std_w: float
    max_abs_w: float
    lag1_autocorr: float
    frequency_correlation: float

    @property
    def looks_white(self) -> bool:
        """Heuristic: residuals centered, weakly autocorrelated, and not
        trending with frequency (no gross unmodelled dynamics)."""
        return (
            abs(self.mean_w) < 2.0 * self.std_w / 3.0
            and abs(self.lag1_autocorr) < 0.6
            and abs(self.frequency_correlation) < 0.5
        )


def residual_summary(fit: PowerModelFit, f_mhz: np.ndarray, power_w: np.ndarray) -> ResidualSummary:
    """Summarize residual structure of ``fit`` on a dataset."""
    F = np.asarray(f_mhz, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    resid = p - fit.predict(F)
    if resid.size < 3:
        raise IdentificationError("need at least 3 samples")
    std = float(np.std(resid))
    if std > 0 and resid.size > 1:
        lag1 = float(np.corrcoef(resid[:-1], resid[1:])[0, 1])
    else:
        lag1 = 0.0
    # Correlate against the strongest single regressor: total gain-weighted
    # frequency (a trend here means curvature the linear model missed).
    drive = F @ fit.a_w_per_mhz
    if std > 0 and float(np.std(drive)) > 0:
        f_corr = float(np.corrcoef(drive, resid)[0, 1])
    else:
        f_corr = 0.0
    return ResidualSummary(
        mean_w=float(np.mean(resid)),
        std_w=std,
        max_abs_w=float(np.max(np.abs(resid))),
        lag1_autocorr=lag1,
        frequency_correlation=f_corr,
    )
