"""Recursive least squares with forgetting — online model re-identification.

Extension beyond the paper (its Section 4.4 future work mentions adapting to
model drift): the controller can refresh its ``A`` estimate from closed-loop
data instead of re-running the offline staircase. Standard exponentially
weighted RLS on the regressor ``[F, 1]`` with target ``p``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, IdentificationError
from .least_squares import PowerModelFit

__all__ = ["RecursiveLeastSquares"]


class RecursiveLeastSquares:
    """Exponentially weighted RLS estimator of ``p = A.F + C``.

    Parameters
    ----------
    n_channels:
        Number of frequency channels.
    forgetting:
        Forgetting factor in (0, 1]; 1.0 = ordinary growing-window RLS.
    p0:
        Initial covariance scale (large = weak prior).
    theta0:
        Optional initial parameter vector ``[A..., C]`` (e.g. an offline fit
        to warm-start from).
    """

    def __init__(
        self,
        n_channels: int,
        forgetting: float = 0.98,
        p0: float = 1e6,
        theta0: np.ndarray | None = None,
    ):
        if n_channels < 1:
            raise ConfigurationError("n_channels must be >= 1")
        if not 0.0 < forgetting <= 1.0:
            raise ConfigurationError("forgetting must lie in (0, 1]")
        if p0 <= 0:
            raise ConfigurationError("p0 must be positive")
        self.n_channels = int(n_channels)
        self.forgetting = float(forgetting)
        d = n_channels + 1
        self._P = np.eye(d) * float(p0)
        if theta0 is None:
            self._theta = np.zeros(d)
        else:
            theta0 = np.asarray(theta0, dtype=np.float64)
            if theta0.shape != (d,):
                raise ConfigurationError(f"theta0 must have shape ({d},)")
            self._theta = theta0.copy()
        self._n_updates = 0

    @property
    def n_updates(self) -> int:
        return self._n_updates

    def update(self, f_mhz: np.ndarray, power_w: float) -> None:
        """Incorporate one (frequency vector, measured power) pair."""
        f = np.asarray(f_mhz, dtype=np.float64)
        if f.shape != (self.n_channels,):
            raise IdentificationError(f"expected shape ({self.n_channels},)")
        phi = np.append(f, 1.0)
        lam = self.forgetting
        Pphi = self._P @ phi
        denom = lam + phi @ Pphi
        gain = Pphi / denom
        err = float(power_w) - float(phi @ self._theta)
        self._theta = self._theta + gain * err
        self._P = (self._P - np.outer(gain, Pphi)) / lam
        # Keep the covariance symmetric against numerical drift.
        self._P = 0.5 * (self._P + self._P.T)
        self._n_updates += 1

    def estimate(self) -> PowerModelFit:
        """Current parameter estimate as a :class:`PowerModelFit`.

        R^2/RMSE are not tracked online and are reported as NaN.
        """
        if self._n_updates == 0:
            raise IdentificationError("no updates incorporated yet")
        return PowerModelFit(
            a_w_per_mhz=self._theta[:-1].copy(),
            c_w=float(self._theta[-1]),
            r2=float("nan"),
            rmse_w=float("nan"),
            n_samples=self._n_updates,
        )
