"""Fitting the frequency-latency model (Eq. 8) from measured batches.

Eq. 8 is log-linear: ``log e = log e_min + gamma * (log f_max - log f)``,
so (e_min, gamma) come from ordinary least squares in log space. The paper
reports gamma = 0.91 with R^2 ~= 0.91 (Fig. 2(b)); the residual scatter in
our pipeline comes from the log-normal per-batch jitter, which is exactly
the deviation Fig. 2(b) visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IdentificationError
from .least_squares import r_squared

__all__ = ["LatencyModelFit", "fit_latency_model"]


@dataclass(frozen=True)
class LatencyModelFit:
    """Identified Eq. 8 parameters for one task."""

    e_min_s: float
    gamma: float
    f_max_mhz: float
    r2: float
    n_samples: int

    def predict(self, f_mhz) -> np.ndarray:
        """Predicted latency at core clock(s) ``f_mhz``."""
        f = np.asarray(f_mhz, dtype=np.float64)
        return self.e_min_s * (self.f_max_mhz / f) ** self.gamma

    def min_frequency_mhz(self, slo_s: float) -> float:
        """Smallest clock meeting ``slo_s`` under the fitted model."""
        if slo_s <= 0:
            raise IdentificationError("slo_s must be positive")
        return float(self.f_max_mhz * (self.e_min_s / slo_s) ** (1.0 / self.gamma))


def fit_latency_model(
    f_mhz: np.ndarray, latency_s: np.ndarray, f_max_mhz: float
) -> LatencyModelFit:
    """Fit ``e = e_min (f_max/f)^gamma`` to measured (frequency, latency) pairs.

    Parameters
    ----------
    f_mhz:
        Core clock per measured batch.
    latency_s:
        Measured batch latency.
    f_max_mhz:
        The reference maximum clock (defines where ``e_min`` is anchored).
    """
    f = np.asarray(f_mhz, dtype=np.float64)
    e = np.asarray(latency_s, dtype=np.float64)
    if f.ndim != 1 or f.shape != e.shape:
        raise IdentificationError("f_mhz and latency_s must be 1-D and aligned")
    if f.shape[0] < 3:
        raise IdentificationError("need at least 3 samples to fit (e_min, gamma)")
    if np.any(f <= 0) or np.any(e <= 0):
        raise IdentificationError("frequencies and latencies must be positive")
    if float(np.ptp(f)) == 0.0:
        raise IdentificationError("latency fit needs at least two distinct clocks")
    x = np.log(f_max_mhz / f)
    y = np.log(e)
    design = np.column_stack([x, np.ones_like(x)])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    gamma, log_emin = float(coef[0]), float(coef[1])
    pred = design @ coef
    # R^2 is reported in latency space (as the paper plots it), not log space.
    r2 = r_squared(e, np.exp(pred))
    return LatencyModelFit(
        e_min_s=float(np.exp(log_emin)),
        gamma=gamma,
        f_max_mhz=float(f_max_mhz),
        r2=r2,
        n_samples=int(f.shape[0]),
    )
