"""Excitation plans for system identification.

The paper's protocol (Section 4.2): "systematically vary one frequency input
(e.g., GPU frequency) while holding the other fixed ... and record the
resulting power consumption; then we reverse the process."
:func:`one_knob_at_a_time` generates exactly that staircase; a richer
random-levels plan is provided for the online re-identification extension.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hardware.server import GpuServer

__all__ = ["one_knob_at_a_time", "random_levels_plan"]


def one_knob_at_a_time(
    server: GpuServer,
    points_per_channel: int = 8,
    base_fraction: float = 0.4,
) -> np.ndarray:
    """Build the paper's staircase excitation plan.

    For each channel in turn, sweep ``points_per_channel`` evenly spaced
    levels from its minimum to its maximum while every other channel holds a
    fixed base level (``base_fraction`` of its range, snapped to the grid —
    the paper holds the CPU at 1.4 GHz while sweeping the GPU).

    Returns an array of frequency vectors, shape
    ``(n_channels * points_per_channel, n_channels)``.
    """
    if points_per_channel < 2:
        raise ConfigurationError("points_per_channel must be >= 2")
    if not 0.0 <= base_fraction <= 1.0:
        raise ConfigurationError("base_fraction must lie in [0, 1]")
    devices = server.devices
    base = np.array(
        [
            d.domain.nearest(d.domain.f_min + base_fraction * d.domain.span)
            for d in devices
        ],
        dtype=np.float64,
    )
    plan: list[np.ndarray] = []
    for i, dev in enumerate(devices):
        sweep = np.linspace(dev.domain.f_min, dev.domain.f_max, points_per_channel)
        for f in sweep:
            point = base.copy()
            point[i] = dev.domain.nearest(f)
            plan.append(point)
    return np.asarray(plan)


def random_levels_plan(
    server: GpuServer, n_points: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly random on-grid frequency vectors (persistently exciting).

    Used by the recursive-least-squares extension, which re-identifies the
    model online and benefits from richer excitation than staircases.
    """
    if n_points < 1:
        raise ConfigurationError("n_points must be >= 1")
    devices = server.devices
    plan = np.empty((n_points, len(devices)), dtype=np.float64)
    for j, dev in enumerate(devices):
        levels = dev.domain.levels
        plan[:, j] = rng.choice(levels, size=n_points)
    return plan
