"""Least-squares fitting of the linear power model (Eq. 3-5).

The paper identifies ``p = A . F + C`` by varying one frequency input at a
time while holding the others fixed, recording power, and solving the
resulting overdetermined linear system with least squares (Section 4.2,
Fig. 2(a), reported R^2 = 0.96).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IdentificationError

__all__ = ["PowerModelFit", "fit_power_model", "r_squared"]


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination of predictions ``y_pred``.

    Returns 1.0 for a perfect fit on a constant target (zero total variance
    with zero residuals) and -inf-free values otherwise.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise IdentificationError("shape mismatch between y_true and y_pred")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class PowerModelFit:
    """Identified linear power model ``p = A . F + C``.

    ``A`` has one gain per channel (W/MHz), ``c_w`` is the static offset,
    and the fit diagnostics mirror what Fig. 2(a) reports.
    """

    a_w_per_mhz: np.ndarray
    c_w: float
    r2: float
    rmse_w: float
    n_samples: int

    @property
    def n_channels(self) -> int:
        return int(self.a_w_per_mhz.shape[0])

    def predict(self, f_mhz: np.ndarray) -> np.ndarray:
        """Predicted power for frequency vector(s); accepts (n,) or (m, n)."""
        F = np.asarray(f_mhz, dtype=np.float64)
        return F @ self.a_w_per_mhz + self.c_w

    def predict_delta(self, delta_f_mhz: np.ndarray) -> float:
        """Predicted power change for a frequency increment (Eq. 7)."""
        return float(np.asarray(delta_f_mhz, dtype=np.float64) @ self.a_w_per_mhz)

    def with_gains(self, gains: np.ndarray) -> "PowerModelFit":
        """Return a copy whose ``A`` entries are scaled by ``gains``.

        Used by the Section 4.4 robustness analysis (``A' = g o A``).
        """
        g = np.asarray(gains, dtype=np.float64)
        if g.shape != self.a_w_per_mhz.shape:
            raise IdentificationError("gains must match the channel count")
        return PowerModelFit(
            a_w_per_mhz=self.a_w_per_mhz * g,
            c_w=self.c_w,
            r2=self.r2,
            rmse_w=self.rmse_w,
            n_samples=self.n_samples,
        )


def fit_power_model(f_mhz: np.ndarray, power_w: np.ndarray) -> PowerModelFit:
    """Fit ``p = A . F + C`` by ordinary least squares.

    Parameters
    ----------
    f_mhz:
        Design matrix, shape ``(n_samples, n_channels)`` — one frequency
        vector per measurement.
    power_w:
        Measured mean power per point, shape ``(n_samples,)``.

    Raises
    ------
    IdentificationError
        If there are fewer samples than unknowns or the design does not
        excite every channel (rank deficiency) — e.g. a channel was never
        varied during the excitation runs.
    """
    F = np.asarray(f_mhz, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    if F.ndim != 2 or p.ndim != 1 or F.shape[0] != p.shape[0]:
        raise IdentificationError("need F of shape (n, c) and power of shape (n,)")
    n, c = F.shape
    if n < c + 1:
        raise IdentificationError(
            f"{n} samples cannot identify {c} gains plus an offset"
        )
    design = np.column_stack([F, np.ones(n)])
    rank = np.linalg.matrix_rank(design)
    if rank < c + 1:
        raise IdentificationError(
            "excitation is rank-deficient: some channel was never varied "
            f"independently (rank {rank} < {c + 1})"
        )
    coef, *_ = np.linalg.lstsq(design, p, rcond=None)
    a, c_w = coef[:-1], float(coef[-1])
    pred = design @ coef
    return PowerModelFit(
        a_w_per_mhz=a,
        c_w=c_w,
        r2=r_squared(p, pred),
        rmse_w=float(np.sqrt(np.mean((p - pred) ** 2))),
        n_samples=n,
    )
