"""System identification: excitation, least-squares power fit, latency fit.

Implements Section 4.2 of the paper (Fig. 2): the one-knob-at-a-time
staircase, the linear power model ``p = A.F + C``, the Eq. 8 latency model,
and an online recursive-least-squares extension.
"""

from .excitation import one_knob_at_a_time, random_levels_plan
from .identifier import (
    IdentificationDataset,
    identify_latency_model,
    identify_power_model,
    measure_latency_curve,
)
from .latency_fit import LatencyModelFit, fit_latency_model
from .least_squares import PowerModelFit, fit_power_model, r_squared
from .rls import RecursiveLeastSquares
from .validation import (
    ResidualSummary,
    cross_validate_power_model,
    holdout_validation,
    residual_summary,
)

__all__ = [
    "one_knob_at_a_time",
    "random_levels_plan",
    "IdentificationDataset",
    "identify_power_model",
    "identify_latency_model",
    "measure_latency_curve",
    "LatencyModelFit",
    "fit_latency_model",
    "PowerModelFit",
    "fit_power_model",
    "r_squared",
    "RecursiveLeastSquares",
    "holdout_validation",
    "cross_validate_power_model",
    "ResidualSummary",
    "residual_summary",
]
