"""System-identification orchestration against a simulated server.

Drives the open-loop excitation protocol of Section 4.2 on a
:class:`~repro.sim.engine.ServerSimulation`: apply each plan point, let the
plant settle, average the power-meter samples, then fit the linear model.
Also collects per-batch latency measurements across a GPU clock sweep for
fitting Eq. 8 (Fig. 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IdentificationError
from ..sim.engine import ServerSimulation
from .excitation import one_knob_at_a_time
from .latency_fit import LatencyModelFit, fit_latency_model
from .least_squares import PowerModelFit, fit_power_model

__all__ = [
    "IdentificationDataset",
    "identify_power_model",
    "measure_latency_curve",
    "identify_latency_model",
]


@dataclass(frozen=True)
class IdentificationDataset:
    """Raw excitation data plus the resulting fit (Fig. 2(a) material)."""

    f_mhz: np.ndarray
    power_w: np.ndarray
    fit: PowerModelFit

    def predicted_w(self) -> np.ndarray:
        """Model predictions at the excitation points."""
        return self.fit.predict(self.f_mhz)


def identify_power_model(
    sim: ServerSimulation,
    plan: np.ndarray | None = None,
    settle_periods: int = 1,
    measure_periods: int = 2,
    points_per_channel: int = 8,
) -> IdentificationDataset:
    """Run the excitation plan open loop and fit ``p = A.F + C``.

    Note: identification consumes simulated time on ``sim`` — experiments
    either identify on a dedicated scenario instance or accept the warm-up
    (the paper likewise identifies before enabling the controller).
    """
    if plan is None:
        plan = one_knob_at_a_time(sim.server, points_per_channel=points_per_channel)
    plan = np.asarray(plan, dtype=np.float64)
    if plan.ndim != 2 or plan.shape[1] != sim.server.n_channels:
        raise IdentificationError(
            f"plan must be (n_points, {sim.server.n_channels})"
        )
    powers = np.empty(plan.shape[0])
    for i, point in enumerate(plan):
        powers[i] = sim.measure_power_w(
            point, settle_periods=settle_periods, measure_periods=measure_periods
        )
    fit = fit_power_model(plan, powers)
    return IdentificationDataset(f_mhz=plan, power_w=powers, fit=fit)


def measure_latency_curve(
    sim: ServerSimulation,
    gpu_index: int,
    clocks_mhz: np.ndarray,
    periods_per_point: int = 3,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep one GPU's clock and collect per-batch latencies.

    All other channels run at maximum so supply never limits the GPU.
    Returns aligned arrays ``(clock per batch, measured latency)``.
    """
    pipe = sim.pipelines[gpu_index]
    if pipe is None:
        raise IdentificationError(f"no pipeline on GPU {gpu_index}")
    chan = sim.gpu_channels[gpu_index]
    targets = sim.server.f_max_vector()
    freqs: list[float] = []
    lats: list[float] = []
    for clock in np.asarray(clocks_mhz, dtype=np.float64):
        targets = targets.copy()
        targets[chan] = clock
        before = pipe.completed_batches
        sim.run_open_loop(targets, periods_per_point)
        new = pipe.completed_batches - before
        if new == 0:
            continue
        window = list(pipe.recent_latencies_s)[-new:]
        # Drop the first batch at each point: it may straddle the clock change.
        window = window[1:] if len(window) > 1 else window
        freqs.extend([float(clock)] * len(window))
        lats.extend(window)
    if len(lats) < 3:
        raise IdentificationError("latency sweep produced too few batches")
    return np.asarray(freqs), np.asarray(lats)


def identify_latency_model(
    sim: ServerSimulation,
    gpu_index: int,
    n_points: int = 8,
    periods_per_point: int = 3,
) -> tuple[LatencyModelFit, np.ndarray, np.ndarray]:
    """Fit Eq. 8 for one GPU task from a clock sweep.

    Returns ``(fit, clock-per-batch, latency-per-batch)``.
    """
    gpu = sim.server.gpus[gpu_index]
    clocks = np.linspace(gpu.domain.f_min, gpu.domain.f_max, n_points)
    clocks = np.array([gpu.domain.nearest(c) for c in clocks])
    f, e = measure_latency_curve(sim, gpu_index, clocks, periods_per_point)
    fit = fit_latency_model(f, e, f_max_mhz=gpu.domain.f_max)
    return fit, f, e
