"""CapGPU reproduction: joint CPU + multi-GPU power capping for ML inference.

A full reimplementation of *"Power Capping of GPU Servers for Machine
Learning Inference Optimization"* (Ma, Subramaniyan, Wang — ICPP 2025) on a
simulated multi-GPU server testbed. See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.sim import paper_scenario
    from repro.core import build_capgpu

    ident = paper_scenario(seed=0)           # instance burned for sys-id
    sim = paper_scenario(seed=0, set_point_w=900.0)
    controller = build_capgpu(sim, ident_sim=ident)
    trace = sim.run(controller, n_periods=100)
    print(trace["power_w"][-10:])            # ~900 W

Package map:

===================  ========================================================
``repro.core``       CapGPU itself: MIMO MPC, weight assignment, SLOs,
                     stability analysis
``repro.control``    Controller interface + the four baselines
``repro.hardware``   Simulated server: CPU/GPU power models, fan, thermal
``repro.telemetry``  ACPI power meter, monitors, simulated NVML / RAPL
``repro.actuators``  Delta-sigma frequency modulation, cpupower/nvidia-smi
``repro.workloads``  Inference pipelines, model zoo, feature selection, PAI
``repro.sysid``      System identification (power + latency models)
``repro.faults``     Deterministic fault injection for telemetry + actuation
``repro.sim``        Discrete-time engine, events, canonical scenarios
``repro.experiments``One module per paper table/figure
``repro.analysis``   Metrics and report rendering
===================  ========================================================
"""

from ._version import __version__
from .control import (
    ControlObservation,
    CpuOnlyController,
    CpuPlusGpuController,
    FixedStepController,
    GpuOnlyController,
    PowerCappingController,
    SafeFixedStepController,
    SafeModeWatchdog,
    WatchdogConfig,
)
from .faults import FaultPlan
from .core import (
    CapGpuController,
    MimoPowerMpc,
    MpcConfig,
    SloManager,
    WeightAssigner,
    build_capgpu,
)
from .errors import (
    ActuationError,
    ConfigurationError,
    IdentificationError,
    InfeasibleSetPointError,
    ReproError,
    SloInfeasibleError,
    SolverError,
    TelemetryError,
)
from .hardware import GpuServer, rtx3090_server, v100_server
from .sim import ServerSimulation, SimConfig, motivation_scenario, paper_scenario

__all__ = [
    "__version__",
    # core
    "CapGpuController",
    "MimoPowerMpc",
    "MpcConfig",
    "SloManager",
    "WeightAssigner",
    "build_capgpu",
    # control
    "ControlObservation",
    "PowerCappingController",
    "FixedStepController",
    "SafeFixedStepController",
    "GpuOnlyController",
    "CpuOnlyController",
    "CpuPlusGpuController",
    "SafeModeWatchdog",
    "WatchdogConfig",
    # faults
    "FaultPlan",
    # hardware / sim
    "GpuServer",
    "v100_server",
    "rtx3090_server",
    "ServerSimulation",
    "SimConfig",
    "paper_scenario",
    "motivation_scenario",
    # errors
    "ReproError",
    "ConfigurationError",
    "ActuationError",
    "TelemetryError",
    "IdentificationError",
    "SolverError",
    "InfeasibleSetPointError",
    "SloInfeasibleError",
]
