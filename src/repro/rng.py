"""Deterministic random-number plumbing.

Every stochastic component of the simulated testbed (sensor noise, inference
latency jitter, request arrivals, synthetic traces) draws from an explicit
:class:`numpy.random.Generator`. Experiments construct a single root seed and
derive independent child streams per component via :func:`spawn`, so that

* two runs with the same seed are bit-for-bit identical, and
* adding a new noise consumer does not perturb the streams of existing ones
  (each component has its own named stream).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "SeedLike"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def make_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing ``Generator`` (returned as-is),
    a ``SeedSequence``, or ``None`` (OS entropy — only for interactive use;
    experiments always pass an int).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed, name: str) -> np.random.Generator:
    """Derive an independent, reproducible child generator.

    The child stream is keyed on ``(seed, name)`` so distinct components get
    decorrelated streams and the mapping is stable across runs and across
    unrelated code changes.

    Parameters
    ----------
    seed:
        Root seed (int) or ``SeedSequence``. If a ``Generator`` is passed,
        a stream is split off it directly (still deterministic given the
        generator state, but no longer keyed by name).
    name:
        Component name, e.g. ``"power-meter-noise"``.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(0 if seed is None else int(seed))
    # Fold the component name into the entropy so streams are independent.
    digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(int(b) for b in digest)
    )
    return np.random.default_rng(child)
