"""Deterministic random-number plumbing.

Every stochastic component of the simulated testbed (sensor noise, inference
latency jitter, request arrivals, synthetic traces) draws from an explicit
:class:`numpy.random.Generator`. Experiments construct a single root seed and
derive independent child streams per component via :func:`spawn`, so that

* two runs with the same seed are bit-for-bit identical, and
* adding a new noise consumer does not perturb the streams of existing ones
  (each component has its own named stream).
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "BlockSampler",
    "SeedLike",
    "generator_state",
    "set_generator_state",
]

SeedLike: TypeAlias = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing ``Generator`` (returned as-is),
    a ``SeedSequence``, or ``None`` (OS entropy — only for interactive use;
    experiments always pass an int).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, name: str) -> np.random.Generator:
    """Derive an independent, reproducible child generator.

    The child stream is keyed on ``(seed, name)`` so distinct components get
    decorrelated streams and the mapping is stable across runs and across
    unrelated code changes.

    Parameters
    ----------
    seed:
        Root seed (int) or ``SeedSequence``. If a ``Generator`` is passed,
        a stream is split off it directly (still deterministic given the
        generator state, but no longer keyed by name).
    name:
        Component name, e.g. ``"power-meter-noise"``.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(0 if seed is None else int(seed))
    # Fold the component name into the entropy so streams are independent.
    digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(int(b) for b in digest)
    )
    return np.random.default_rng(child)


def generator_state(rng: np.random.Generator) -> dict:
    """The exact bit-generator state of ``rng`` (checkpointable).

    The returned dict (``{"bitgen": <class name>, "state": <state dict>}``)
    round-trips through :func:`set_generator_state` such that the stream
    continues bit-for-bit where it left off.
    """
    return {
        "bitgen": type(rng.bit_generator).__name__,
        "state": rng.bit_generator.state,
    }


def set_generator_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Load a :func:`generator_state` snapshot into ``rng`` in place."""
    have = type(rng.bit_generator).__name__
    want = state["bitgen"]
    if have != want:
        raise ValueError(f"bit generator mismatch: have {have}, snapshot is {want}")
    rng.bit_generator.state = state["state"]
    return rng


class BlockSampler:
    """Block pre-drawing of i.i.d. samples from one Generator distribution.

    The hot loop draws one sample per event (``rng.normal(0, sigma)``,
    ``rng.poisson(lam)``, ...), which pays the Generator dispatch overhead on
    every draw. Pre-drawing a block with ``size=n`` consumes the *same*
    underlying bit stream as ``n`` scalar draws for the distributions used
    here (normal, lognormal, poisson — verified by
    ``tests/sim/test_vectorized_digest.py``), so handing out cached samples
    one at a time is bit-for-bit equivalent and an order of magnitude
    cheaper.

    One sampler serves one distribution with *fixed* parameters; that is the
    shape of every noise stream in the simulator (each component owns a
    dedicated spawned generator). Samples are handed out as Python floats so
    downstream scalar arithmetic is unchanged.
    """

    __slots__ = ("_rng", "_dist", "_args", "_block", "_buf", "_i")

    def __init__(
        self,
        rng: np.random.Generator,
        dist: str,
        args: tuple[float, ...],
        block: int = 256,
    ) -> None:
        if block < 1:
            raise ValueError("block must be >= 1")
        self._rng = rng
        self._dist = str(dist)
        self._args = tuple(args)
        self._block = int(block)
        self._buf: list[float] = []
        self._i = 0

    @property
    def params(self) -> tuple[float, ...]:
        """The fixed distribution parameters this sampler was built with."""
        return self._args

    def next(self) -> float:
        """The next sample of the stream (refilling the block as needed)."""
        if self._i >= len(self._buf):
            draw = getattr(self._rng, self._dist)
            self._buf = draw(*self._args, size=self._block).tolist()
            self._i = 0
        value = self._buf[self._i]
        self._i += 1
        return value

    def take(self, n: int) -> list[float]:
        """The next ``n`` samples of the stream, as a list of floats.

        Equivalent to ``[self.next() for _ in range(n)]`` (and therefore to
        one ``size=n`` draw on the wrapped generator), without the per-sample
        call overhead.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        buf, i = self._buf, self._i
        end = i + n
        if end <= len(buf):
            self._i = end
            return buf[i:end]
        out = buf[i:]
        need = n - len(out)
        draw = getattr(self._rng, self._dist)
        # Refill in block multiples so the stream position stays aligned
        # with what repeated next() calls would have consumed.
        block = self._block
        fill = ((need + block - 1) // block) * block
        self._buf = buf = draw(*self._args, size=fill).tolist()
        out.extend(buf[:need])
        self._i = need
        return out
