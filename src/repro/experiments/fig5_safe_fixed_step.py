"""Figure 5 — Safe Fixed-step: margin-backed capping.

Safe Fixed-step tracks ``P_s - margin`` with the margin calibrated from a
prior Fixed-step run's steady-state errors. It should operate at or below
the set point with at most rare violations (the paper observes exactly one,
attributed to the margin being derived from *averaged* steady-state errors).
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_series, format_table, steady_state_stats, violation_stats
from ..control import SafeFixedStepController
from ..sim import paper_scenario
from .common import (
    N_PERIODS,
    ExperimentResult,
    calibrated_safety_margin,
    steady_window,
)

__all__ = ["run_fig5"]


def run_fig5(
    seed: int = 0,
    set_point_w: float = 900.0,
    step_sizes: tuple[int, ...] = (1, 5),
    n_periods: int = N_PERIODS,
) -> ExperimentResult:
    """Run Safe Fixed-step per step size with a calibrated margin."""
    result = ExperimentResult("fig5", "Safe Fixed-step controller for different step sizes")
    rows = []
    traces = {}
    for step in step_sizes:
        margin = calibrated_safety_margin(seed, set_point_w, step)
        sim = paper_scenario(seed=seed, set_point_w=set_point_w)
        ctl = SafeFixedStepController(safety_margin_w=margin, step_size=step)
        trace = sim.run(ctl, n_periods)
        mean, std = steady_state_stats(trace, steady_window(n_periods))
        viol = violation_stats(trace, margin_w=10.0, start_period=20)
        rows.append([
            f"stepsize {step}", margin, mean, std, viol.n_violations,
            viol.worst_excess_w,
        ])
        traces[step] = trace
        result.add(
            format_series(
                f"power_W[step{step}]",
                np.arange(len(trace), dtype=float),
                trace["power_w"],
            )
        )
    result.add(
        format_table(
            ["Config", "Margin W", "SS mean W", "SS std W",
             "Violations", "Worst excess W"],
            rows,
            title=f"Figure 5 summary (set point {set_point_w:.0f} W; margin from "
                  "a Fixed-step calibration run)",
        )
    )
    result.data["traces"] = traces
    return result
