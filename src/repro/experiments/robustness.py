"""Empirical validation of the Section 4.4 stability bound.

The analysis predicts the closed loop stays stable while the true gains
``A' = g * A`` remain inside a derived interval (with the default reference
trajectory lambda = 0.5, instability at g = 2/(1 - lambda) = 4). This
experiment runs the *actual* closed loop with deliberately mis-scaled models
— the controller believes ``A/g`` while the plant has ``A``, equivalent to a
true/nominal mismatch of ``g`` — and measures steady-state oscillation,
placing the empirical stability edge next to the analytical one.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table
from ..core import CapGpuController, MpcConfig, error_mode_pole
from ..sim import paper_scenario
from .common import ExperimentResult, identified_model

__all__ = ["run_robustness"]

#: Mismatch factors swept; the analytic edge for lambda=0.5 sits at g=4.
DEFAULT_GAINS: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 3.0, 3.8, 4.5, 6.0)


def run_robustness(
    seed: int = 0,
    set_point_w: float = 900.0,
    gains: tuple[float, ...] = DEFAULT_GAINS,
    n_periods: int = 60,
    mpc_config: MpcConfig = MpcConfig(),
) -> ExperimentResult:
    """Sweep gain mismatch g and measure closed-loop behaviour."""
    result = ExperimentResult(
        "robustness", "Empirical stability under gain mismatch (Section 4.4)"
    )
    model = identified_model(seed)
    r_nominal = np.full(model.n_channels, 5e-5)
    rows = []
    data = {}
    for g in gains:
        believed = model.with_gains(np.full(model.n_channels, 1.0 / g))
        sim = paper_scenario(seed=seed, set_point_w=set_point_w)
        ctl = CapGpuController(model=believed, mpc_config=mpc_config)
        trace = sim.run(ctl, n_periods)
        tail = trace["power_w"][-30:]
        err = float(np.mean(tail)) - set_point_w
        std = float(np.std(tail))
        # Predicted pole: controller designed on the believed gains, plant
        # gains are g x believed.
        pole = error_mode_pole(
            believed.a_w_per_mhz, np.full(model.n_channels, g),
            r_nominal, mpc_config,
        )
        stable_pred = abs(pole) < 1.0
        rows.append([g, pole, stable_pred, err, std])
        data[g] = {"pole": pole, "ss_err_w": err, "ss_std_w": std,
                   "stable_predicted": stable_pred}
    result.add(
        format_table(
            ["g (true/nominal)", "Predicted pole", "Predicted stable",
             "SS error W", "SS std W"],
            rows,
            title=f"Gain-mismatch sweep at {set_point_w:.0f} W "
                  "(analytic edge at g = 2/(1 - lambda))",
            float_fmt="{:.3f}",
        )
    )
    result.data["sweep"] = data
    return result
