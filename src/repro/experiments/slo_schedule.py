"""SLO levels and the Section 6.4 SLO-change schedule.

The paper defines three SLO tightness levels per workload as the 30%, 50%
and 80% tail latencies (the latency a given fraction of batches stays
under), computed from Eq. 8 plus the measured jitter at a reference clock.
Initially every workload runs under its 50%-tail SLO; at control period 14
the workloads on GPU 1 and GPU 2 are relaxed to their 80%-tail level while
GPU 0 is tightened to its 30%-tail level. The set point is 1000 W so the
SLO set is feasible (the paper chooses it for the same reason).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import EventSchedule, ServerSimulation, SloChange
from ..workloads.models import InferenceModelSpec

__all__ = [
    "slo_level_s",
    "initial_slos",
    "section64_slo_events",
    "SLO_REFERENCE_CLOCK_MHZ",
    "SLO_CHANGE_PERIOD",
]

#: Reference core clock at which the tail-latency SLO levels are computed —
#: a mid-range V100 operating point representative of capped operation.
SLO_REFERENCE_CLOCK_MHZ = 900.0

#: Control period at which the paper changes the SLO mix.
SLO_CHANGE_PERIOD = 14


def slo_level_s(
    spec: InferenceModelSpec,
    quantile: float,
    f_ref_mhz: float = SLO_REFERENCE_CLOCK_MHZ,
) -> float:
    """The ``quantile``-tail latency of ``spec`` at the reference clock."""
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError("quantile must lie in (0, 1)")
    return spec.tail_latency_s(f_ref_mhz, quantile)


def initial_slos(sim: ServerSimulation, quantile: float = 0.5) -> list[float]:
    """Per-GPU initial SLOs (the 50%-tail level for every task)."""
    slos = []
    for pipe in sim.pipelines:
        if pipe is None:
            raise ConfigurationError("SLO schedule expects a pipeline on every GPU")
        slos.append(slo_level_s(pipe.spec, quantile))
    return slos


def section64_slo_events(sim: ServerSimulation) -> EventSchedule:
    """The paper's period-14 SLO switch.

    GPU 0 tightens to its 30%-tail level; GPUs 1 and 2 (and any further
    GPUs) relax to their 80%-tail level.
    """
    events = []
    for g, pipe in enumerate(sim.pipelines):
        if pipe is None:
            continue
        quantile = 0.3 if g == 0 else 0.8
        events.append(
            SloChange(SLO_CHANGE_PERIOD, g, slo_level_s(pipe.spec, quantile))
        )
    return EventSchedule(events)
