"""Figure 7 — application performance under the cap.

At a fixed set point, compares Safe Fixed-step, GPU-Only and CapGPU on:

(a) per-GPU inference throughput (batches/s, steady-state mean),
(b) CPU throughput (feature subsets/s),
(c) per-GPU inference latency (s/batch),
(d) CPU latency (s per feature-subset evaluation).

Expected shape (Section 6.3): CapGPU posts the highest GPU throughput and
lowest GPU latency (it throttles the SLO-free CPU work to buy GPU watts);
GPU-Only posts the best CPU latency/throughput (the CPU is pinned at max)
at the cost of GPU performance; CapGPU's CPU latency is slightly higher —
acceptable because preprocessing/feature-selection has no SLO.
"""

from __future__ import annotations

from ..analysis import format_table, mean_over_steady
from ..sim import paper_scenario
from .common import (
    N_PERIODS,
    ExperimentResult,
    make_capgpu,
    make_gpu_only,
    make_safe_fixed_step,
    modulator_for,
    steady_window,
)

__all__ = ["run_fig7"]


def run_fig7(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = N_PERIODS
) -> ExperimentResult:
    """Run the three strategies and tabulate the four performance panels."""
    result = ExperimentResult("fig7", "Application performance under the power cap")
    strategies = [
        ("Safe Fixed-step", lambda sim: make_safe_fixed_step(seed, set_point_w)),
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]
    rows = []
    raw = {}
    n_gpus = None
    for label, factory in strategies:
        sim = paper_scenario(
            seed=seed, set_point_w=set_point_w,
            modulator_factory=modulator_for(label),
        )
        n_gpus = sim.server.n_gpus
        trace = sim.run(factory(sim), n_periods)
        steady = steady_window(n_periods)
        gpu_tput = [
            mean_over_steady(trace, f"tput_{c}", steady)
            for c in sim.gpu_channels
        ]
        gpu_lat = [
            mean_over_steady(trace, f"lat_mean_g{g}", steady)
            for g in range(n_gpus)
        ]
        cpu_tput = mean_over_steady(trace, "cpu_tput", steady)
        cpu_lat = mean_over_steady(trace, "cpu_lat_s", steady)
        power = mean_over_steady(trace, "power_w", steady)
        rows.append([label, *gpu_tput, cpu_tput, *gpu_lat, cpu_lat, power])
        raw[label] = {
            "gpu_tput_batch_s": gpu_tput,
            "gpu_latency_s": gpu_lat,
            "cpu_tput_subsets_s": cpu_tput,
            "cpu_latency_s": cpu_lat,
            "power_w": power,
        }
    headers = [
        "Strategy",
        *(f"(a) GPU{g} tput" for g in range(n_gpus)),
        "(b) CPU tput",
        *(f"(c) GPU{g} lat s" for g in range(n_gpus)),
        "(d) CPU lat s",
        "Power W",
    ]
    result.add(
        format_table(
            headers, rows,
            title=f"Figure 7 panels at {set_point_w:.0f} W "
                  f"(steady-state means over last {steady_window(n_periods)} periods)",
            float_fmt="{:.3f}",
        )
    )
    result.data["panels"] = raw
    return result
