"""Figure 4 — Fixed-step behaviour across step sizes.

Step size 1 (100 MHz CPU / 90 MHz GPU) versus step size 5 (500 / 450 MHz):
the small step takes long to reach the vicinity of the set point and then
oscillates; the large step converges fast but oscillates with much larger
amplitude (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from ..analysis import (
    format_series,
    format_table,
    settling_time_periods,
    steady_state_stats,
    violation_stats,
)
from ..control import FixedStepController
from ..sim import paper_scenario
from .common import N_PERIODS, ExperimentResult, steady_window

__all__ = ["run_fig4"]


def run_fig4(
    seed: int = 0,
    set_point_w: float = 900.0,
    step_sizes: tuple[int, ...] = (1, 5),
    n_periods: int = N_PERIODS,
) -> ExperimentResult:
    """Run Fixed-step at each step size and tabulate oscillation metrics."""
    result = ExperimentResult("fig4", "Fixed-step controller for different step sizes")
    rows = []
    traces = {}
    for step in step_sizes:
        sim = paper_scenario(seed=seed, set_point_w=set_point_w)
        trace = sim.run(FixedStepController(step_size=step), n_periods)
        steady = steady_window(n_periods)
        mean, std = steady_state_stats(trace, steady)
        settle = settling_time_periods(trace, tolerance_w=60.0)
        viol = violation_stats(trace, margin_w=10.0, start_period=20)
        # Peak-to-peak oscillation over the steady window.
        osc = trace["power_w"][-steady:]
        rows.append([
            f"stepsize {step}", mean, std, float(np.ptp(osc)),
            "inf" if np.isinf(settle) else f"{settle:.0f}",
            viol.n_violations,
        ])
        traces[step] = trace
        result.add(
            format_series(
                f"power_W[step{step}]",
                np.arange(len(trace), dtype=float),
                trace["power_w"],
            )
        )
    result.add(
        format_table(
            ["Config", "SS mean W", "SS std W", "P2P W", "Settle (periods)", "Violations"],
            rows,
            title=f"Figure 4 summary (set point {set_point_w:.0f} W)",
        )
    )
    result.data["traces"] = traces
    return result
