"""Figure 9 at fleet scale: budget reallocation over a server hierarchy.

The paper's single-server experiments cap one box. This extension runs the
same control stack under a datacenter → row → rack → server budget tree
(the oversubscription setting of Dynamo/SHIP in PAPERS.md): every budget
round the hierarchy reallocates the fleet budget from live telemetry, then
mid-run the datacenter budget is curtailed — the fleet-scale analog of
Figure 9's mid-run condition change — and every server's controller tracks
its new cap.

Runs on either fleet backend. The structure-of-arrays backend makes the
default 64-server fleet interactive and a 1024-server fleet practical; the
reference backend (N scalar engines) is bit-identical and serves as the
cross-check (``tests/fleet/test_differential.py``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import format_table
from ..errors import ConfigurationError
from ..fleet import FleetSimulation, ReferenceBackend, SoaFleetBackend, build_scalar_twin
from ..fleet.scenarios import fleet_scenario
from .common import ExperimentResult

__all__ = ["run_fig9_scale"]

#: Fraction of the fleet budget withdrawn at the mid-run curtailment. The
#: static-load scenarios budget ~730 W/server against a ~692 W achievable
#: floor, so 4% is a deep cut that stays feasible at every tree level.
CURTAIL_FRACTION = 0.04


def _build_fleet(scenario, backend: str, n_servers: int, seed: int) -> FleetSimulation:
    """The scenario's fleet with every server's RNG streams shifted by the
    experiment seed (replicates re-randomize noise, not the topology)."""
    if not scenario.soa_capable:
        raise ConfigurationError(
            f"fleet scenario {scenario.name!r} is reference-only; "
            "fig9-scale needs a spec-built (static-load) scenario"
        )
    specs = [
        dataclasses.replace(s, seed=s.seed + 100_000 * seed)
        for s in scenario.specs(n_servers)
    ]
    if backend == "soa":
        be: object = SoaFleetBackend(specs)
    elif backend == "reference":
        be = ReferenceBackend([build_scalar_twin(s) for s in specs])
    elif backend == "fast":
        from ..fast.fleet import FastFleetBackend

        be = FastFleetBackend(specs)
    elif backend == "fast-parallel":
        from ..fast.parallel import ParallelFleetBackend

        be = ParallelFleetBackend(specs)
    else:
        raise ConfigurationError(
            f"unknown fleet backend {backend!r}; have soa, reference, fast, "
            f"fast-parallel"
        )
    return FleetSimulation(
        be,
        budget_w=scenario.budget_w(n_servers),
        allocation=scenario.allocation(n_servers),
        periods_per_rack_period=scenario.periods_per_rack_period,
    )


def run_fig9_scale(
    seed: int = 0,
    n_servers: int = 64,
    backend: str | None = None,
    scenario: str = "tree-static",
    n_rack_periods: int = 6,
) -> ExperimentResult:
    """Hierarchical budget reallocation with a mid-run curtailment.

    Half the rack periods run at the full fleet budget, half after a
    :data:`CURTAIL_FRACTION` cut. Reported per round: the fleet budget, the
    summed per-server allocations (conservation), total measured power and
    its tracking error. The default backend follows the engine mode: ``soa``
    (bit-identical) under the reference engine, ``fast`` under
    ``--engine fast``.
    """
    if backend is None:
        from ..enginemode import fast_enabled

        backend = "fast" if fast_enabled() else "soa"
    if n_rack_periods < 2:
        raise ConfigurationError("n_rack_periods must be >= 2 (pre and post cut)")
    sc = fleet_scenario(scenario)
    fleet = _build_fleet(sc, backend, n_servers, seed)
    full_budget_w = fleet.budget_w
    half = n_rack_periods // 2
    fleet.run(half)
    fleet.set_budget(full_budget_w * (1.0 - CURTAIL_FRACTION))
    fleet.run(n_rack_periods - half)

    result = ExperimentResult(
        "fig9-scale",
        f"Hierarchical budget reallocation over {fleet.n_servers} servers "
        f"({backend} backend)",
    )
    trace = fleet.trace
    names = fleet.backend.names
    rows = []
    for k in range(len(trace)):
        budget = float(trace["budget_w"][k])
        allocated = float(sum(trace[f"budget_{n}"][k] for n in names))
        total = float(trace["total_power_w"][k])
        rows.append(
            [int(trace["rack_period"][k]), budget, allocated, total, total - budget]
        )
    result.add(
        format_table(
            ["Round", "Budget (W)", "Allocated (W)", "Power (W)", "Error (W)"],
            rows,
            title=(
                f"Figure 9 at scale: {sc.description}; budget curtailed "
                f"{CURTAIL_FRACTION:.0%} after round {half - 1}"
            ),
            float_fmt="{:.1f}",
        )
    )
    result.add("Budget hierarchy:\n" + fleet.tree.describe())

    powers = np.asarray(fleet.backend.last_powers())
    post = trace["total_power_w"][half:]
    post_budget = full_budget_w * (1.0 - CURTAIL_FRACTION)
    result.data["trace"] = trace
    result.data["n_servers"] = fleet.n_servers
    result.data["backend"] = backend
    result.data["final_powers_w"] = powers
    result.data["post_cut_tracking_err_w"] = float(np.mean(post - post_budget))
    closer = getattr(fleet.backend, "close", None)
    if callable(closer):  # fast-parallel owns worker processes + shm
        closer()
    return result
