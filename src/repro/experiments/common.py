"""Shared infrastructure for the per-figure/table experiment modules.

Each experiment module exposes ``run_<id>(seed=..., **knobs) -> ExperimentResult``.
Results carry both rendered text (the rows/series the paper reports) and the
raw data/traces, so tests can assert on numbers and the CLI can print
reports.

All control-theoretic strategies in a comparison share one identified model
(cached per seed), mirroring the paper where identification happens once per
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from ..actuators import DeltaSigmaModulator, NearestLevelModulator
from ..control import (
    CpuOnlyController,
    CpuPlusGpuController,
    FixedStepController,
    GpuOnlyController,
    SafeFixedStepController,
    estimate_safety_margin,
)
from ..core import CapGpuController, MpcConfig, WeightAssigner, build_capgpu, group_gains
from ..runner import map_cases
from ..sim import paper_scenario
from ..sysid import PowerModelFit, identify_power_model

__all__ = [
    "ExperimentResult",
    "CheckpointPolicy",
    "run_checkpointed",
    "run_timed_cases",
    "identified_model",
    "make_capgpu",
    "make_gpu_only",
    "make_cpu_only",
    "make_cpu_plus_gpu",
    "make_safe_fixed_step",
    "calibrated_safety_margin",
    "STEADY_LAST",
    "N_PERIODS",
    "steady_window",
]

#: Section 6.3 conventions: 100 periods per run, statistics over the last 80.
N_PERIODS = 100
STEADY_LAST = 80

#: Periods always discarded as start-up transient when a run is shorter than
#: the standard 100 periods.
TRANSIENT_PERIODS = 20


def steady_window(n_periods: int) -> int:
    """Length of the steady-state window for an ``n_periods`` run.

    The paper's convention (last 80 of 100) generalized: never include the
    first :data:`TRANSIENT_PERIODS` periods.
    """
    return min(STEADY_LAST, max(n_periods - TRANSIENT_PERIODS, 1))


def modulator_for(label: str):
    """Actuation modulator per strategy.

    Delta-sigma modulation is part of CapGPU's design (Section 5/6.2: "For
    CapGPU, we utilize the delta-sigma modulation"); the baselines command
    discrete levels the way their source systems do, i.e. the nearest
    supported level.
    """
    return DeltaSigmaModulator if "capgpu" in label.lower() else NearestLevelModulator


@dataclass
class ExperimentResult:
    """Outcome of one experiment: rendered report + raw data.

    ``timings`` holds measured per-case wall times (populated by
    :func:`run_timed_cases`). They are observability, not results: the sweep
    runner's canonical serialization excludes them, so they never perturb
    the bit-for-bit reproducibility digest.
    """

    experiment_id: str
    title: str
    sections: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)

    def add(self, text: str) -> None:
        self.sections.append(text)

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ==="
        return "\n\n".join([header, *self.sections])


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a long engine run checkpoints itself (see :func:`run_checkpointed`).

    ``path`` is the single checkpoint file, rewritten atomically every
    ``every_n_periods`` engine periods; ``resume=True`` loads it (if it
    exists) before running. ``stop_flag`` — typically a
    :class:`repro.checkpoint.ShutdownFlag` wired to SIGINT/SIGTERM — is
    polled at chunk boundaries; when set, a final checkpoint is flushed and
    :class:`repro.checkpoint.CheckpointInterrupt` raised.
    """

    path: Path
    every_n_periods: int = 10
    resume: bool = False
    stop_flag: object = None

    def __post_init__(self):
        if self.every_n_periods < 1:
            raise ValueError("every_n_periods must be >= 1")


def run_checkpointed(sim, controller, n_periods: int, events=None, checkpoint=None):
    """``sim.run(...)`` in checkpoint-sized chunks with crash-safe saves.

    Drop-in replacement for a single ``sim.run(controller, n_periods,
    events=events)`` call: with ``checkpoint=None`` it behaves identically
    (one chunk, no I/O), and chunking itself never changes results — the
    engine's trace and period counter are cumulative, so N periods in
    chunks are bit-identical to N periods straight.

    With a :class:`CheckpointPolicy`, the run state (engine + controller +
    events, one shared blob) is saved after every chunk; ``resume=True``
    restores the newest checkpoint first and runs only the remaining
    periods. A resumed run that already reached ``n_periods`` is a no-op
    returning the restored trace.
    """
    if checkpoint is None:
        return sim.run(controller, n_periods, events=events)

    from ..checkpoint import CheckpointInterrupt, load_blob, save_blob

    fresh = True
    if checkpoint.resume and Path(checkpoint.path).exists():
        sim.restore(load_blob(checkpoint.path), controller=controller, events=events)
        fresh = False
    trace = sim.trace
    while sim.period_index < n_periods:
        if checkpoint.stop_flag:
            save_blob(checkpoint.path, sim.snapshot(controller, events))
            raise CheckpointInterrupt(
                checkpoint.stop_flag.signum, checkpoint_path=checkpoint.path
            )
        chunk = min(checkpoint.every_n_periods, n_periods - sim.period_index)
        # initial_targets is the run's *first* actuation; re-applying it on
        # resume would overwrite the restored actuator state.
        trace = sim.run(
            controller, chunk, events=events, apply_initial_targets=fresh
        )
        fresh = False
        save_blob(checkpoint.path, sim.snapshot(controller, events))
    return trace


def run_timed_cases(result: ExperimentResult, cases, fn) -> dict:
    """Run an experiment's labelled cases through the sweep runner's mapper.

    The single code path for "run each (strategy, set point, …) case and
    time it" — replaces the ad-hoc ``for`` loops the experiment modules used
    to carry. Case order is preserved, results come back keyed by label, and
    per-case wall times land in ``result.timings``.
    """
    results, timings = map_cases(cases, fn)
    result.timings.update(timings)
    return results


@lru_cache(maxsize=16)
def identified_model(seed: int = 0, points_per_channel: int = 6) -> PowerModelFit:
    """One-shot system identification on a dedicated scenario instance.

    Cached per seed so every strategy in a comparison (and every experiment
    in a session) uses the same model, as on the paper's testbed.
    """
    sim = paper_scenario(seed=seed)
    return identify_power_model(sim, points_per_channel=points_per_channel).fit


def make_capgpu(
    sim,
    seed: int = 0,
    mpc_config: MpcConfig = MpcConfig(),
    weights: WeightAssigner | None = None,
    with_slo: bool = True,
) -> CapGpuController:
    """CapGPU wired to the cached identified model for this seed."""
    return build_capgpu(
        sim,
        model=identified_model(seed),
        mpc_config=mpc_config,
        weights=weights,
        with_slo=with_slo,
    )


def _gains(sim, seed: int) -> tuple[float, float]:
    model = identified_model(seed)
    return group_gains(model, sim.cpu_channels, sim.gpu_channels)


def make_gpu_only(sim, seed: int = 0, pole: float = 0.5) -> GpuOnlyController:
    _, gpu_gain = _gains(sim, seed)
    return GpuOnlyController(gpu_gain, pole=pole)


def make_cpu_only(sim, seed: int = 0, pole: float = 0.5) -> CpuOnlyController:
    cpu_gain, _ = _gains(sim, seed)
    return CpuOnlyController(cpu_gain, pole=pole)


def make_cpu_plus_gpu(
    sim, gpu_ratio: float, seed: int = 0, pole: float = 0.5
) -> CpuPlusGpuController:
    cpu_gain, gpu_gain = _gains(sim, seed)
    return CpuPlusGpuController(gpu_ratio, cpu_gain, gpu_gain, pole=pole)


@lru_cache(maxsize=32)
def calibrated_safety_margin(
    seed: int = 0, set_point_w: float = 900.0, step_size: int = 1
) -> float:
    """Safety margin for Safe Fixed-step from a Fixed-step calibration run.

    The paper notes the margin requires a prior measurement campaign; we run
    Fixed-step once per (seed, set point, step size) and derive the margin
    from its steady-state overshoots. Cached because it is expensive.
    """
    sim = paper_scenario(seed=seed, set_point_w=set_point_w)
    trace = sim.run(FixedStepController(step_size=step_size), N_PERIODS)
    return estimate_safety_margin(trace, set_point_w)


def make_safe_fixed_step(
    seed: int = 0, set_point_w: float = 900.0, step_size: int = 1
) -> SafeFixedStepController:
    margin = calibrated_safety_margin(seed, set_point_w, step_size)
    return SafeFixedStepController(safety_margin_w=margin, step_size=step_size)
