"""Coordinated batching + DVFS vs CapGPU (extension comparison).

Runs the [20]-style :class:`~repro.control.batch_dvfs.BatchDvfsController`
next to CapGPU and GPU-Only under the Section 6.4 SLO schedule. Batch
adaptation gives the shared-clock controller a second knob — it can shrink a
tightened task's batch instead of raising every GPU's clock — so it should
beat GPU-Only on SLO compliance; CapGPU's per-device clocks remain the most
precise instrument.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table, slo_miss_rate, steady_state_stats
from ..control import BatchDvfsController
from ..core import group_gains
from ..sim import paper_scenario
from .common import (
    ExperimentResult,
    identified_model,
    make_capgpu,
    make_gpu_only,
    modulator_for,
    steady_window,
)
from .slo_schedule import SLO_CHANGE_PERIOD, initial_slos, section64_slo_events

__all__ = ["run_batching_comparison"]


def _make_batch_dvfs(sim, seed: int) -> BatchDvfsController:
    model = identified_model(seed)
    _, gpu_gain = group_gains(model, sim.cpu_channels, sim.gpu_channels)
    specs = {g: p.spec for g, p in enumerate(sim.pipelines) if p is not None}
    return BatchDvfsController(gpu_gain, specs)


def run_batching_comparison(
    seed: int = 0, set_point_w: float = 1100.0, n_periods: int = 60
) -> ExperimentResult:
    """SLO-schedule comparison: GPU-Only vs Batch+DVFS vs CapGPU."""
    result = ExperimentResult(
        "batching", "Coordinated batching+DVFS [20] vs CapGPU under SLOs"
    )
    strategies = [
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("Batch+DVFS", lambda sim: _make_batch_dvfs(sim, seed)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]
    rows = []
    data = {}
    for label, factory in strategies:
        sim = paper_scenario(
            seed=seed, set_point_w=set_point_w,
            modulator_factory=modulator_for(label),
        )
        for g, slo in enumerate(initial_slos(sim)):
            sim.set_slo(g, slo)
        events = section64_slo_events(sim)
        trace = sim.run(factory(sim), n_periods, events=events)
        steady = steady_window(n_periods)
        mean, std = steady_state_stats(trace, steady)
        misses = [
            slo_miss_rate(trace, g, start_period=SLO_CHANGE_PERIOD + 2)
            for g in range(sim.server.n_gpus)
        ]
        # Delivered images/s = batches/s x that pipeline's batch size.
        img_rate = sum(
            float(np.nanmean(trace[f"tput_{c}"][-steady:]))
            * sim.pipelines[g].batch_size
            for g, c in enumerate(sim.gpu_channels)
        )
        rows.append([label, mean, std, img_rate, *misses, max(misses)])
        data[label] = {
            "mean_w": mean, "std_w": std, "img_rate": img_rate,
            "misses": misses, "worst_miss": max(misses),
        }
    n_gpus = len(rows[0]) - 5
    result.add(
        format_table(
            ["Strategy", "Power W", "Std W", "Total img/s",
             *[f"miss GPU{g}" for g in range(n_gpus)], "worst miss"],
            rows,
            title=f"Batching comparison at {set_point_w:.0f} W "
                  "(Section 6.4 SLO schedule)",
            float_fmt="{:.3f}",
        )
    )
    result.data.update(data)
    return result
