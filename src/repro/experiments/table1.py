"""Table 1 — end-to-end performance under static frequency configurations.

The Section 3.2 motivation experiment: GoogLeNet inference on the RTX 3090
box fed by ten preprocessing workers, evaluated at three fixed operating
points:

* ``CPU-only``  — CPU throttled to 1.1 GHz, GPU high at 810 MHz;
* ``GPU-only``  — GPU throttled to 495 MHz, CPU high at 2.1 GHz;
* ``CapGPU``    — both near mid-range (1.6 GHz, 660 MHz).

Reported per config: preprocessing latency (s/img), GPU batch latency
(s/batch), queue delay (s/img), throughput (img/s), mean power (W). The
paper's shape: the balanced configuration wins throughput and queue delay at
roughly equal power; GPU batch latencies follow Eq. 8 (1.3 / 2.0 / 1.6 s).
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table
from ..sim import motivation_scenario
from ..units import mhz_to_ghz
from .common import ExperimentResult

__all__ = ["run_table1", "TABLE1_CONFIGS", "PAPER_TABLE1"]

#: (label, cpu MHz, gpu MHz) of the three studied operating points.
TABLE1_CONFIGS: tuple[tuple[str, float, float], ...] = (
    ("CPU-only", 1100.0, 810.0),
    ("GPU-only", 2100.0, 495.0),
    ("CapGPU", 1600.0, 660.0),
)

#: The paper's reported rows (for EXPERIMENTS.md's paper-vs-measured index):
#: label -> (preproc s/img, gpu s/batch, queue s/img, throughput img/s, power W).
PAPER_TABLE1: dict[str, tuple[float, float, float, float, float]] = {
    "CPU-only": (0.1, 1.3, 3.2, 5.3, 406.4),
    "GPU-only": (0.2, 2.0, 2.7, 5.9, 421.3),
    "CapGPU": (0.1, 1.6, 2.5, 6.4, 415.1),
}


def run_table1(
    seed: int = 0, n_periods: int = 50, warmup_periods: int = 10
) -> ExperimentResult:
    """Run the three static configurations and tabulate end-to-end metrics."""
    result = ExperimentResult(
        "table1", "End-to-end performance under different frequency controls"
    )
    rows = []
    raw = {}
    for label, cpu_mhz, gpu_mhz in TABLE1_CONFIGS:
        sim = motivation_scenario(seed=seed)
        targets = np.array([cpu_mhz, gpu_mhz])
        sim.run_open_loop(targets, warmup_periods)
        pipe = sim.pipelines[0]
        # Reset lifetime aggregates after warm-up so steady state dominates.
        img0 = pipe.completed_images
        lat0, n0 = pipe._total_latency_s, pipe.completed_batches
        wait0 = pipe._total_queue_wait_s
        t0 = sim.time_s
        trace = sim.run_open_loop(targets, n_periods)
        elapsed = sim.time_s - t0
        n_batches = pipe.completed_batches - n0
        throughput = (pipe.completed_images - img0) / elapsed
        gpu_lat = (pipe._total_latency_s - lat0) / n_batches if n_batches else float("nan")
        queue_wait = (pipe._total_queue_wait_s - wait0) / n_batches if n_batches else float("nan")
        preproc = pipe.preproc_latency_s(mhz_to_ghz(cpu_mhz))
        power = float(np.mean(trace["power_w"][-n_periods:]))
        rows.append(
            [label, mhz_to_ghz(cpu_mhz), gpu_mhz, preproc, gpu_lat, queue_wait,
             throughput, power]
        )
        raw[label] = {
            "throughput_img_s": throughput,
            "gpu_latency_s": gpu_lat,
            "queue_wait_s": queue_wait,
            "preproc_s": preproc,
            "power_w": power,
        }
    result.add(
        format_table(
            ["Config", "CPU GHz", "GPU MHz", "Preproc s/img", "GPU s/batch",
             "Queue s/img", "Tput img/s", "Power W"],
            rows,
            title="Table 1 (measured on the simulated RTX 3090 box)",
        )
    )
    result.data["rows"] = raw
    result.data["paper"] = PAPER_TABLE1
    return result
