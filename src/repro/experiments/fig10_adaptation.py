"""Figure 10 — online adaptation to changing power set points.

The Section 6.4 budget schedule: the cap starts at 800 W, rises to 900 W at
control period 40 (a simulated surge in inference demand raises the site
budget) and returns to 800 W at period 80. Compares GPU-Only, Safe
Fixed-step and CapGPU on settling time and fluctuation after each change;
the paper finds all three adapt, with CapGPU fluctuating least and GPU-Only
settling slowest.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_series, format_table, settling_time_periods, sparkline
from ..sim import EventSchedule, SetPointChange, paper_scenario
from .common import (
    ExperimentResult,
    make_capgpu,
    make_gpu_only,
    make_safe_fixed_step,
    modulator_for,
)

__all__ = ["run_fig10", "BUDGET_SCHEDULE"]

#: (period, new budget W) — the paper's schedule.
BUDGET_SCHEDULE: tuple[tuple[int, float], ...] = ((40, 900.0), (80, 800.0))
INITIAL_BUDGET_W = 800.0


def run_fig10(
    seed: int = 0, n_periods: int = 120, tolerance_w: float = 15.0
) -> ExperimentResult:
    """Run the changing-budget schedule under the three strategies."""
    result = ExperimentResult("fig10", "Online adaptation to changing power set points")
    strategies = [
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("Safe Fixed-step", lambda sim: make_safe_fixed_step(seed, INITIAL_BUDGET_W)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]
    rows = []
    for label, factory in strategies:
        sim = paper_scenario(
            seed=seed, set_point_w=INITIAL_BUDGET_W,
            modulator_factory=modulator_for(label),
        )
        events = EventSchedule(
            [SetPointChange(period, watts) for period, watts in BUDGET_SCHEDULE]
        )
        trace = sim.run(factory(sim), n_periods, events=events)
        result.add(
            format_series(
                f"power_W[{label}]", np.arange(len(trace), dtype=float), trace["power_w"]
            )
        )
        result.add(
            format_series(
                f"set_point_W[{label}]",
                np.arange(len(trace), dtype=float),
                trace["set_point_w"],
            )
        )
        result.add(
            f"power[{label:>15s}] {sparkline(trace['power_w'], lo=650.0, hi=950.0)}"
        )
        settle_up = settling_time_periods(
            trace, tolerance_w=tolerance_w, start_period=BUDGET_SCHEDULE[0][0]
        )
        settle_down = settling_time_periods(
            trace, tolerance_w=tolerance_w, start_period=BUDGET_SCHEDULE[1][0]
        )
        # Fluctuation over the windows where the loop should be settled.
        settled = np.r_[
            trace["power_w"][25:40] - 800.0,
            trace["power_w"][60:80] - 900.0,
            trace["power_w"][105:] - 800.0,
        ]
        rows.append([
            label,
            "inf" if np.isinf(settle_up) else f"{settle_up:.0f}",
            "inf" if np.isinf(settle_down) else f"{settle_down:.0f}",
            float(np.std(settled)),
            float(np.max(np.abs(settled))),
        ])
        result.data[label] = trace
    result.add(
        format_table(
            ["Strategy", "Settle after +100 W", "Settle after -100 W",
             "Settled std W", "Max |dev| W"],
            rows,
            title="Figure 10 summary (800 W -> 900 W @ period 40 -> 800 W @ period 80)",
        )
    )
    result.data["summary_rows"] = rows
    return result
