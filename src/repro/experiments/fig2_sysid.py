"""Figure 2 — system identification quality.

(a) Measured vs. least-squares-predicted server power across the one-knob
excitation staircase (paper: R^2 = 0.96 on a one-CPU/one-GPU system).
(b) Measured vs. Eq. 8-predicted inference latency across a GPU clock sweep
(paper: gamma = 0.91, R^2 ~= 0.91).
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_series, format_table
from ..sim import SimConfig, paper_scenario
from ..sysid import identify_latency_model, identify_power_model
from .common import ExperimentResult

__all__ = ["run_fig2"]


def run_fig2(
    seed: int = 0,
    points_per_channel: int = 8,
    single_gpu: bool = True,
) -> ExperimentResult:
    """Reproduce both panels of Figure 2.

    ``single_gpu=True`` identifies a one-CPU/one-GPU system as in the
    paper's example; the full three-GPU identification is exercised by the
    other experiments.
    """
    result = ExperimentResult("fig2", "System identification (power + latency models)")

    # Panel (a): power model.
    from ..sim.scenarios import PAPER_TASKS

    tasks = PAPER_TASKS[:1] if single_gpu else PAPER_TASKS
    sim = paper_scenario(seed=seed, tasks=tasks)
    ds = identify_power_model(sim, points_per_channel=points_per_channel)
    pred = ds.predicted_w()
    result.add(
        format_table(
            ["Channel", "Gain W/MHz"],
            [
                *([name, float(g)] for name, g in zip(
                    [c.name for c in sim.server.channels], ds.fit.a_w_per_mhz
                )),
                ["offset C (W)", ds.fit.c_w],
            ],
            title=(
                f"Fig 2(a): power model fit — R^2 = {ds.fit.r2:.3f}, "
                f"RMSE = {ds.fit.rmse_w:.2f} W over {ds.fit.n_samples} points "
                "(paper: R^2 = 0.96)"
            ),
            float_fmt="{:.4f}",
        )
    )
    idx = np.arange(len(ds.power_w), dtype=float)
    result.add(format_series("measured_W", idx, ds.power_w))
    result.add(format_series("predicted_W", idx, pred))

    # Panel (b): latency model on GPU 0 (fresh scenario so time starts clean).
    sim_lat = paper_scenario(seed=seed + 1, tasks=tasks, sim_config=SimConfig())
    fit, f_mhz, lat_s = identify_latency_model(sim_lat, 0, n_points=8)
    spec = sim_lat.pipelines[0].spec
    result.add(
        format_table(
            ["Quantity", "Fitted", "Ground truth"],
            [
                ["gamma", fit.gamma, spec.gamma],
                ["e_min (s)", fit.e_min_s, spec.e_min_s],
                ["R^2", fit.r2, float("nan")],
            ],
            title=(
                f"Fig 2(b): latency model fit on {spec.name} "
                "(paper: gamma = 0.91, R^2 ~ 0.91)"
            ),
            float_fmt="{:.3f}",
        )
    )
    result.data.update(
        power_fit=ds.fit,
        excitation_f_mhz=ds.f_mhz,
        measured_power_w=ds.power_w,
        predicted_power_w=pred,
        latency_fit=fit,
        latency_f_mhz=f_mhz,
        latency_s=lat_s,
    )
    return result
