"""Figure 9 — CapGPU under changing SLOs.

Same schedule as Figure 8 (50%-tail SLOs, period-14 switch: GPU 0 tightened
to 30%-tail, GPUs 1-2 relaxed to 80%-tail, 1000 W set point), but under
CapGPU, whose per-device frequency allocation and explicit Eq. 10b-c
constraints should keep every task's latency under its (changing) SLO —
the paper reports zero misses.
"""

from __future__ import annotations

from ..analysis import format_table
from .common import ExperimentResult, make_capgpu
from .fig8_slo_baselines import run_slo_strategy, summarize_slo_trace
from .slo_schedule import SLO_CHANGE_PERIOD

__all__ = ["run_fig9"]


def run_fig9(
    seed: int = 0, set_point_w: float = 1100.0, n_periods: int = 60
) -> ExperimentResult:
    """CapGPU under the Section 6.4 SLO schedule."""
    result = ExperimentResult("fig9", "Inference latency vs SLO under CapGPU")
    trace, sim = run_slo_strategy(
        "CapGPU", lambda s: make_capgpu(s, seed), seed, set_point_w, n_periods
    )
    rows = summarize_slo_trace("CapGPU", trace, sim, result)
    result.add(
        format_table(
            ["Strategy", "Task", "Miss rate after switch"],
            rows,
            title=(
                "Figure 9: CapGPU deadline miss rates after the "
                f"period-{SLO_CHANGE_PERIOD} SLO change (paper: all SLOs met)"
            ),
            float_fmt="{:.3f}",
        )
    )
    result.data["trace"] = trace
    result.data["miss_rows"] = rows
    return result
