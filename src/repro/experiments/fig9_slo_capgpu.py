"""Figure 9 — CapGPU under changing SLOs.

Same schedule as Figure 8 (50%-tail SLOs, period-14 switch: GPU 0 tightened
to 30%-tail, GPUs 1-2 relaxed to 80%-tail, 1000 W set point), but under
CapGPU, whose per-device frequency allocation and explicit Eq. 10b-c
constraints should keep every task's latency under its (changing) SLO —
the paper reports zero misses.
"""

from __future__ import annotations

from ..analysis import format_table
from .common import CheckpointPolicy, ExperimentResult, make_capgpu
from .fig8_slo_baselines import run_slo_strategy, summarize_slo_trace
from .slo_schedule import SLO_CHANGE_PERIOD

__all__ = ["run_fig9"]


def run_fig9(
    seed: int = 0,
    set_point_w: float = 1100.0,
    n_periods: int = 60,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume: bool = False,
    stop_flag=None,
) -> ExperimentResult:
    """CapGPU under the Section 6.4 SLO schedule.

    The single long engine run makes this the checkpointing reference
    experiment: pass ``checkpoint_every``/``checkpoint_path`` (the CLI's
    ``--checkpoint-every``/``--checkpoint-file``) for periodic crash-safe
    saves, ``resume=True`` to continue from the newest checkpoint —
    bit-identical to an uninterrupted run either way.
    """
    checkpoint = None
    if checkpoint_every is not None or checkpoint_path is not None or resume:
        if checkpoint_path is None:
            raise ValueError("checkpointing requires checkpoint_path")
        checkpoint = CheckpointPolicy(
            path=checkpoint_path,
            every_n_periods=checkpoint_every or 10,
            resume=resume,
            stop_flag=stop_flag,
        )
    result = ExperimentResult("fig9", "Inference latency vs SLO under CapGPU")
    trace, sim = run_slo_strategy(
        "CapGPU",
        lambda s: make_capgpu(s, seed),
        seed,
        set_point_w,
        n_periods,
        checkpoint=checkpoint,
    )
    rows = summarize_slo_trace("CapGPU", trace, sim, result)
    result.add(
        format_table(
            ["Strategy", "Task", "Miss rate after switch"],
            rows,
            title=(
                "Figure 9: CapGPU deadline miss rates after the "
                f"period-{SLO_CHANGE_PERIOD} SLO change (paper: all SLOs met)"
            ),
            float_fmt="{:.3f}",
        )
    )
    result.data["trace"] = trace
    result.data["miss_rows"] = rows
    return result
