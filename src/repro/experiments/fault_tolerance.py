"""Fault-tolerance study: CapGPU under injected telemetry/actuation faults.

For every fault class in the catalog this experiment runs the paper's
three-GPU scenario closed-loop under CapGPU (wrapped in the safe-mode
watchdog by default), opens the fault for a transient window after the loop
has converged, and scores the outcome on *ground-truth* power — the
``true_power_w`` trace channel, not whatever the degraded telemetry
claimed:

* **cap-violation rate** — fraction of periods, from fault onset to the end
  of the run, with true power above the cap (2% tolerance, matching the
  watchdog's trip threshold);
* **max p/cap** — worst per-period true power as a fraction of the cap (the
  breaker-relevant number; the acceptance bar is 1.05);
* **settling time** — periods after the fault clears until true power stays
  within 2% of the set point for three consecutive periods;
* **degraded / safe-mode periods** — how long the observation ladder left
  the "acpi" rung and how long the watchdog held the frequency floor.

Run from the CLI as ``capgpu faults`` (flag reference in
``docs/robustness.md``) or ``capgpu run fault-tolerance``.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table
from ..core import build_capgpu
from ..errors import ExperimentError
from ..faults import (
    ActuatorClamp,
    ActuatorDelay,
    ActuatorStuck,
    FaultPlan,
    FaultWindow,
    MeterBias,
    MeterDropout,
    MeterFreeze,
    MeterSpike,
    NvmlStale,
    RaplStale,
)
from ..sim import paper_scenario
from .common import ExperimentResult, identified_model

__all__ = ["run_fault_tolerance", "fault_catalog", "settling_periods_after"]

#: Convergence band shared by the settling metric and the violation count.
TOLERANCE = 0.02

#: Consecutive in-band periods that count as "settled".
SETTLE_RUN = 3


def fault_catalog(start: int, n_periods: int) -> dict[str, FaultPlan]:
    """The studied fault classes, each windowed to ``[start, start+n)``.

    ``none`` is the control arm: fault wrappers installed, nothing armed —
    it doubles as a live check that the wrapped stack tracks identically.
    """
    w = FaultWindow(start, n_periods)
    return {
        "none": FaultPlan(),
        "meter-dropout": FaultPlan((MeterDropout(window=w),)),
        "meter-freeze": FaultPlan((MeterFreeze(window=w),)),
        "meter-spike": FaultPlan((MeterSpike(window=w, probability=0.5),)),
        "meter-bias": FaultPlan((MeterBias(window=w, offset_w=-150.0),)),
        "nvml-stale": FaultPlan((NvmlStale(window=w),)),
        "rapl-stale": FaultPlan((RaplStale(window=w),)),
        "actuator-stuck": FaultPlan((ActuatorStuck(window=w),)),
        "actuator-clamp": FaultPlan((ActuatorClamp(window=w, max_fraction=0.4),)),
        "actuator-delay": FaultPlan((ActuatorDelay(window=w, delay_periods=2),)),
    }


def settling_periods_after(
    true_power_w: np.ndarray,
    set_point_w: float,
    from_period: int,
    tolerance: float = TOLERANCE,
    run: int = SETTLE_RUN,
) -> float:
    """Periods after ``from_period`` until power holds the ±tolerance band
    for ``run`` consecutive periods; ``inf`` if it never re-settles."""
    tail = true_power_w[from_period:]
    in_band = np.abs(tail - set_point_w) <= tolerance * set_point_w
    streak = 0
    for k, ok in enumerate(in_band):
        streak = streak + 1 if ok else 0
        if streak >= run:
            return float(k - run + 1)
    return float("inf")


def run_fault_tolerance(
    seed: int = 0,
    set_point_w: float = 900.0,
    n_periods: int = 60,
    fault_start: int = 30,
    fault_periods: int = 10,
    classes: tuple[str, ...] | None = None,
    watchdog: bool = True,
) -> ExperimentResult:
    """Sweep the fault catalog and tabulate degradation metrics per class."""
    if fault_start + fault_periods >= n_periods:
        raise ExperimentError(
            "fault window must end before the run does "
            f"(start {fault_start} + {fault_periods} >= {n_periods})"
        )
    catalog = fault_catalog(fault_start, fault_periods)
    if classes is not None:
        unknown = sorted(set(classes) - set(catalog))
        if unknown:
            raise ExperimentError(
                f"unknown fault classes {unknown}; available: {sorted(catalog)}"
            )
        catalog = {name: catalog[name] for name in classes}

    result = ExperimentResult(
        "fault-tolerance",
        "CapGPU under injected telemetry/actuation faults "
        f"({'with' if watchdog else 'WITHOUT'} safe-mode watchdog)",
    )
    model = identified_model(seed)
    rows = []
    data: dict[str, dict] = {}
    fault_end = fault_start + fault_periods
    for name, plan in catalog.items():
        sim = paper_scenario(seed=seed, set_point_w=set_point_w, faults=plan)
        controller = build_capgpu(sim, model=model, watchdog=watchdog)
        trace = sim.run(controller, n_periods)
        true_p = trace["true_power_w"]
        scored = true_p[fault_start:]
        viol_rate = float(
            np.mean(scored > set_point_w * (1.0 + TOLERANCE))
        )
        max_ratio = float(np.max(scored) / set_point_w)
        settle = settling_periods_after(true_p, set_point_w, fault_end)
        degraded = int(np.sum(trace["power_src"] != 0.0))
        safe = int(np.sum(trace["safe_mode"] != 0.0))
        rows.append([name, settle, viol_rate, max_ratio, degraded, safe])
        data[name] = {
            "trace": trace,
            "settling_periods": settle,
            "cap_violation_rate": viol_rate,
            "max_power_ratio": max_ratio,
            "degraded_periods": degraded,
            "safe_mode_periods": safe,
        }

    result.add(
        format_table(
            ["fault", "settle (periods)", "viol. rate", "max p/cap",
             "degraded", "safe mode"],
            rows,
            title=(
                f"Fault window periods [{fault_start}, {fault_end}) at "
                f"{set_point_w:.0f} W, {n_periods} periods, seed {seed}"
            ),
            float_fmt="{:.3f}",
        )
    )
    result.add(
        "settle: periods after the fault clears until true power holds "
        f"±{TOLERANCE:.0%} of the cap for {SETTLE_RUN} periods | viol. rate: "
        f"share of periods past onset with true power > {1 + TOLERANCE:.2f}x "
        "cap | degraded/safe mode: periods off the 'acpi' telemetry rung / "
        "in the watchdog's frequency floor."
    )
    result.data["per_fault"] = data
    result.data["fault_window"] = (fault_start, fault_end)
    return result
