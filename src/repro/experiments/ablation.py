"""Ablations of CapGPU's design choices (DESIGN.md's ablation index).

These go beyond the paper's figures: each ablation switches off one design
element and measures what it bought.

* ``weights``  — throughput-driven weight assignment (inverse) vs uniform
  penalties, on a skewed workload (one mostly-idle GPU): the weight
  mechanism should shift budget to the busy GPUs and raise useful
  throughput.
* ``modulator`` — delta-sigma vs nearest-level actuation under CapGPU:
  delta-sigma realizes fractional commands, removing quantization limit
  cycles from the steady state.
* ``solver`` — SLSQP (the paper's) vs the analytic clipped fast path: same
  closed-loop quality, orders-of-magnitude cheaper (timed in
  ``benchmarks/test_bench_overhead.py``).
* ``horizon`` — prediction-horizon sweep: tracking quality is flat across
  P (the plant is first-order), confirming P=8 is not load-bearing.
"""

from __future__ import annotations

import numpy as np

from ..actuators import DeltaSigmaModulator, NearestLevelModulator
from ..analysis import format_table, steady_state_stats
from ..core import MpcConfig, WeightAssigner
from ..rng import spawn
from ..sim import paper_scenario
from ..workloads import RESNET50, InferencePipeline, PipelineConfig, SteadyArrivals
from .common import ExperimentResult, make_capgpu, run_timed_cases, steady_window

__all__ = [
    "run_ablation_weights",
    "run_ablation_modulator",
    "run_ablation_solver",
    "run_ablation_horizon",
    "ABLATIONS",
]


def _skewed_scenario(seed: int, set_point_w: float):
    """Paper scenario with GPU0 fed at ~15% of its capacity."""
    sim = paper_scenario(seed=seed, set_point_w=set_point_w)
    sim.pipelines[0] = InferencePipeline(
        RESNET50,
        PipelineConfig(preproc_frequency="fixed"),
        spawn(seed, "ablation-trickle"),
        arrivals=SteadyArrivals(6.0),
    )
    return sim


def run_ablation_weights(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = 80
) -> ExperimentResult:
    """Weight assignment on/off under a skewed load."""
    result = ExperimentResult(
        "ablation-weights", "Throughput-driven weights vs uniform penalties"
    )
    def _case(mode, _):
        sim = _skewed_scenario(seed, set_point_w)
        ctl = make_capgpu(sim, seed, weights=WeightAssigner(mode=mode))
        trace = sim.run(ctl, n_periods)
        steady = steady_window(n_periods)
        busy_tput = float(
            np.nanmean(trace["tput_2"][-steady:]) + np.nanmean(trace["tput_3"][-steady:])
        )
        idle_f = float(np.mean(trace["f_tgt_1"][-steady:]))
        busy_f = float(np.mean(trace["f_tgt_2"][-steady:]))
        mean, std = steady_state_stats(trace, steady)
        return mean, std, busy_tput, idle_f, busy_f

    rows = []
    data = {}
    cases = run_timed_cases(result, [("inverse", None), ("uniform", None)], _case)
    for mode, (mean, std, busy_tput, idle_f, busy_f) in cases.items():
        rows.append([mode, mean, std, busy_tput, idle_f, busy_f])
        data[mode] = {
            "busy_tput_batch_s": busy_tput,
            "idle_gpu_f_mhz": idle_f,
            "busy_gpu_f_mhz": busy_f,
            "mean_w": mean,
        }
    result.add(
        format_table(
            ["Weights", "Power W", "Std W", "Busy-GPU tput b/s",
             "Idle GPU MHz", "Busy GPU MHz"],
            rows,
            title="Weight-assignment ablation (GPU0 at ~15% load)",
        )
    )
    result.data.update(data)
    return result


def run_ablation_modulator(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = 80
) -> ExperimentResult:
    """Delta-sigma vs nearest-level actuation under CapGPU."""
    result = ExperimentResult(
        "ablation-modulator", "Delta-sigma vs nearest-level actuation"
    )
    def _case(name, factory):
        sim = paper_scenario(seed=seed, set_point_w=set_point_w, modulator_factory=factory)
        ctl = make_capgpu(sim, seed)
        trace = sim.run(ctl, n_periods)
        mean, std = steady_state_stats(trace, steady_window(n_periods))
        return mean, std, abs(mean - set_point_w)

    rows = []
    data = {}
    cases = run_timed_cases(result, [
        ("delta-sigma", DeltaSigmaModulator),
        ("nearest-level", NearestLevelModulator),
    ], _case)
    for name, (mean, std, err) in cases.items():
        rows.append([name, mean, std, err])
        data[name] = {"mean_w": mean, "std_w": std, "abs_err_w": err}
    result.add(
        format_table(
            ["Modulator", "Power W", "Std W", "|err| W"],
            rows,
            title="Actuation ablation (CapGPU, 900 W)",
        )
    )
    result.data.update(data)
    return result


def run_ablation_solver(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = 80
) -> ExperimentResult:
    """SLSQP vs the analytic clipped QP fast path."""
    result = ExperimentResult("ablation-solver", "SLSQP vs analytic MPC solver")
    def _case(solver, _):
        sim = paper_scenario(seed=seed, set_point_w=set_point_w)
        ctl = make_capgpu(sim, seed, mpc_config=MpcConfig(solver=solver))
        trace = sim.run(ctl, n_periods)
        mean, std = steady_state_stats(trace, steady_window(n_periods))
        return mean, std, float(np.mean(trace["ctl_ms"][1:]))

    rows = []
    data = {}
    cases = run_timed_cases(result, [("slsqp", None), ("analytic", None)], _case)
    for solver, (mean, std, ctl_ms) in cases.items():
        rows.append([solver, mean, std, ctl_ms])
        data[solver] = {"mean_w": mean, "std_w": std, "ctl_ms": ctl_ms}
    result.add(
        format_table(
            ["Solver", "Power W", "Std W", "Solve ms"],
            rows,
            title="Solver ablation (CapGPU, 900 W)",
            float_fmt="{:.3f}",
        )
    )
    result.data.update(data)
    return result


def run_ablation_horizon(
    seed: int = 0,
    set_point_w: float = 900.0,
    horizons: tuple[int, ...] = (2, 4, 8, 16),
    n_periods: int = 60,
) -> ExperimentResult:
    """Prediction-horizon sweep at fixed control horizon M=2."""
    result = ExperimentResult("ablation-horizon", "Prediction-horizon sweep")
    def _case(_label, p_h):
        sim = paper_scenario(seed=seed, set_point_w=set_point_w)
        cfg = MpcConfig(prediction_horizon=p_h, control_horizon=min(2, p_h))
        ctl = make_capgpu(sim, seed, mpc_config=cfg)
        trace = sim.run(ctl, n_periods)
        mean, std = steady_state_stats(trace, steady_window(n_periods))
        return p_h, mean, std

    rows = []
    data = {}
    cases = run_timed_cases(
        result, [(f"P{p_h}", p_h) for p_h in horizons], _case
    )
    for p_h, mean, std in cases.values():
        rows.append([p_h, mean, std, abs(mean - set_point_w)])
        data[p_h] = {"mean_w": mean, "std_w": std}
    result.add(
        format_table(
            ["P", "Power W", "Std W", "|err| W"],
            rows,
            title="Horizon ablation (M=2, 900 W)",
        )
    )
    result.data.update(data)
    return result


ABLATIONS = {
    "weights": run_ablation_weights,
    "modulator": run_ablation_modulator,
    "solver": run_ablation_solver,
    "horizon": run_ablation_horizon,
}
