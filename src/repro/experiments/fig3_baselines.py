"""Figure 3 — power-control traces of every strategy at a 900 W cap.

Runs CPU-Only, GPU-Only, CPU+GPU (50/50 and 60/40), Fixed-step and CapGPU on
the three-GPU scenario and reports each strategy's power trajectory plus
summary statistics. Expected shape (Section 6.2):

* CPU-Only cannot come close to the cap (minimal control range);
* GPU-Only converges precisely with small oscillation;
* CPU+GPU converges to the wrong level (split-dependent, one side under and
  the other over);
* Fixed-step reaches the vicinity slowly and oscillates;
* CapGPU converges to the set point without violations and stays there.
"""

from __future__ import annotations

import numpy as np

from ..analysis import (
    format_series,
    format_table,
    sparkline,
    settling_time_periods,
    steady_state_stats,
    violation_stats,
)
from ..control import FixedStepController
from ..sim import paper_scenario
from .common import (
    N_PERIODS,
    ExperimentResult,
    make_capgpu,
    make_cpu_only,
    make_cpu_plus_gpu,
    make_gpu_only,
    modulator_for,
    steady_window,
)

__all__ = ["run_fig3", "fig3_strategies"]


def fig3_strategies(seed: int = 0):
    """(label, controller-factory) pairs for the Figure 3 comparison.

    Factories take the freshly built scenario simulation, so strategies that
    need the identified model (via the cached per-seed identification) can
    derive their gains from it.
    """
    return [
        ("CPU-Only", lambda sim: make_cpu_only(sim, seed)),
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("CPU+GPU 50/50", lambda sim: make_cpu_plus_gpu(sim, 0.5, seed)),
        ("CPU+GPU 60/40", lambda sim: make_cpu_plus_gpu(sim, 0.6, seed)),
        ("Fixed-step", lambda sim: FixedStepController(step_size=1)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]


def run_fig3(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = N_PERIODS
) -> ExperimentResult:
    """Run the full baseline comparison of Figure 3."""
    result = ExperimentResult("fig3", f"Power control at {set_point_w:.0f} W: baselines vs CapGPU")
    rows = []
    traces = {}
    for label, factory in fig3_strategies(seed):
        sim = paper_scenario(
            seed=seed, set_point_w=set_point_w,
            modulator_factory=modulator_for(label),
        )
        controller = factory(sim)
        trace = sim.run(controller, n_periods)
        steady = steady_window(n_periods)
        mean, std = steady_state_stats(trace, steady)
        settle = settling_time_periods(trace)
        viol = violation_stats(trace, margin_w=10.0, start_period=20)
        rows.append([
            label, mean, std,
            "inf" if np.isinf(settle) else f"{settle:.0f}",
            viol.n_violations, viol.worst_excess_w,
        ])
        traces[label] = trace
        periods = np.arange(len(trace), dtype=float)
        result.add(format_series(f"power_W[{label}]", periods, trace["power_w"]))
        result.add(
            f"power[{label:>13s}] {sparkline(trace['power_w'], lo=650.0, hi=1250.0)}"
        )
    result.add(
        format_table(
            ["Strategy", "SS mean W", "SS std W", "Settle (periods)",
             "Violations", "Worst excess W"],
            rows,
            title=f"Figure 3 summary (set point {set_point_w:.0f} W, "
                  f"last {steady_window(n_periods)} of {n_periods} periods)",
        )
    )
    result.data["traces"] = traces
    result.data["summary"] = {
        r[0]: {"mean_w": r[1], "std_w": r[2]} for r in rows
    }
    return result
