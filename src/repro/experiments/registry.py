"""Experiment registry: id -> runner, for the CLI and the bench harness."""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ExperimentError
from .ablation import ABLATIONS
from .batching import run_batching_comparison
from .common import ExperimentResult
from .comparators import run_comparators
from .fault_tolerance import run_fault_tolerance
from .fig2_sysid import run_fig2
from .fig3_baselines import run_fig3
from .fig4_fixed_step import run_fig4
from .fig5_safe_fixed_step import run_fig5
from .fig6_setpoints import run_fig6
from .fig7_performance import run_fig7
from .fig8_slo_baselines import run_fig8
from .fig9_slo_capgpu import run_fig9
from .fig10_adaptation import run_fig10
from .fleet_scale import run_fig9_scale
from .llm_serving import run_llm_serving
from .robustness import run_robustness
from .table1 import run_table1

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    # Extensions beyond the paper (DESIGN.md's ablation/extension index).
    "robustness": run_robustness,
    "fault-tolerance": run_fault_tolerance,
    "batching": run_batching_comparison,
    "llm": run_llm_serving,
    "comparators": run_comparators,
    "fig9-scale": run_fig9_scale,
    **{f"ablation-{name}": fn for name, fn in ABLATIONS.items()},
}


def experiment_ids() -> list[str]:
    """All registered experiment ids in paper order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    Unknown ids raise :class:`ExperimentError` carrying the full list of
    valid ids (``.valid_ids``) and, when one is close enough, a
    did-you-mean suggestion — so callers (CLI, sweep runner, CI scripts)
    can print something actionable instead of a bare ``KeyError``.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        import difflib

        valid = experiment_ids()
        close = difflib.get_close_matches(str(experiment_id), valid, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        err = ExperimentError(
            f"unknown experiment {experiment_id!r}{hint}; available: {valid}"
        )
        err.experiment_id = experiment_id
        err.valid_ids = valid
        err.suggestion = close[0] if close else None
        raise err from None
    return runner(**kwargs)
