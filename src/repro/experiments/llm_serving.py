"""LLM-serving capping study (extension; see docs/simulator.md and
``repro.workloads.llm``).

CapGPU vs GPU-Only on three V100s serving a 7B-class LLM through a traffic
surge, under a 900 W cap. The decode phase is memory-bound, so the plant's
effective power gain varies with the prefill/decode mix — a live
model-mismatch stressor — while TTFT (time to first token) and end-to-end
request latency measure serving quality.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table, steady_state_stats
from ..control import GpuOnlyController
from ..core import build_capgpu, group_gains
from ..sim import ServerSimulation, llm_scenario
from ..sysid import identify_power_model
from ..workloads import BurstArrivals, SteadyArrivals
from .common import ExperimentResult

__all__ = ["run_llm_serving"]

BASE_RATE = 0.7
BURST_RATE = 1.6
BURST_WINDOW_S = (120.0, 240.0)


def _build_sim(seed: int, set_point_w: float, saturated: bool) -> ServerSimulation:
    if saturated:
        factory = lambda: SteadyArrivals(6.0)  # noqa: E731
    else:
        factory = lambda: BurstArrivals(  # noqa: E731
            BASE_RATE, BURST_RATE, *BURST_WINDOW_S
        )
    return llm_scenario(
        seed=seed, set_point_w=set_point_w, arrivals_factory=factory
    )


def run_llm_serving(
    seed: int = 0, set_point_w: float = 900.0, n_periods: int = 90
) -> ExperimentResult:
    """Run the LLM surge scenario under CapGPU and GPU-Only."""
    result = ExperimentResult(
        "llm", "LLM serving under a power cap through a traffic surge"
    )
    # Identify under saturated load: at partial load utilization anticorrelates
    # with clock and would corrupt the gain estimates.
    model = identify_power_model(
        _build_sim(seed, set_point_w, saturated=True), points_per_channel=5
    ).fit
    rows = []
    data = {"model_r2": model.r2}
    for label in ("GPU-Only", "CapGPU"):
        sim = _build_sim(seed, set_point_w, saturated=False)
        if label == "CapGPU":
            ctl = build_capgpu(sim, model=model, with_slo=False)
        else:
            _, gg = group_gains(model, sim.cpu_channels, sim.gpu_channels)
            ctl = GpuOnlyController(gg)
        trace = sim.run(ctl, n_periods)
        mean, std = steady_state_stats(trace, max(n_periods - 20, 1))
        ttft = float(np.mean([p.mean_ttft_s() for p in sim.pipelines]))
        p90 = float(np.mean([p.latency_percentile_s(0.9) for p in sim.pipelines]))
        reqs = sum(p.completed_requests for p in sim.pipelines)
        dropped = sum(p.dropped_requests for p in sim.pipelines)
        rows.append([label, mean, std, reqs / sim.time_s, ttft, p90, dropped])
        data[label] = {
            "mean_w": mean, "std_w": std, "req_s": reqs / sim.time_s,
            "ttft_s": ttft, "p90_s": p90, "dropped": dropped,
            "trace": trace,
        }
    result.add(
        format_table(
            ["Strategy", "Power W", "Std W", "req/s", "TTFT s", "p90 lat s",
             "dropped"],
            rows,
            title=f"LLM surge at {set_point_w:.0f} W "
                  f"({BASE_RATE} -> {BURST_RATE} req/s per GPU; "
                  f"identified R^2 = {model.r2:.3f})",
            float_fmt="{:.3f}",
        )
    )
    result.data.update(data)
    return result
