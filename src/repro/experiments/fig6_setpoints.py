"""Figure 6 — control accuracy across power set points (900-1200 W).

For each set point in 50 W increments, run Safe Fixed-step, GPU-Only, the
two CPU+GPU splits and CapGPU for 100 periods and report the last-80-period
mean +/- std. Expected shape (Section 6.3): Safe Fixed-step tracks lowest
(margin) with the largest deviation; CPU+GPU misses the set point in a
split-dependent direction; GPU-Only is accurate but with residual
fluctuation; CapGPU is the most accurate and stable.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table, steady_state_stats
from ..sim import paper_scenario
from .common import (
    N_PERIODS,
    ExperimentResult,
    make_capgpu,
    make_cpu_plus_gpu,
    make_gpu_only,
    make_safe_fixed_step,
    modulator_for,
    steady_window,
)

__all__ = ["run_fig6", "DEFAULT_SET_POINTS"]

DEFAULT_SET_POINTS: tuple[float, ...] = (900.0, 950.0, 1000.0, 1050.0, 1100.0, 1150.0, 1200.0)


def fig6_strategies(seed: int, set_point_w: float, include_cpu_plus_gpu: bool):
    strategies = [
        ("Safe Fixed-step", lambda sim: make_safe_fixed_step(seed, set_point_w)),
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]
    if include_cpu_plus_gpu:
        strategies[2:2] = [
            ("CPU+GPU 50/50", lambda sim: make_cpu_plus_gpu(sim, 0.5, seed)),
            ("CPU+GPU 60/40", lambda sim: make_cpu_plus_gpu(sim, 0.6, seed)),
        ]
    return strategies


def run_fig6(
    seed: int = 0,
    set_points_w: tuple[float, ...] = DEFAULT_SET_POINTS,
    n_periods: int = N_PERIODS,
    include_cpu_plus_gpu: bool = True,
) -> ExperimentResult:
    """Sweep the set points and tabulate steady-state accuracy per strategy."""
    result = ExperimentResult("fig6", "Control accuracy across power set points")
    labels = [s[0] for s in fig6_strategies(seed, set_points_w[0], include_cpu_plus_gpu)]
    means = {lab: [] for lab in labels}
    stds = {lab: [] for lab in labels}
    errors = {lab: [] for lab in labels}
    for sp in set_points_w:
        for label, factory in fig6_strategies(seed, sp, include_cpu_plus_gpu):
            sim = paper_scenario(
                seed=seed, set_point_w=sp, modulator_factory=modulator_for(label)
            )
            trace = sim.run(factory(sim), n_periods)
            mean, std = steady_state_stats(trace, steady_window(n_periods))
            means[label].append(mean)
            stds[label].append(std)
            errors[label].append(abs(mean - sp))
    rows = []
    for label in labels:
        for sp, mean, std, err in zip(set_points_w, means[label], stds[label], errors[label]):
            rows.append([label, sp, mean, std, err])
    result.add(
        format_table(
            ["Strategy", "Set point W", "SS mean W", "SS std W", "|error| W"],
            rows,
            title="Figure 6: steady-state power per set point "
                  f"(last {steady_window(n_periods)} of {n_periods} periods)",
        )
    )
    summary = [
        [label,
         float(np.mean(errors[label])),
         float(np.max(errors[label])),
         float(np.mean(stds[label]))]
        for label in labels
    ]
    result.add(
        format_table(
            ["Strategy", "Mean |error| W", "Max |error| W", "Mean std W"],
            summary,
            title="Aggregate accuracy over all set points",
        )
    )
    result.data.update(set_points_w=set_points_w, means=means, stds=stds, errors=errors)
    return result
