"""Figure 8 — SLO compliance of the baselines (Safe Fixed-step, GPU-Only).

Runs the Section 6.4 SLO schedule (50%-tail SLOs, switched at period 14 to
a tightened SLO on GPU 0 and relaxed SLOs on GPUs 1-2) at a 1000 W set
point. Neither baseline can allocate per-device frequencies by SLO — GPU-
Only shares one clock across all GPUs and Safe Fixed-step moves one level
per period — so the tightened task misses its deadline while others may be
over-served. Reports per-GPU latency series, SLO lines and deadline miss
rates after the switch.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_series, format_table, slo_miss_rate
from ..sim import paper_scenario
from .common import (
    ExperimentResult,
    make_gpu_only,
    make_safe_fixed_step,
    modulator_for,
    run_checkpointed,
)
from .slo_schedule import SLO_CHANGE_PERIOD, initial_slos, section64_slo_events

__all__ = ["run_fig8", "run_slo_strategy"]


def run_slo_strategy(
    label: str,
    controller_factory,
    seed: int = 0,
    set_point_w: float = 1100.0,
    n_periods: int = 60,
    checkpoint=None,
):
    """Run one strategy under the Section 6.4 SLO schedule.

    ``checkpoint`` (a :class:`~repro.experiments.common.CheckpointPolicy`)
    makes the run crash-safe/resumable; results are bit-identical either
    way. Returns ``(trace, sim)``.
    """
    sim = paper_scenario(
        seed=seed, set_point_w=set_point_w,
        modulator_factory=modulator_for(label),
    )
    for g, slo in enumerate(initial_slos(sim)):
        sim.set_slo(g, slo)
    events = section64_slo_events(sim)
    controller = controller_factory(sim)
    trace = run_checkpointed(
        sim, controller, n_periods, events=events, checkpoint=checkpoint
    )
    return trace, sim


def summarize_slo_trace(label: str, trace, sim, result: ExperimentResult) -> list:
    """Append latency/SLO series and return the summary row list."""
    rows = []
    periods = np.arange(len(trace), dtype=float)
    for g in range(sim.server.n_gpus):
        result.add(format_series(
            f"lat_s[{label}][gpu{g}]", periods, trace[f"lat_mean_g{g}"],
            float_fmt="{:.3f}",
        ))
        result.add(format_series(
            f"slo_s[{label}][gpu{g}]", periods, trace[f"slo_g{g}"],
            float_fmt="{:.3f}",
        ))
        miss_after = slo_miss_rate(trace, g, start_period=SLO_CHANGE_PERIOD + 2)
        rows.append([label, f"GPU{g}", miss_after])
    return rows


def run_fig8(
    seed: int = 0, set_point_w: float = 1100.0, n_periods: int = 60
) -> ExperimentResult:
    """SLO compliance of Safe Fixed-step and GPU-Only."""
    result = ExperimentResult(
        "fig8", "Inference latency vs SLO under baselines (no per-device allocation)"
    )
    strategies = [
        ("Safe Fixed-step", lambda sim: make_safe_fixed_step(seed, set_point_w)),
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
    ]
    rows = []
    for label, factory in strategies:
        trace, sim = run_slo_strategy(label, factory, seed, set_point_w, n_periods)
        rows.extend(summarize_slo_trace(label, trace, sim, result))
        result.data[label] = trace
    result.add(
        format_table(
            ["Strategy", "Task", "Miss rate after switch"],
            rows,
            title="Figure 8: deadline miss rates after the period-14 SLO change",
            float_fmt="{:.3f}",
        )
    )
    result.data["miss_rows"] = rows
    return result
