"""Experiment harness: one module per paper table/figure (see DESIGN.md),
plus the ablation/robustness/batching extension studies."""

from .ablation import ABLATIONS
from .batching import run_batching_comparison
from .common import ExperimentResult, identified_model, run_timed_cases
from .fault_tolerance import run_fault_tolerance
from .fig2_sysid import run_fig2
from .fig3_baselines import run_fig3
from .fig4_fixed_step import run_fig4
from .fig5_safe_fixed_step import run_fig5
from .fig6_setpoints import run_fig6
from .fig7_performance import run_fig7
from .fig8_slo_baselines import run_fig8
from .fig9_slo_capgpu import run_fig9
from .fig10_adaptation import run_fig10
from .llm_serving import run_llm_serving
from .registry import EXPERIMENTS, experiment_ids, run_experiment
from .robustness import run_robustness
from .table1 import run_table1

__all__ = [
    "ExperimentResult",
    "identified_model",
    "run_timed_cases",
    "run_table1",
    "run_fault_tolerance",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "ABLATIONS",
    "run_robustness",
    "run_batching_comparison",
    "run_llm_serving",
]
