"""Comparator study: CapGPU vs classic PID vs the ground-truth oracle.

Extension beyond the paper's baseline set. The oracle (which reads the true
plant model) bounds achievable tracking accuracy — its residual is pure
disturbance — so each controller's *regret* is its excess error/std over
the oracle. A classic PID (integral action, anti-windup) represents the
traditional server-capping lineage with bias removal. The question this
answers: how much of CapGPU's advantage is the MIMO/MPC machinery vs just
having *some* well-tuned feedback loop — and the answer is that PID matches
CapGPU on raw power tracking but, being a single shared command, cannot do
per-device allocation (no weight assignment, no per-GPU SLO floors), which
is where Figures 7-9 are won.
"""

from __future__ import annotations

import numpy as np

from ..analysis import format_table, steady_state_stats
from ..control import OracleController, PidController
from ..sim import paper_scenario
from .common import (
    ExperimentResult,
    identified_model,
    make_capgpu,
    make_gpu_only,
    run_timed_cases,
    steady_window,
)

__all__ = ["run_comparators"]


def run_comparators(
    seed: int = 0,
    set_points_w: tuple[float, ...] = (850.0, 1000.0, 1150.0),
    n_periods: int = 70,
) -> ExperimentResult:
    """Tracking accuracy across set points, with oracle regret."""
    result = ExperimentResult(
        "comparators", "CapGPU vs PID vs ground-truth oracle (tracking regret)"
    )
    model = identified_model(seed)
    span_w = float(
        model.a_w_per_mhz @ (
            paper_scenario(seed=seed).server.f_max_vector()
            - paper_scenario(seed=seed).server.f_min_vector()
        )
    )
    strategies = [
        ("Oracle", lambda sim: OracleController(sim.server)),
        ("PID", lambda sim: PidController(span_w=span_w)),
        ("GPU-Only", lambda sim: make_gpu_only(sim, seed)),
        ("CapGPU", lambda sim: make_capgpu(sim, seed)),
    ]
    def _track(label, case):
        sp, factory = case
        sim = paper_scenario(seed=seed, set_point_w=sp)
        trace = sim.run(factory(sim), n_periods)
        mean, std = steady_state_stats(trace, steady_window(n_periods))
        return abs(mean - sp), std

    cases = [
        (f"{name}@{sp:.0f}W", (sp, factory))
        for sp in set_points_w
        for name, factory in strategies
    ]
    tracked = run_timed_cases(result, cases, _track)
    errors: dict[str, list[float]] = {name: [] for name, _ in strategies}
    stds: dict[str, list[float]] = {name: [] for name, _ in strategies}
    for sp in set_points_w:
        for name, _ in strategies:
            err, std = tracked[f"{name}@{sp:.0f}W"]
            errors[name].append(err)
            stds[name].append(std)
    oracle_err = float(np.mean(errors["Oracle"]))
    oracle_std = float(np.mean(stds["Oracle"]))
    rows = []
    data = {}
    for name, _ in strategies:
        mean_err = float(np.mean(errors[name]))
        mean_std = float(np.mean(stds[name]))
        rows.append([
            name, mean_err, mean_std,
            mean_err - oracle_err, mean_std - oracle_std,
        ])
        data[name] = {
            "mean_abs_err_w": mean_err,
            "mean_std_w": mean_std,
            "err_regret_w": mean_err - oracle_err,
            "std_regret_w": mean_std - oracle_std,
        }
    result.add(
        format_table(
            ["Strategy", "Mean |err| W", "Mean std W",
             "Err regret W", "Std regret W"],
            rows,
            title=f"Comparators over set points {set_points_w} "
                  f"(regret vs the ground-truth oracle)",
            float_fmt="{:.2f}",
        )
    )
    result.data.update(data)
    return result
