"""Shim for environments without the ``wheel`` package (offline editable installs).

``pip install -e . --no-build-isolation`` on older setuptools needs a
``setup.py`` to fall back to ``develop`` mode. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
